"""Watching Scoop adapt: the index migrates as query pressure shifts.

Demonstrates the paper's central claim (Section 4, properties P1/P2):
"data is stored closer to the basestation when the query rate is higher
than data rates, and data is stored closer to the source when data rates
are higher than query rates."

The script keeps one resident :class:`repro.service.Deployment` (the
same facade the experiment runner and the query gateway are built on) on
a line topology — so "distance to the basestation" is just the node id —
and prints where the hot value band is stored after each phase:

  phase 1 — no queries: values live at their producers (deep in the line);
  phase 2 — a query storm on one band: that band's owner migrates toward
            the basestation;
  phase 3 — queries stop: the band drifts back toward its producer.

Usage:
    python examples/adaptive_workload.py
"""

from repro.core.config import ScoopConfig, ValueDomain
from repro.experiments import ExperimentSpec
from repro.service import Deployment
from repro.sim.topology import line

N = 10  # line: base 0 - 1 - 2 - ... - 9
HOT_VALUE = 8  # produced by node 8, two hops from the line's end


def owner_distance(base, value: int) -> str:
    if base.current_index is None:
        return "no index yet"
    owner = base.current_index.owner_of(value)
    return f"node {owner} (hops from base ~{owner})"


def main() -> None:
    config = ScoopConfig(
        n_nodes=N,
        domain=ValueDomain(0, 20),
        sample_interval=6.0,
        summary_interval=25.0,
        remap_interval=60.0,
        stabilization=80.0,
        duration=1800.0,
        beacon_interval=5.0,
    )
    # One spec, one wiring path: Deployment.create builds the topology,
    # network, workload and motes (swap the policy name to watch a
    # baseline instead).
    spec = ExperimentSpec(policy="scoop", workload="unique", scoop=config, seed=3)
    dep = Deployment.create(spec, topology=line(N))
    base = dep.base

    dep.boot()
    dep.stabilize()

    # Phase 1: data only. Each node produces its own id; no query pressure.
    dep.advance(300.0)
    print(f"phase 1 (no queries):    value {HOT_VALUE} stored at "
          f"{owner_distance(base, HOT_VALUE)}")

    # Phase 2: hammer value 8 with queries every 2 seconds. Queries are
    # injected mid-flight through the facade (dep.query validates the
    # range against the domain and goes through base.issue_query);
    # wait=False keeps the storm's own cadence instead of blocking each
    # query through its reply window.
    stop_at = dep.now + 400.0

    def storm() -> None:
        if dep.now >= stop_at:
            return
        dep.query(
            attr=0,
            lo=HOT_VALUE,
            hi=HOT_VALUE,
            time_range=(dep.now - 60.0, dep.now),
            wait=False,
        )
        dep.net.sim.schedule(2.0, storm)

    dep.net.sim.schedule(1.0, storm)
    dep.run_until(stop_at + 60.0)
    print(f"phase 2 (query storm):   value {HOT_VALUE} stored at "
          f"{owner_distance(base, HOT_VALUE)}")
    owner_under_storm = base.current_index.owner_of(HOT_VALUE)

    # Phase 3: silence again. Query statistics average over the whole
    # history (the paper's estimator has long memory), so the band drifts
    # back only slowly — it may still sit at the base after 15 minutes.
    dep.advance(900.0)
    print(f"phase 3 (queries over):  value {HOT_VALUE} stored at "
          f"{owner_distance(base, HOT_VALUE)} "
          "(drifts home slowly: the query-rate estimate decays with 1/t)")

    print()
    print(f"index versions disseminated: {len(base.index_history)}")
    print(f"remaps suppressed as unchanged: {base.remaps_suppressed}")
    assert owner_under_storm < 8, (
        "expected the queried band to migrate toward the basestation"
    )
    print("OK: the queried band moved toward the basestation under load.")


if __name__ == "__main__":
    main()
