"""Scoop as a service: the sharded server and the typed clients.

Boots the full serving stack in one process — two tenants sharded
across two worker processes behind a framed TCP server — then tours the
two supported client entry points:

* ``ScoopClient`` — blocking, strictly request/response;
* ``AsyncScoopClient`` — asyncio, many queries in flight on one
  connection, server-push METRICS telemetry.

Everything crosses the wire as the typed API (``QueryAnswer`` in,
``ShedError``/``MalformedRequestError``/... out) — no raw dicts, no
JSON-lines. Connecting blocks until every shard reports ready, so the
first query after ``connect()`` always finds a live deployment.

Usage:
    python examples/service_client.py
"""

import asyncio

from repro import ExperimentSpec, ScoopConfig, ValueDomain
from repro.service import (
    AsyncScoopClient,
    MalformedRequestError,
    ScoopClient,
    ShardedGateway,
    serve_framed,
)


def small_spec() -> ExperimentSpec:
    """A 16-mote grid with a short warm-up: boots in about a second per
    tenant, which keeps the demo snappy."""
    config = ScoopConfig(
        domain=ValueDomain(0, 100),
        n_nodes=16,
        sample_interval=10.0,
        summary_interval=60.0,
        remap_interval=300.0,
        query_interval=12.0,
        query_reply_window=8.0,
        duration=600.0,
        stabilization=60.0,
    )
    return ExperimentSpec(
        policy="scoop",
        workload="gaussian",
        scoop=config,
        seed=7,
        topology_kind="grid",
    )


def sync_tour(port: int) -> None:
    """The blocking client: one query at a time, typed faults."""
    with ScoopClient("127.0.0.1", port, name="sync-demo") as client:
        print(
            f"[sync] connected: tenants={client.tenants} "
            f"workers={client.workers} credits={client.credits}"
        )
        answer = client.query(tenant="tenant0", attr=0, lo=20, hi=60)
        print(
            f"[sync] tenant0 [20, 60] -> {answer.n_readings} readings in "
            f"{answer.latency_s:.1f}s simulated (shard {answer.shard})"
        )
        again = client.query(tenant="tenant0", attr=0, lo=20, hi=60)
        print(f"[sync] same range again: cache_hit={again.cache_hit}")
        try:
            client.query(tenant="nobody")
        except MalformedRequestError as exc:
            print(f"[sync] typed fault for a bad request: {exc}")
        stats = client.stats()
        for shard, card in sorted(stats.shards.items()):
            print(
                f"[sync] {shard}: {card['tenants']:.0f} tenant(s), "
                f"{card['requests_served']:.0f} served, "
                f"hit rate {card['cache_hit_rate']:.0%}"
            )


async def async_tour(port: int) -> None:
    """The asyncio client: concurrent queries, METRICS subscription."""
    async with AsyncScoopClient(
        "127.0.0.1", port, name="async-demo", metrics=True
    ) as client:
        ranges = [(0, 30), (30, 60), (60, 100), (10, 90)]
        answers = await asyncio.gather(
            *(
                client.query(tenant=tenant, attr=0, lo=lo, hi=hi)
                for tenant in client.tenants
                for lo, hi in ranges
            )
        )
        total = sum(a.n_readings for a in answers)
        print(
            f"[async] {len(answers)} concurrent queries over one "
            f"connection -> {total} readings"
        )
        # Give the server's metrics pump one interval to push.
        await asyncio.sleep(0.3)
        if client.metrics:
            push = client.metrics[-1]
            print(
                f"[async] METRICS push from {push['shard']}: "
                f"tick={push['tick']} "
                f"served={push['stats']['requests_served']:.0f}"
            )


async def main() -> None:
    print("booting 2 tenants on 2 worker processes ...")
    gateway = ShardedGateway(small_spec(), tenants=2, workers=2)
    await gateway.start()
    server = await serve_framed(gateway, metrics_interval=0.2)
    try:
        # No explicit wait: the clients' connect() blocks on the
        # server's readiness-gated WELCOME.
        await asyncio.get_running_loop().run_in_executor(
            None, sync_tour, server.port
        )
        await async_tour(server.port)
    finally:
        await server.close()
        await gateway.close()
    print("done.")


if __name__ == "__main__":
    # The guard is load-bearing: worker processes spawn (re-import this
    # module), so the demo must not re-run itself in children.
    asyncio.run(main())
