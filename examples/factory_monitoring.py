"""Factory-floor vibration monitoring — the paper's motivating scenario.

Section 1 of the paper: "Consider ... a sensornet deployed for monitoring a
factory floor that uses sensors on equipment to measure temperature or
vibrational energy"; Section 4 (Extensions): "each sensor might classify
its last few sensor readings according to their vibration level on a scale
of 1-20, and the mapping might tell the sensor where to store a particular
class of vibrations."

This example builds that deployment directly against the library's core
API (no experiment runner): machines produce vibration *classes* 1-20, most
run quietly (low classes), a few run hot, and one machine develops a fault
mid-run and jumps to high vibration classes. An operator periodically asks
"which machines showed class >= 15 recently?" and Scoop answers by
contacting only the nodes that own those classes.

Usage:
    python examples/factory_monitoring.py
"""

from repro.core.basestation import Basestation
from repro.core.config import ScoopConfig, ValueDomain
from repro.core.node import ScoopNode
from repro.core.query import Query
from repro.sim.network import Network
from repro.sim.topology import indoor_testbed
from repro.workloads.base import Workload


class VibrationClasses(Workload):
    """Machines classify vibration into 1-20; one machine degrades."""

    name = "vibration"

    def __init__(self, domain, n_nodes, seed=0, faulty_node=5, fault_time=900.0):
        super().__init__(domain, n_nodes, seed)
        self.faulty_node = faulty_node
        self.fault_time = fault_time

    def sample(self, node_id: int, now: float) -> int:
        rng = self._rng_for(node_id, round(now, 3))
        if node_id == self.faulty_node and now >= self.fault_time:
            return rng.randint(16, 20)  # bearing failure: violent vibration
        if node_id % 7 == 0:
            return rng.randint(8, 12)  # heavy machinery, moderate class
        return max(1, min(20, round(rng.gauss(4, 1.5))))  # quiet operation


def main() -> None:
    config = ScoopConfig(
        n_nodes=25,
        domain=ValueDomain(1, 20),
        sample_interval=10.0,
        query_interval=60.0,
        summary_interval=60.0,
        remap_interval=120.0,
        stabilization=120.0,
        duration=1500.0,
    )
    topology = indoor_testbed(config.n_nodes, seed=11)
    network = Network(topology, seed=11)
    workload = VibrationClasses(config.domain, config.n_nodes, seed=11)

    base = Basestation(
        network.sim,
        network.radio,
        config,
        tracker=network.tracker,
        energy=network.energy,
    )
    machines = [
        ScoopNode(
            i,
            network.sim,
            network.radio,
            config,
            data_source=workload.as_data_source(),
            tracker=network.tracker,
            energy=network.energy,
        )
        for i in config.sensor_ids
    ]
    network.add_mote(base)
    for machine in machines:
        network.add_mote(machine)

    print("booting 24 machine sensors + basestation, stabilizing tree ...")
    network.boot_all(within=config.beacon_interval)
    network.run(config.stabilization)
    for machine in machines:
        machine.start_sampling()
    base.start_scoop()

    def operator_check() -> None:
        if network.sim.now >= config.stabilization + config.duration:
            return
        query = Query(
            time_range=(network.sim.now - 300.0, network.sim.now),
            value_range=(15, 20),  # alarming vibration classes
        )
        result = base.issue_query(query)

        def report(q=query, r=result):
            hot = sorted({producer for _v, _t, producer in r.readings})
            window_end = q.time_range[1]
            if hot:
                print(
                    f"t={window_end:6.0f}s  ALERT: class>=15 vibration on "
                    f"machines {hot} ({len(r.readings)} readings, "
                    f"{len(r.nodes_targeted)} nodes contacted)"
                )
            else:
                print(
                    f"t={window_end:6.0f}s  all quiet "
                    f"({len(r.nodes_targeted)} nodes contacted)"
                )

        network.sim.schedule(config.query_reply_window + 0.5, report)
        network.sim.schedule(120.0, operator_check)

    network.sim.schedule(180.0, operator_check)
    network.run(config.stabilization + config.duration)

    print()
    faulty = workload.faulty_node
    print(
        f"(machine {faulty} developed its fault at t={workload.fault_time:.0f}s "
        "simulated)"
    )
    print(f"messages sent, total: {network.census.total_sent()}")
    print(f"message breakdown   : {network.census.breakdown()}")
    print(f"storage success     : {network.tracker.storage_success_rate():.0%}")
    print(
        "note: the operator repeatedly queries the alarm classes, so the "
        "index pulls them toward the basestation (property P2) — alerts are "
        "then answered from the base's own flash at zero radio cost:"
    )
    if base.current_index is not None:
        for entry in base.current_index.compact():
            print(f"  classes {entry.lo:>2}-{entry.hi:<2} -> node {entry.owners[0]}")


if __name__ == "__main__":
    main()
