"""Quickstart: run Scoop against the paper's baselines in one script.

Builds the paper's default experiment (62 sensors + basestation, REAL
correlated light workload, sample and query every 15 s) at a reduced
duration, runs SCOOP / LOCAL / BASE / HASH, and prints the Figure 3-style
message breakdown.

Usage:
    python examples/quickstart.py [--full]

``--full`` runs the paper's complete 40-minute experiment (slower).
"""

import sys

from repro import ExperimentSpec, ScoopConfig, ValueDomain, scale_spec
from repro.experiments.reporting import breakdown_table
from repro.experiments.runner import build_topology, run_experiment, run_hash_analytical


def main() -> None:
    full = "--full" in sys.argv
    scale = 1.0 if full else 0.2

    config = ScoopConfig(domain=ValueDomain(0, 149))
    results = []
    topology = None
    for policy in ("scoop", "local", "base", "hash"):
        spec = scale_spec(
            ExperimentSpec(policy=policy, workload="real", scoop=config, seed=1),
            scale,
        )
        if topology is None:
            topology = build_topology(spec)
        if policy == "hash":
            # The paper evaluates HASH analytically (no any-to-any routing).
            result = run_hash_analytical(spec, topology=topology)
        else:
            print(f"running {policy} ...")
            result = run_experiment(spec, topology=topology)
        results.append(result)

    print()
    print(breakdown_table(results, "Storage policies on the REAL light trace"))
    print()
    scoop = results[0]
    print(f"Scoop storage success: {scoop.storage_success_rate:.0%} (paper ~93%)")
    print(f"Scoop owner-hit rate : {scoop.owner_hit_rate:.0%} (paper ~85%)")
    print(f"Scoop query success  : {scoop.query_reply_rate:.0%} (paper ~78%)")
    ratio = results[2].total_messages / max(scoop.total_messages, 1)
    print(f"BASE / SCOOP message ratio: {ratio:.1f}x (paper: ~4x)")


if __name__ == "__main__":
    main()
