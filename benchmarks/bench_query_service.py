"""E16 — past the paper: the serving layer under an offered-load sweep.

The ROADMAP's north star is a system *serving* heavy query traffic, not
just replaying batch campaigns. This grid drives one resident deployment
per cell through the query gateway's batch discipline
(`repro.service.loadtest`): Poisson request arrivals against a bounded
admission queue, bucket-coalesced basestation queries once per interval,
and an epoch-keyed hot-answer cache. The qualitative shape must hold as
load sweeps past the batch capacity: tail latency (p95/p99) and the shed
rate only rise with offered load, the cache earns hits, and the oracle's
precision check stays clean — cached serving must never fabricate a
reading.

The median is deliberately not gated: at high load most requests are
cache hits served at ~zero latency, so p50 *improves* while the tails
collapse — that inversion is the scenario's most instructive output.

A second benchmark exercises the *sharded* serving stack end to end:
real worker processes behind a real TCP server, driven by concurrent
client connections (`repro.service.loadtest.drive_socket_load`). Its
hard gate is the tentpole invariant — per-tenant answer transcripts are
bit-identical across worker counts. The throughput scaling gate (4
workers ≥ 2x 1 worker on the committed load point) only arms on hosts
with ≥4 CPUs; on smaller boxes extra processes cannot speed anything up
and the assertion would test the scheduler, not the system.
"""

import asyncio
import os

from _harness import emit, run_specs

from repro.core.config import ScoopConfig, ValueDomain
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentSpec
from repro.experiments.scenarios import query_service
from repro.service import ShardedGateway, drive_socket_load, serve_framed

LOADS = (0.05, 0.2, 0.6, 1.5)

#: The committed load point for the socket benchmark: worker counts
#: swept over a fixed fleet of concurrent clients replaying fixed
#: programs (seeded), one client per tenant.
SOCKET_WORKERS = (1, 2, 4)
SOCKET_TENANTS = 4
SOCKET_CLIENTS = 4
SOCKET_REQUESTS = 25
SOCKET_SEED = 11

#: Required 4-vs-1 worker speedup on the committed load point — only
#: gated where the host actually has the cores to show it.
MIN_SPEEDUP = 2.0

#: Seed-to-seed slack on adjacent-load tail-latency comparisons, in
#: simulated seconds (different loads coalesce different request mixes;
#: the 0 -> max rise must be strict).
LATENCY_SLACK_S = 2.0
#: Slack on adjacent-load shed-rate comparisons.
SHED_SLACK = 0.02


def test_query_service(benchmark):
    def run():
        grid = [
            (qps, spec)
            for qps, specs in query_service(loads=LOADS)
            for spec in specs
        ]
        results = run_specs([spec for _, spec in grid])
        table = {}
        for (qps, spec), result in zip(grid, results):
            table.setdefault(qps, {})[spec.policy] = result
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for qps in LOADS:
        scoop = table[qps]["scoop"].metrics.service
        local = table[qps]["local"].metrics.service
        rows.append(
            [
                f"{qps:g}",
                f"{scoop['qps_served']:.2f}",
                f"{scoop['latency_p50_s']:.1f}",
                f"{scoop['latency_p95_s']:.1f}",
                f"{scoop['cache_hit_rate']:.0%}",
                f"{scoop['shed_rate']:.0%}",
                f"{local['latency_p95_s']:.1f}",
                f"{local['cache_hit_rate']:.0%}",
            ]
        )
    emit(
        "query_service",
        format_table(
            [
                "qps",
                "SCOOP served",
                "SCOOP p50",
                "SCOOP p95",
                "SCOOP hits",
                "SCOOP shed",
                "LOCAL p95",
                "LOCAL hits",
            ],
            rows,
            "E16: serving latency, cache hits and shedding vs offered load",
        ),
    )

    some_shed = False
    some_hits = False
    for policy in ("scoop", "local"):
        for metric in ("latency_p95_s", "latency_p99_s"):
            series = [table[qps][policy].metrics.service[metric] for qps in LOADS]
            # Tail latency only degrades as offered load rises (up to
            # batch-mix noise), and the sweep's top is strictly worse
            # than its bottom.
            for a, b in zip(series, series[1:]):
                assert b >= a - LATENCY_SLACK_S, (policy, metric, series)
            assert series[-1] > series[0], (policy, metric, series)
        shed = [table[qps][policy].metrics.service["shed_rate"] for qps in LOADS]
        for a, b in zip(shed, shed[1:]):
            assert b >= a - SHED_SLACK, (policy, shed)
        some_shed = some_shed or shed[-1] > 0
        hits = [
            table[qps][policy].metrics.service["cache_hit_rate"] for qps in LOADS
        ]
        some_hits = some_hits or any(rate > 0 for rate in hits)
    assert some_shed, "the sweep never saturates the service"
    assert some_hits, "the answer cache never hit"
    for qps in LOADS:
        for policy in ("scoop", "local"):
            result = table[qps][policy]
            # Cached serving never fabricates readings.
            assert result.metrics.oracle["precision_violations"] == 0, (
                qps,
                policy,
            )


def _socket_spec() -> ExperimentSpec:
    """The socket benchmark's committed deployment: a 25-mote grid so
    each served query does real simulator work (boot stays ~a second per
    tenant). Distinct from the E16 sweep specs — this one measures the
    serving *stack*, not the serving *policy*."""
    config = ScoopConfig(
        domain=ValueDomain(0, 100),
        n_nodes=25,
        sample_interval=10.0,
        summary_interval=60.0,
        remap_interval=300.0,
        query_interval=12.0,
        query_reply_window=8.0,
        duration=600.0,
        stabilization=60.0,
    )
    return ExperimentSpec(
        policy="scoop",
        workload="gaussian",
        scoop=config,
        seed=SOCKET_SEED,
        topology_kind="grid",
    )


async def _serve_and_drive(workers: int, chaos_kill: bool = False) -> dict:
    gateway = ShardedGateway(
        _socket_spec(), tenants=SOCKET_TENANTS, workers=workers
    )
    await gateway.start()
    server = await serve_framed(gateway)
    try:
        await gateway.wait_ready()
        chaos = gateway.chaos_kill_worker if chaos_kill else None
        retries = 30 if chaos_kill else None
        report = await asyncio.get_running_loop().run_in_executor(
            None,
            lambda: drive_socket_load(
                "127.0.0.1",
                server.port,
                clients=SOCKET_CLIENTS,
                requests=SOCKET_REQUESTS,
                seed=SOCKET_SEED,
                keep_answers=False,
                retries=retries,
                chaos=chaos,
            ),
        )
    finally:
        await server.close()
        await gateway.close()
    return report


def test_sharded_socket_serving(benchmark):
    def run():
        return {w: asyncio.run(_serve_and_drive(w)) for w in SOCKET_WORKERS}

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for workers in SOCKET_WORKERS:
        report = reports[workers]
        stats = report["stats"]
        rows.append(
            [
                str(workers),
                str(len(stats["shards"])),
                f"{report['qps']:.1f}",
                str(report["counts"]["ok"]),
                str(report["counts"]["shed"]),
                report["answers_digest"][:12],
            ]
        )
    emit(
        "query_service_sockets",
        format_table(
            ["workers", "shards", "qps", "ok", "shed", "digest"],
            rows,
            "E16: sharded socket serving — worker-count sweep "
            f"({SOCKET_CLIENTS} clients x {SOCKET_REQUESTS} requests)",
        ),
    )

    expected = SOCKET_CLIENTS * SOCKET_REQUESTS
    for workers in SOCKET_WORKERS:
        report = reports[workers]
        assert report["workers"] == workers
        assert report["counts"]["failed"] == 0, report["errors"]
        assert report["counts"]["malformed"] == 0
        assert report["counts"]["ok"] + report["counts"]["shed"] == expected
        assert report["stats"]["protocol"]["protocol_errors"] == 0
        assert len(report["stats"]["shards"]) == min(workers, SOCKET_TENANTS)

    # The tentpole invariant: worker count is invisible in the answers.
    digests = {reports[w]["answers_digest"] for w in SOCKET_WORKERS}
    assert len(digests) == 1, {
        w: reports[w]["answers_digest"] for w in SOCKET_WORKERS
    }

    # Scaling only gates where the host has cores to scale onto.
    if (os.cpu_count() or 1) >= 4:
        speedup = reports[4]["qps"] / reports[1]["qps"]
        assert speedup >= MIN_SPEEDUP, {
            w: round(reports[w]["qps"], 1) for w in SOCKET_WORKERS
        }


def test_sharded_chaos_recovery(benchmark):
    """Chaos leg: SIGKILL one worker mid-load; the supervisor must
    respawn it and the clients' retry policy must deliver every offered
    request anyway — zero lost answers is the availability gate the
    re-placement story is built on."""

    def run():
        return asyncio.run(_serve_and_drive(2, chaos_kill=True))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    counts = report["counts"]
    shards = report["stats"]["shards"]
    restarts = sum(s.get("restarts", 0) for s in shards.values())

    emit(
        "query_service_chaos",
        format_table(
            ["killed", "ok", "shed", "retried", "restarts"],
            [
                [
                    str(report["chaos"]["killed"]),
                    str(counts["ok"]),
                    str(counts["shed"]),
                    str(counts["retried"]),
                    f"{restarts:.0f}",
                ]
            ],
            "E16: chaos recovery — worker killed mid-load "
            f"({SOCKET_CLIENTS} clients x {SOCKET_REQUESTS} requests)",
        ),
    )

    expected = SOCKET_CLIENTS * SOCKET_REQUESTS
    assert report["chaos"]["fired"], report["chaos"]
    assert report["chaos"]["killed"] is not None, report["chaos"]
    assert counts["failed"] == 0, report["errors"]
    assert counts["ok"] + counts["shed"] == expected, counts
    assert restarts >= 1, shards
    killed = shards[report["chaos"]["killed"]]
    assert killed["last_exit"] != 0, killed
