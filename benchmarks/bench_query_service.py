"""E16 — past the paper: the serving layer under an offered-load sweep.

The ROADMAP's north star is a system *serving* heavy query traffic, not
just replaying batch campaigns. This grid drives one resident deployment
per cell through the query gateway's batch discipline
(`repro.service.loadtest`): Poisson request arrivals against a bounded
admission queue, bucket-coalesced basestation queries once per interval,
and an epoch-keyed hot-answer cache. The qualitative shape must hold as
load sweeps past the batch capacity: tail latency (p95/p99) and the shed
rate only rise with offered load, the cache earns hits, and the oracle's
precision check stays clean — cached serving must never fabricate a
reading.

The median is deliberately not gated: at high load most requests are
cache hits served at ~zero latency, so p50 *improves* while the tails
collapse — that inversion is the scenario's most instructive output.
"""

from _harness import emit, run_specs

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import query_service

LOADS = (0.05, 0.2, 0.6, 1.5)

#: Seed-to-seed slack on adjacent-load tail-latency comparisons, in
#: simulated seconds (different loads coalesce different request mixes;
#: the 0 -> max rise must be strict).
LATENCY_SLACK_S = 2.0
#: Slack on adjacent-load shed-rate comparisons.
SHED_SLACK = 0.02


def test_query_service(benchmark):
    def run():
        grid = [
            (qps, spec)
            for qps, specs in query_service(loads=LOADS)
            for spec in specs
        ]
        results = run_specs([spec for _, spec in grid])
        table = {}
        for (qps, spec), result in zip(grid, results):
            table.setdefault(qps, {})[spec.policy] = result
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for qps in LOADS:
        scoop = table[qps]["scoop"].metrics.service
        local = table[qps]["local"].metrics.service
        rows.append(
            [
                f"{qps:g}",
                f"{scoop['qps_served']:.2f}",
                f"{scoop['latency_p50_s']:.1f}",
                f"{scoop['latency_p95_s']:.1f}",
                f"{scoop['cache_hit_rate']:.0%}",
                f"{scoop['shed_rate']:.0%}",
                f"{local['latency_p95_s']:.1f}",
                f"{local['cache_hit_rate']:.0%}",
            ]
        )
    emit(
        "query_service",
        format_table(
            [
                "qps",
                "SCOOP served",
                "SCOOP p50",
                "SCOOP p95",
                "SCOOP hits",
                "SCOOP shed",
                "LOCAL p95",
                "LOCAL hits",
            ],
            rows,
            "E16: serving latency, cache hits and shedding vs offered load",
        ),
    )

    some_shed = False
    some_hits = False
    for policy in ("scoop", "local"):
        for metric in ("latency_p95_s", "latency_p99_s"):
            series = [table[qps][policy].metrics.service[metric] for qps in LOADS]
            # Tail latency only degrades as offered load rises (up to
            # batch-mix noise), and the sweep's top is strictly worse
            # than its bottom.
            for a, b in zip(series, series[1:]):
                assert b >= a - LATENCY_SLACK_S, (policy, metric, series)
            assert series[-1] > series[0], (policy, metric, series)
        shed = [table[qps][policy].metrics.service["shed_rate"] for qps in LOADS]
        for a, b in zip(shed, shed[1:]):
            assert b >= a - SHED_SLACK, (policy, shed)
        some_shed = some_shed or shed[-1] > 0
        hits = [
            table[qps][policy].metrics.service["cache_hit_rate"] for qps in LOADS
        ]
        some_hits = some_hits or any(rate > 0 for rate in hits)
    assert some_shed, "the sweep never saturates the service"
    assert some_hits, "the answer cache never hit"
    for qps in LOADS:
        for policy in ("scoop", "local"):
            result = table[qps][policy]
            # Cached serving never fabricates readings.
            assert result.metrics.oracle["precision_violations"] == 0, (
                qps,
                policy,
            )
