"""E15 — past the paper: k concurrent attribute indexes per deployment.

The paper's Section 5.5 query model is one attribute per index; the
motivating deployments sample several. This grid runs SCOOP vs LOCAL vs
(simulated) HASH at k ∈ {1, 2, 4} attributes with a constant
*per-attribute* query rate and asserts the multi-attribute cost story:

* SCOOP stays cheaper than LOCAL in every cell;
* SCOOP's total cost grows **sublinearly** in k — summaries pack k
  histogram blocks into one packet and every remap disseminates all k
  indexes under one shared Trickle epoch, so maintenance is amortized;
* LOCAL's flood cost keeps growing with the k× query stream (it cannot
  amortize anything);
* the ground-truth oracle confirms correctness: zero precision
  violations and a healthy recall for SCOOP in every cell, with
  per-attribute counters present for every registered attribute.
"""

from _harness import emit, run_specs

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import multi_attribute_grid

KS = (1, 2, 4)

#: SCOOP's total at k must undercut k times its single-attribute cost by
#: at least this factor (sublinearity with margin).
SUBLINEAR_MARGIN = 0.9

#: LOCAL's k=4 total must be at least this multiple of its k=1 total —
#: the flood bill tracks the k× query stream (congestion slack keeps it
#: below a strict 4×).
LOCAL_GROWTH_FLOOR = 2.0

#: Per-cell oracle recall floor (tuple-weighted) for SCOOP at bench
#: scale; the weekly full-scale gate holds the higher paper-regime bar.
RECALL_FLOOR = 0.5


def test_multi_attribute(benchmark):
    def run():
        grid = [
            (k, spec)
            for k, specs in multi_attribute_grid(ks=KS)
            for spec in specs
        ]
        results = run_specs([spec for _, spec in grid])
        table = {}
        for (k, spec), result in zip(grid, results):
            table.setdefault(k, {})[spec.policy] = result
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for k in KS:
        scoop, local = table[k]["scoop"], table[k]["local"]
        maintenance = (
            scoop.breakdown["summary"] + scoop.breakdown["mapping"]
        )
        rows.append(
            [
                k,
                int(scoop.total_messages),
                int(maintenance),
                f"{scoop.metrics.oracle['recall_weighted']:.0%}",
                int(local.total_messages),
                int(table[k]["hash"].total_messages),
            ]
        )
    emit(
        "multi_attribute",
        format_table(
            [
                "k",
                "SCOOP msgs",
                "SCOOP maint",
                "SCOOP recall",
                "LOCAL msgs",
                "HASH msgs",
            ],
            rows,
            "E15: message cost and oracle recall vs concurrent attribute count",
        ),
    )

    scoop_1 = table[1]["scoop"].total_messages
    maint_1 = (
        table[1]["scoop"].breakdown["summary"]
        + table[1]["scoop"].breakdown["mapping"]
    )
    for k in KS:
        scoop, local = table[k]["scoop"], table[k]["local"]
        # SCOOP wins every cell.
        assert scoop.total_messages < local.total_messages, (
            k,
            scoop.total_messages,
            local.total_messages,
        )
        if k > 1:
            # Per-attribute cost grows sublinearly for SCOOP...
            assert scoop.total_messages < SUBLINEAR_MARGIN * k * scoop_1, (
                k,
                scoop.total_messages,
                scoop_1,
            )
            maintenance = scoop.breakdown["summary"] + scoop.breakdown["mapping"]
            assert maintenance < SUBLINEAR_MARGIN * k * maint_1, (
                k,
                maintenance,
                maint_1,
            )
        # ...and the oracle signs off on every cell: nothing fabricated,
        # recall above the floor, per-attribute counters for all k.
        oracle = scoop.metrics.oracle
        assert oracle["precision_violations"] == 0, (k, oracle)
        assert oracle["recall_weighted"] >= RECALL_FLOOR, (k, oracle)
        assert set(scoop.metrics.attributes) == {
            f"a{a}" for a in range(k)
        }, (k, scoop.metrics.attributes)
        for attr in range(k):
            assert scoop.metrics.planner.get(f"a{attr}.index_builds", 0) > 0, (
                k,
                attr,
            )
    # LOCAL's broadcast floods keep growing with the k× query stream.
    local_1 = table[1]["local"].total_messages
    local_4 = table[KS[-1]]["local"].total_messages
    assert local_4 >= LOCAL_GROWTH_FLOOR * local_1, (local_1, local_4)
