"""E4 — Figure 4: total cost as a function of the percentage of nodes queried.

Node-list queries name a growing fraction of the sensors (the paper's
"% Nodes Queried" axis). Expected shape: LOCAL is flat (it always floods
everyone and everyone replies); BASE is flat (queries are free); SCOOP
starts well below both and rises with the fraction, crossing BASE at high
percentages ("around 60%, [Scoop] becomes slightly more expensive than
BASE").
"""

from _harness import emit, run_specs

from repro.experiments.reporting import series_table
from repro.experiments.scenarios import fig4_selectivity

FRACTIONS = (0.05, 0.25, 0.60, 1.00)


def test_fig4_selectivity(benchmark):
    def run():
        grid = [
            (frac, spec)
            for frac, specs in fig4_selectivity(fractions=FRACTIONS)
            for spec in specs
        ]
        results = run_specs([spec for _, spec in grid])
        table = {}
        for (frac, spec), result in zip(grid, results):
            table.setdefault(frac, {})[spec.policy] = result
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    series = {
        policy: [table[f][policy].total_messages for f in FRACTIONS]
        for policy in ("scoop", "local", "base")
    }
    emit(
        "fig4_selectivity",
        series_table(
            "% nodes queried",
            series,
            [f"{f:.0%}" for f in FRACTIONS],
            "Figure 4: cost vs percentage of nodes queried (REAL)",
        ),
    )

    # SCOOP beats LOCAL and BASE when few nodes are queried.
    assert series["scoop"][0] < series["local"][0]
    assert series["scoop"][0] < series["base"][0]
    # LOCAL is roughly flat: its flood ignores the bitmap width.
    assert max(series["local"]) < 2.0 * min(series["local"])
    # SCOOP's cost grows with the fraction of nodes queried.
    assert series["scoop"][-1] > series["scoop"][0]
