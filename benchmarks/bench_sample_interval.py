"""E9 — Section 6 text: the sample-interval sweep.

Paper: "As less data is stored, differences between the behavior of Scoop
on different types of data are less pronounced as the cost of queries,
mappings, and summaries becomes dominant."
"""

from _harness import emit, run_specs

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import sample_interval_sweep

INTERVALS = (15.0, 60.0)


def test_sample_interval(benchmark):
    def run():
        grid = [
            (interval, spec)
            for interval, specs in sample_interval_sweep(intervals=INTERVALS)
            for spec in specs
        ]
        results = run_specs([spec for _, spec in grid])
        table = {}
        for (interval, spec), result in zip(grid, results):
            table.setdefault(interval, {})[spec.workload] = result
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for interval in INTERVALS:
        per = table[interval]
        rows.append(
            [f"{interval:.0f}s"]
            + [int(per[w].total_messages) for w in ("unique", "gaussian", "random")]
        )
    emit(
        "sample_interval",
        format_table(
            ["sample interval", "unique", "gaussian", "random"],
            rows,
            "Section 6: Scoop cost vs sample interval, per data source",
        ),
    )

    def spread(interval):
        totals = [
            table[interval][w].total_messages for w in ("unique", "gaussian", "random")
        ]
        return max(totals) - min(totals)

    # The gap between the best and worst data source shrinks as the data
    # rate drops.
    assert spread(INTERVALS[-1]) < spread(INTERVALS[0])
    # Less data, fewer messages overall for the data-heavy source.
    assert (
        table[INTERVALS[-1]]["random"].total_messages
        < table[INTERVALS[0]]["random"].total_messages
    )
