"""Simulator-speed microbenchmark: the committed perf baseline.

Three measurements, reported as one JSON document:

* **kernel events/sec** — a pure scheduling workload (self-rescheduling
  timers plus cancellation churn) through :class:`repro.sim.kernel.
  Simulator`, once per available scheduler backend (``heap`` always;
  ``calendar`` when the kernel provides it);
* **E13-smoke trial throughput** — one full SCOOP trial at the scaling
  grid's 64-node point, time-scaled exactly as CI's smoke runs are
  (``scale=0.15``), reported as trials/sec and simulator events/sec;
* **peak RSS** — maximum resident set size of one short grid-topology
  trial at 64/256/1024 nodes, each probed in a fresh subprocess so the
  numbers are not polluted by the parent's allocations.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # print JSON
    PYTHONPATH=src python benchmarks/bench_kernel.py --json out.json
    PYTHONPATH=src python benchmarks/bench_kernel.py --no-rss   # quick mode
    PYTHONPATH=src python benchmarks/bench_kernel.py --rss-probe 256  # internal

The committed trajectory lives in ``benchmarks/BENCH_kernel.json``; the CI
perf gate (``.github/scripts/assert_perf_gate.py``) compares a fresh run
against its ``baseline`` entry and fails on >20% throughput regressions.
Refresh the baseline with::

    PYTHONPATH=src python benchmarks/bench_kernel.py --update-baseline \
        --label "<short reason>"

This module is intentionally NOT a pytest benchmark: gate decisions need
machine-readable output and a stable workload, not pytest-benchmark's
adaptive rounds.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.config import ScoopConfig, ValueDomain  # noqa: E402
from repro.experiments.runner import ExperimentSpec, run_experiment  # noqa: E402
from repro.sim.kernel import Simulator  # noqa: E402

BENCH_FILE = REPO_ROOT / "benchmarks" / "BENCH_kernel.json"

#: The E13 smoke point: the scaling grid's 64-node SCOOP trial at the CI
#: smoke time scale. Pinned here (not read from scenarios.py + env) so the
#: committed trajectory always measures the same workload.
E13_SMOKE_SCALE = 0.15

#: Scheduling-churn workload size for the kernel measurement.
KERNEL_EVENTS = 200_000

#: RSS probe sizes (nodes). 1024 is the first-ever four-digit point; it
#: runs on a lattice (O(n) degree) so the probe measures simulator state,
#: not the O(n^2) geometric generator.
RSS_SIZES = (64, 256, 1024)


def e13_smoke_spec(seed: int = 1) -> ExperimentSpec:
    """The scaling_xl n=64 SCOOP trial at smoke scale, spelled out."""
    import dataclasses

    from repro.experiments.runner import scale_spec
    from repro.experiments.scenarios import scaling_xl

    series = scaling_xl(seed=seed, sizes=(64,))
    spec = series[0][1][0]  # (n, [scoop, local]) -> scoop
    # scenarios.py already applied the env scale; re-pin to the committed
    # scale so the benchmark ignores REPRO_BENCH_SCALE/REPRO_FULL.
    unscaled = dataclasses.replace(
        spec,
        scoop=dataclasses.replace(
            spec.scoop, duration=2400.0, stabilization=600.0
        ),
    )
    return scale_spec(unscaled, E13_SMOKE_SCALE)


def grid_probe_spec(n_nodes: int, seed: int = 1) -> ExperimentSpec:
    """A short lattice trial used by the RSS probe (and the nightly
    1024-node point): smoke-style timers, O(n)-degree topology."""
    return ExperimentSpec(
        policy="scoop",
        workload="gaussian",
        topology_kind="grid",
        link_loss=0.3,
        scoop=ScoopConfig(
            n_nodes=n_nodes,
            domain=ValueDomain(0, 100),
            sample_interval=10.0,
            query_interval=20.0,
            summary_interval=40.0,
            remap_interval=80.0,
            stabilization=60.0,
            duration=120.0,
            beacon_interval=10.0,
            query_reply_window=8.0,
            max_network_size=max(256, n_nodes),
        ),
        seed=seed,
    )


# ----------------------------------------------------------------------
# Measurements
# ----------------------------------------------------------------------
def measure_kernel(scheduler: str = "heap", n_events: int = KERNEL_EVENTS) -> float:
    """Events/sec of a pure scheduling workload on one backend."""
    try:
        sim = Simulator(seed=7, scheduler=scheduler)
    except TypeError:  # pre-PR6 kernel: heap only, no scheduler parameter
        if scheduler != "heap":
            return 0.0
        sim = Simulator(seed=7)

    handles: List[object] = []

    def tick(period: float) -> None:
        handles.append(sim.schedule(period, tick, period))
        if len(handles) >= 64:
            # Cancellation churn: drop half the pending handles.
            for handle in handles[0:64:2]:
                handle.cancel()
            del handles[:64]

    for i in range(50):
        sim.schedule(0.001 * (i + 1), tick, 0.37 + 0.01 * i)
    started = time.perf_counter()
    executed = 0
    while executed < n_events and sim.step():
        executed += 1
    elapsed = time.perf_counter() - started
    return executed / elapsed if elapsed > 0 else 0.0


def measure_trial(spec: ExperimentSpec) -> Dict[str, float]:
    """Wall time, trial and event throughput of one simulated trial."""
    started = time.perf_counter()
    result = run_experiment(spec)
    elapsed = time.perf_counter() - started
    events = 0
    if result.metrics is not None:
        timing = getattr(result.metrics, "timing", None) or {}
        events = int(timing.get("events_processed", 0))
    return {
        "wall_s": round(elapsed, 3),
        "trials_per_sec": round(1.0 / elapsed, 4) if elapsed > 0 else 0.0,
        "events_processed": events,
        "events_per_sec": round(events / elapsed, 1) if elapsed > 0 else 0.0,
        "total_messages": result.total_messages,
    }


def measure_rss_subprocess(n_nodes: int) -> float:
    """Peak RSS (MiB) of a fresh-process grid trial at ``n_nodes``."""
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--rss-probe", str(n_nodes)],
        capture_output=True,
        text=True,
        check=True,
        cwd=str(REPO_ROOT),
    )
    return float(proc.stdout.strip().splitlines()[-1])


def _rss_probe_main(n_nodes: int) -> None:
    """Subprocess entry: run the probe trial, print peak RSS in MiB."""
    run_experiment(grid_probe_spec(n_nodes))
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    peak_mb = peak_kb / 1024.0 if sys.platform != "darwin" else peak_kb / (1024.0**2)
    print(f"{peak_mb:.1f}")


def run_bench(
    include_rss: bool = True,
    rss_sizes=RSS_SIZES,
    trial_repeats: int = 3,
    kernel_repeats: int = 3,
) -> Dict[str, object]:
    """The full benchmark document (no I/O).

    Throughput measurements are best-of-N (``trial_repeats`` /
    ``kernel_repeats``): max throughput estimates the machine's capability
    with transient scheduler noise stripped, which is what a regression
    gate must compare.
    """
    best_heap = max(measure_kernel("heap") for _ in range(kernel_repeats))
    kernel = {"heap_events_per_sec": round(best_heap, 1)}
    calendar = max(measure_kernel("calendar") for _ in range(kernel_repeats))
    if calendar:
        kernel["calendar_events_per_sec"] = round(calendar, 1)

    spec = e13_smoke_spec()
    trials = [measure_trial(spec) for _ in range(trial_repeats)]
    best = max(trials, key=lambda t: t["trials_per_sec"])

    doc: Dict[str, object] = {
        "schema": 1,
        "python": sys.version.split()[0],
        "kernel": kernel,
        "e13_smoke": best,
    }
    if include_rss:
        doc["peak_rss_mb"] = {
            str(n): measure_rss_subprocess(n) for n in rss_sizes
        }
    return doc


# ----------------------------------------------------------------------
# Trajectory file
# ----------------------------------------------------------------------
def load_trajectory() -> Dict[str, object]:
    if BENCH_FILE.exists():
        return json.loads(BENCH_FILE.read_text())
    return {"schema": 1, "baseline": None, "history": []}


def update_baseline(doc: Dict[str, object], label: str) -> None:
    trajectory = load_trajectory()
    entry = dict(doc, label=label)
    trajectory["history"].append(entry)
    trajectory["baseline"] = entry
    BENCH_FILE.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, help="write the document here")
    parser.add_argument(
        "--no-rss", action="store_true", help="skip the subprocess RSS probes"
    )
    parser.add_argument(
        "--rss-sizes",
        default=",".join(str(n) for n in RSS_SIZES),
        help="comma-separated node counts for the RSS probes",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="trial measurements (best-of)"
    )
    parser.add_argument(
        "--kernel-repeats",
        type=int,
        default=3,
        help="kernel measurements per backend (best-of)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="append this run to BENCH_kernel.json and make it the baseline",
    )
    parser.add_argument(
        "--label", default="manual", help="history label for --update-baseline"
    )
    parser.add_argument(
        "--rss-probe", type=int, default=None, help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)

    if args.rss_probe is not None:
        _rss_probe_main(args.rss_probe)
        return 0

    sizes = tuple(int(s) for s in args.rss_sizes.split(",") if s)
    doc = run_bench(
        include_rss=not args.no_rss,
        rss_sizes=sizes,
        trial_repeats=args.repeats,
        kernel_repeats=args.kernel_repeats,
    )
    text = json.dumps(doc, indent=2, sort_keys=True)
    print(text)
    if args.json:
        Path(args.json).write_text(text + "\n")
    if args.update_baseline:
        update_baseline(doc, args.label)
        print(f"baseline updated in {BENCH_FILE}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
