"""A2 — ablation: statistics staleness (remap-interval sweep).

Not a paper figure; quantifies the freshness/overhead trade-off the paper
sets by hand ("the basestation recreates a new storage index every 4
minutes"). Faster remaps track drifting data better (fewer owner misses)
but cost more mapping messages.
"""

from _harness import emit, run_specs

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import ablation_statistics

INTERVALS = (120.0, 240.0, 480.0)


def test_ablation_statistics(benchmark):
    def run():
        grid = ablation_statistics(remap_intervals=INTERVALS)
        results = run_specs([spec for _, spec in grid])
        return dict(zip([interval for interval, _ in grid], results))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for interval in INTERVALS:
        r = results[interval]
        rows.append(
            [
                f"{interval:.0f}s",
                int(r.breakdown["mapping"]),
                int(r.breakdown["data"]),
                f"{r.owner_hit_rate:.0%}",
                int(r.total_messages),
            ]
        )
    emit(
        "ablation_statistics",
        format_table(
            ["remap interval", "mapping msgs", "data msgs", "owner hit", "total"],
            rows,
            "Ablation: remap interval vs mapping overhead and placement quality",
        ),
    )

    # All remap rates keep the system functional.
    for interval, r in results.items():
        assert r.storage_success_rate > 0.8, interval
