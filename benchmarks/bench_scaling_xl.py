"""E13 — past the paper: 64..256-node scaling under a widened bitmap.

The paper stops at 100 nodes and a 128-bit query bitmap. This grid doubles
the deployment capacity (``XL_NETWORK_CAPACITY`` = 256, so every query
carries a 32-byte bitmap) and scales SCOOP vs LOCAL to 256 nodes —
the index-maintenance-vs-scale question the related storage-index
literature asks, answered on Scoop's own substrate.
"""

from _harness import emit, run_specs

from repro.experiments.scenarios import XL_NETWORK_CAPACITY, scaling_xl
from repro.experiments.reporting import format_table

SIZES = (64, 128, 192, 256)


def test_scaling_xl(benchmark):
    def run():
        grid = [(n, spec) for n, specs in scaling_xl(sizes=SIZES) for spec in specs]
        # The whole series runs under the widened 256-node bitmap: every
        # query is priced at 32 bytes, not the paper's 16.
        for _n, spec in grid:
            assert spec.scoop.max_network_size == XL_NETWORK_CAPACITY
            assert spec.scoop.query_bitmap_bytes == 32
        results = run_specs([spec for _, spec in grid])
        table = {}
        for (n, spec), result in zip(grid, results):
            table.setdefault(n, {})[spec.policy] = result
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n in SIZES:
        scoop, local = table[n]["scoop"], table[n]["local"]
        rows.append(
            [
                n,
                int(scoop.total_messages),
                f"{scoop.storage_success_rate:.0%}",
                int(local.total_messages),
                f"{local.total_messages / scoop.total_messages:.1f}x",
            ]
        )
    emit(
        "scaling_xl",
        format_table(
            ["nodes", "SCOOP msgs", "SCOOP stored", "LOCAL msgs", "LOCAL/SCOOP"],
            rows,
            "E13: SCOOP vs LOCAL at 64..256 nodes (32-byte query bitmap)",
        ),
    )

    # Cost grows with population for both policies, at every step.
    for policy in ("scoop", "local"):
        totals = [table[n][policy].total_messages for n in SIZES]
        assert all(a < b for a, b in zip(totals, totals[1:])), (policy, totals)
    for n in SIZES:
        # The index keeps beating the flood as the network doubles past
        # the paper's scale...
        assert table[n]["scoop"].total_messages < table[n]["local"].total_messages
    # ...and the storage pipeline still works at 256 nodes.
    assert table[SIZES[-1]]["scoop"].storage_success_rate > 0.8
