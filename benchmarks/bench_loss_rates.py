"""E6 — Section 6 text: end-to-end loss rates.

Paper: "Data messages are successfully stored about 93% of the time, and
about 78% of query results are successfully retrieved on average"; "about
85% of the time, the appropriate destination node is found ... the
remaining 15% of the time, the value ends up being stored at the root".
"""

from _harness import emit, run_specs

from repro.experiments.reporting import rates_table
from repro.experiments.scenarios import loss_rates


def test_loss_rates(benchmark):
    result = benchmark.pedantic(
        lambda: run_specs([loss_rates()])[0], rounds=1, iterations=1
    )
    emit("loss_rates", rates_table(result, "Section 6: Scoop loss rates (REAL)"))

    # Wide-shape assertions: the reproduction should be in the same regime
    # as the paper's testbed, not match its third digit.
    assert result.storage_success_rate > 0.85
    assert result.owner_hit_rate > 0.60
    assert result.query_reply_rate > 0.50
    # Stored readings leave a physical trace in the metrics: flash-write
    # energy was spent somewhere, and replies actually flowed (the reply
    # bucket of the transmission census is non-empty).
    assert result.metrics.energy_j["flash_write"] > 0
    assert result.metrics.messages_sent.get("reply", 0) > 0
