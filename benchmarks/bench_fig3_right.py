"""E3 — Figure 3 (right): SCOOP over the five data sources.

Expected shape (paper): UNIQUE performs best (perfect locality); EQUAL is
cheap (suppressed mappings, full batching); RANDOM is the worst case, where
Scoop "performs no better than BASE or HASH" because there is no
predictability to exploit; REAL and GAUSSIAN sit in between.
"""

from _harness import emit, run_specs

from repro.experiments.reporting import breakdown_table
from repro.experiments.scenarios import fig3_right


def test_fig3_right(benchmark):
    def run():
        return run_specs(fig3_right())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig3_right",
        breakdown_table(results, "Figure 3 (right): Scoop over different data sources"),
    )
    totals = {r.workload: r.total_messages for r in results}

    # RANDOM is Scoop's adversarial case: costlier than every structured
    # source.
    assert totals["random"] > totals["unique"]
    assert totals["random"] > totals["equal"]
    assert totals["random"] > totals["gaussian"]
    # UNIQUE exploits locality: among the cheapest sources.
    assert totals["unique"] <= min(totals["gaussian"], totals["random"])
    # EQUAL suppresses mapping dissemination: very few mapping messages —
    # visible directly in the per-kind transmission census.
    by_workload = {r.workload: r for r in results}
    assert (
        by_workload["equal"].metrics.messages_sent.get("mapping", 0)
        <= by_workload["random"].metrics.messages_sent.get("mapping", 0)
    )
    # Every source runs the same protocol substrate: routing beacons are
    # tracked (outside the paper's metric) and nonzero everywhere.
    for r in results:
        assert r.metrics.messages_sent.get("beacon", 0) > 0
        assert r.breakdown["mapping"] == r.metrics.messages_sent.get("mapping", 0)
