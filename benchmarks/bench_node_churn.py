"""E14 — past the paper: data survival and recovery under node churn.

The paper's Section 6 notes that nodes die and that Scoop's answer is
adaptivity: the basestation stops assigning ranges to silent nodes and
the next storage index re-maps a dead owner's range. This grid kills
0..45% of the sensors mid-run (`sim/failure.py`) and compares SCOOP with
LOCAL: retrieval completeness must degrade monotonically as churn rises,
and SCOOP must *re-map* (planner reassignment counters move, the storage
pipeline keeps landing readings) rather than collapse.
"""

from _harness import emit, run_specs

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import node_churn

RATES = (0.0, 0.15, 0.3, 0.45)

#: Seed-to-seed slack on the per-rate completeness comparison: adjacent
#: rates kill different node sets at different times, so monotonicity is
#: asserted up to this tolerance (the 0 -> max drop must be strict).
MONOTONE_SLACK = 0.03


def test_node_churn(benchmark):
    def run():
        grid = [
            (rate, spec)
            for rate, specs in node_churn(rates=RATES)
            for spec in specs
        ]
        results = run_specs([spec for _, spec in grid])
        table = {}
        for (rate, spec), result in zip(grid, results):
            table.setdefault(rate, {})[spec.policy] = result
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for rate in RATES:
        scoop, local = table[rate]["scoop"], table[rate]["local"]
        rows.append(
            [
                f"{rate:.0%}",
                f"{scoop.retrieval_completeness:.0%}",
                f"{scoop.storage_success_rate:.0%}",
                int(scoop.metrics.planner.get("owners_reassigned", 0)),
                f"{local.retrieval_completeness:.0%}",
                int(scoop.total_messages),
                int(local.total_messages),
            ]
        )
    emit(
        "node_churn",
        format_table(
            [
                "churn",
                "SCOOP compl",
                "SCOOP stored",
                "reassigned",
                "LOCAL compl",
                "SCOOP msgs",
                "LOCAL msgs",
            ],
            rows,
            "E14: data survival and owner reassignment under node churn",
        ),
    )

    for policy in ("scoop", "local"):
        completeness = [table[rate][policy].retrieval_completeness for rate in RATES]
        # Completeness degrades monotonically with churn (up to seed noise)
        # and the full sweep ends strictly lower than it started.
        for a, b in zip(completeness, completeness[1:]):
            assert b <= a + MONOTONE_SLACK, (policy, completeness)
        assert completeness[-1] < completeness[0] - 0.05, (policy, completeness)
    for rate in RATES:
        scoop = table[rate]["scoop"]
        # SCOOP re-maps rather than collapses: readings keep landing
        # somewhere retrievable even at the highest churn...
        assert scoop.storage_success_rate > 0.8, (rate, scoop.storage_success_rate)
        if rate > 0:
            # ...because dead owners' ranges are reassigned at a remap.
            assert scoop.metrics.planner.get("owners_reassigned", 0) > 0, rate
            assert scoop.metrics.survival["nodes_failed"] > 0, rate
        else:
            assert scoop.metrics.survival["nodes_failed"] == 0
