"""E1 — Figure 3 (left): testbed cost breakdown by message type.

Paper series: scoop/unique, scoop/gaussian, local/gaussian, base/gaussian.
Expected shape: scoop/unique is cheapest (each node owns its own value);
scoop/gaussian beats both LOCAL and BASE despite its summary and mapping
overheads.
"""

from _harness import emit, run_specs

from repro.experiments.reporting import breakdown_table
from repro.experiments.scenarios import fig3_left


def test_fig3_left(benchmark):
    def run():
        return run_specs(fig3_left())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig3_left",
        breakdown_table(results, "Figure 3 (left): cost breakdown per storage method"),
    )
    by_label = {f"{r.policy}/{r.workload}": r for r in results}
    scoop_unique = by_label["scoop/unique"].total_messages
    scoop_gauss = by_label["scoop/gaussian"].total_messages
    local_gauss = by_label["local/gaussian"].total_messages
    base_gauss = by_label["base/gaussian"].total_messages

    # Paper shape: Scoop outperforms LOCAL and BASE on GAUSSIAN; UNIQUE is
    # Scoop's best case.
    assert scoop_gauss < local_gauss
    assert scoop_gauss < base_gauss
    assert scoop_unique <= scoop_gauss * 1.1
    # BASE has only data messages; LOCAL only query/reply messages —
    # asserted on the per-kind transmission census, not the merged
    # figure categories.
    base_sent = by_label["base/gaussian"].metrics.messages_sent
    assert base_sent.get("summary", 0) == 0
    assert base_sent.get("mapping", 0) == 0
    assert base_sent.get("query", 0) + base_sent.get("reply", 0) == 0
    local_sent = by_label["local/gaussian"].metrics.messages_sent
    assert local_sent.get("data", 0) == 0
    assert local_sent.get("summary", 0) == 0
    # The merged breakdown is exactly the census re-bucketed: each trial's
    # categories sum to its total.
    for r in results:
        assert sum(r.breakdown.values()) == r.total_messages
        cost_kinds = ("data", "summary", "mapping", "query", "reply")
        assert (
            sum(r.metrics.messages_sent.get(k, 0) for k in cost_kinds)
            == r.total_messages
        )
