"""Shared benchmark harness: cached experiment runs and table output.

Experiments are deterministic in their spec, so repeated specs across
benchmark files (e.g. the default scoop/real trial appears in Figure 3
middle, the loss-rate table and the root-skew table) run once per pytest
session. Every benchmark writes its rendered table to
``benchmarks/results/<name>.txt`` and prints it, so a benchmark run leaves
the regenerated figures on disk.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import Dict, List

from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
    run_hash_analytical,
)

RESULTS_DIR = Path(__file__).parent / "results"

_CACHE: Dict[str, ExperimentResult] = {}


def _spec_key(spec: ExperimentSpec, analytical: bool = False) -> str:
    return repr((dataclasses.asdict(spec), analytical))


def cached_run(spec: ExperimentSpec) -> ExperimentResult:
    """Run (or reuse) one simulated trial."""
    key = _spec_key(spec)
    if key not in _CACHE:
        _CACHE[key] = run_experiment(spec)
    return _CACHE[key]


def cached_hash_analytical(spec: ExperimentSpec) -> ExperimentResult:
    key = _spec_key(spec, analytical=True)
    if key not in _CACHE:
        _CACHE[key] = run_hash_analytical(spec)
    return _CACHE[key]


def run_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Dispatch: the HASH policy is evaluated analytically by default, as
    in the paper ("we evaluate the cost of this HASH approach
    analytically"); set REPRO_HASH_SIMULATED=1 to run the simulated HASH
    extension instead."""
    if spec.policy == "hash" and not os.environ.get("REPRO_HASH_SIMULATED"):
        return cached_hash_analytical(spec)
    return cached_run(spec)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
