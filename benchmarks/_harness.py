"""Shared benchmark harness: campaign-backed cached runs and table output.

Benchmarks execute through the campaign engine
(:mod:`repro.experiments.campaign`): every trial is keyed by its canonical
spec hash and served from the persistent on-disk cache under
``benchmarks/results/cache/`` when available, so repeated specs across
benchmark files — and across pytest sessions — run at most once. Set
``REPRO_BENCH_JOBS=N`` to fan a benchmark's trials out over N worker
processes (results are identical to a serial run). Cache keys are salted
with a hash of the ``repro`` source tree, so editing simulator code
invalidates stale entries automatically. Every benchmark writes its
rendered table to
``benchmarks/results/<name>.txt`` and prints it, so a benchmark run leaves
the regenerated figures on disk.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, List

from repro.experiments.cache import ResultCache
from repro.experiments.campaign import (
    Campaign,
    default_analytical,
    run_cached,
    run_campaign,
)
from repro.experiments.runner import ExperimentResult, ExperimentSpec

RESULTS_DIR = Path(__file__).parent / "results"

#: One shared memory-over-disk cache for the whole benchmark session.
CACHE = ResultCache()


def _jobs() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def cached_run(spec: ExperimentSpec) -> ExperimentResult:
    """Run (or reuse) one simulated trial."""
    return run_cached(spec, analytical=False, cache=CACHE)


def cached_hash_analytical(spec: ExperimentSpec) -> ExperimentResult:
    return run_cached(spec, analytical=True, cache=CACHE)


def run_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Dispatch: the HASH policy is evaluated analytically by default, as
    in the paper ("we evaluate the cost of this HASH approach
    analytically"); set REPRO_HASH_SIMULATED=1 to run the simulated HASH
    extension instead."""
    return run_cached(spec, analytical=default_analytical(spec), cache=CACHE)


def run_specs(specs: Iterable[ExperimentSpec]) -> List[ExperimentResult]:
    """Run a batch of specs as one campaign, in input order.

    Cache hits are free; misses run serially or across ``REPRO_BENCH_JOBS``
    worker processes.
    """
    campaign = Campaign.from_specs("bench", list(specs))
    return run_campaign(campaign, jobs=_jobs(), cache=CACHE).results


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
