"""Benchmark-suite configuration.

Benchmarks here are *experiment regenerations*: each one runs the paper's
corresponding trial(s) once (rounds=1) and prints/persists the resulting
table. Wall-clock timing is reported by pytest-benchmark but the interesting
output is the message-count tables under ``benchmarks/results/``.
"""

import sys
from pathlib import Path

# Make the sibling _harness module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))
