"""E2 — Figure 3 (middle): SCOOP vs LOCAL vs HASH vs BASE on the REAL trace.

HASH is evaluated analytically, exactly as in the paper ("Because we did
not have a working implementation of HASH ... we evaluate the cost of this
HASH approach analytically"). Expected shape: SCOOP well below every
baseline; HASH comparable to BASE.
"""

from _harness import emit, run_specs

from repro.experiments.reporting import breakdown_table
from repro.experiments.scenarios import fig3_middle


def test_fig3_middle(benchmark):
    def run():
        return run_specs(fig3_middle())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig3_middle",
        breakdown_table(
            results,
            "Figure 3 (middle): storage policies over the REAL trace "
            "(HASH analytical)",
        ),
    )
    totals = {r.policy: r.total_messages for r in results}

    # Paper shape: SCOOP cheapest by a wide margin.
    assert totals["scoop"] < totals["local"]
    assert totals["scoop"] < totals["base"]
    assert totals["scoop"] < totals["hash"]
    # HASH performs "about as well as BASE" (same order of magnitude).
    assert 0.3 < totals["hash"] / totals["base"] < 3.0

    by_policy = {r.policy: r for r in results}
    # Simulated trials carry the structured breakdown; the analytical HASH
    # evaluation has no simulator to meter.
    assert by_policy["hash"].analytical and by_policy["hash"].metrics is None
    scoop = by_policy["scoop"].metrics
    assert scoop is not None
    # Section 2.1's premise, measured: radio energy dominates flash by
    # orders of magnitude, and SCOOP pays a real (non-zero) mapping cost.
    assert scoop.energy_j["radio_tx"] > 100 * scoop.energy_j["flash_write"]
    assert scoop.messages_sent.get("mapping", 0) > 0
    assert scoop.planner.get("model_builds", 0) >= 1
    assert scoop.planner.get("dijkstra_runs", 0) > 0
