"""E12 — past the paper: cost under degrading link quality.

The paper reports loss behaviour only at the testbed's native loss rates
(E6). This sweep degrades every audible testbed link by 0..50% extra
independent loss (:func:`repro.sim.topology.degrade`) and compares SCOOP
with LOCAL: retransmissions should inflate Scoop's cost as links worsen,
while its storage pipeline keeps working.
"""

from _harness import emit, run_specs

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import loss_sweep

LOSSES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def test_loss_sweep(benchmark):
    def run():
        grid = [
            (extra, spec)
            for extra, specs in loss_sweep(losses=LOSSES)
            for spec in specs
        ]
        results = run_specs([spec for _, spec in grid])
        table = {}
        for (extra, spec), result in zip(grid, results):
            table.setdefault(extra, {})[spec.policy] = result
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for extra in LOSSES:
        scoop, local = table[extra]["scoop"], table[extra]["local"]
        rows.append(
            [
                f"{extra:.0%}",
                int(scoop.total_messages),
                f"{scoop.storage_success_rate:.0%}",
                f"{scoop.query_reply_rate:.0%}",
                int(local.total_messages),
            ]
        )
    emit(
        "loss_sweep",
        format_table(
            ["extra loss", "SCOOP msgs", "SCOOP stored", "SCOOP replies", "LOCAL msgs"],
            rows,
            "E12: SCOOP vs LOCAL as every testbed link degrades",
        ),
    )

    # Worse links cost more transmissions end to end.
    assert (
        table[LOSSES[-1]]["scoop"].total_messages
        > table[LOSSES[0]]["scoop"].total_messages
    )
    for extra in LOSSES:
        scoop, local = table[extra]["scoop"], table[extra]["local"]
        # The storage pipeline survives the whole sweep.
        assert scoop.storage_success_rate > 0.85, extra
        # The index keeps beating a flood at every loss level.
        assert scoop.total_messages < local.total_messages, extra
