"""E11 — past the paper: SCOOP vs LOCAL across topology profiles.

The paper evaluates one indoor testbed and one simulated ~20%-degree
profile. This grid re-runs the comparison over four topology families
(line, near-square grid, random geometric, indoor testbed) at the
testbed's 63-node size: Scoop's placement advantage should survive a
change of geometry, not just the deployment it was tuned on.
"""

from _harness import emit, run_specs

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import topology_profiles

KINDS = ("line", "grid", "geometric", "testbed")


def test_topology_profiles(benchmark):
    def run():
        grid = [
            (kind, spec)
            for kind, specs in topology_profiles(kinds=KINDS)
            for spec in specs
        ]
        results = run_specs([spec for _, spec in grid])
        table = {}
        for (kind, spec), result in zip(grid, results):
            table.setdefault(kind, {})[spec.policy] = result
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for kind in KINDS:
        scoop, local = table[kind]["scoop"], table[kind]["local"]
        rows.append(
            [
                kind,
                int(scoop.total_messages),
                f"{scoop.storage_success_rate:.0%}",
                int(local.total_messages),
                f"{local.total_messages / scoop.total_messages:.1f}x",
            ]
        )
    emit(
        "topology_profiles",
        format_table(
            ["topology", "SCOOP msgs", "SCOOP stored", "LOCAL msgs", "LOCAL/SCOOP"],
            rows,
            "E11: SCOOP vs LOCAL total cost across topology profiles",
        ),
    )

    for kind in KINDS:
        scoop, local = table[kind]["scoop"], table[kind]["local"]
        # Both policies actually ran on every profile.
        assert scoop.total_messages > 0 and local.total_messages > 0
        # LOCAL's census is pure query/reply by construction: no data,
        # summary, or mapping traffic under any topology.
        for category in ("data", "summary", "mapping"):
            assert local.breakdown[category] == 0, (kind, category)
        # Scoop keeps storing reliably on every geometry.
        assert scoop.storage_success_rate > 0.85, kind
    # On the 2-D profiles (where floods fan out), the index pays for
    # itself; the 1-D line is excluded — a chain flood is nearly free, so
    # the margin there is noise.
    for kind in ("grid", "geometric", "testbed"):
        assert (
            table[kind]["scoop"].total_messages
            < table[kind]["local"].total_messages
        ), kind
