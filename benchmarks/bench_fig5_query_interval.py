"""E5 — Figure 5: total cost as a function of the interval between queries.

Expected shape (paper): "Since the query cost is very small in SCOOP and
zero in BASE, only LOCAL is substantially affected by this; as the query
rate drops, it becomes a more attractive option relative to the others."
"""

from _harness import emit, run_specs

from repro.experiments.reporting import series_table
from repro.experiments.scenarios import fig5_query_interval

INTERVALS = (5.0, 15.0, 45.0)


def test_fig5_query_interval(benchmark):
    def run():
        grid = [
            (interval, spec)
            for interval, specs in fig5_query_interval(intervals=INTERVALS)
            for spec in specs
        ]
        results = run_specs([spec for _, spec in grid])
        table = {}
        for (interval, spec), result in zip(grid, results):
            table.setdefault(interval, {})[spec.policy] = result
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    series = {
        policy: [table[i][policy].total_messages for i in INTERVALS]
        for policy in ("scoop", "local", "base")
    }
    emit(
        "fig5_query_interval",
        series_table(
            "query interval (s)",
            series,
            [f"{i:.0f}" for i in INTERVALS],
            "Figure 5: cost vs query interval (REAL)",
        ),
    )

    # LOCAL's cost falls sharply as queries become rarer.
    assert series["local"][0] > 2.0 * series["local"][-1]
    # BASE is (nearly) unaffected by the query rate.
    assert max(series["base"]) < 1.3 * min(series["base"])
    # At the default/faster query rates SCOOP beats LOCAL.
    assert series["scoop"][0] < series["local"][0]
