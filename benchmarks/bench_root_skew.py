"""E7 — Section 6 text: load on the root node and battery-lifetime ratios.

Paper: the BASE root "receives about 24,000 data messages"; the LOCAL root
is lightest; SCOOP sits between — and overall, "if a node running LOCAL can
last for one month ... an average SCOOP node would last for about three
months, although the battery on the root in SCOOP would have to be replaced
every two weeks."
"""

from _harness import emit, run_specs

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import root_skew


def test_root_skew(benchmark):
    def run():
        specs = root_skew()
        return dict(zip([s.policy for s in specs], run_specs(specs)))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for policy in ("scoop", "base", "local"):
        r = results[policy]
        rows.append(
            [
                policy,
                r.root_sent,
                r.root_received,
                f"{r.root_energy_j:.2f}",
                f"{r.metrics.root_energy_j['radio_rx']:.2f}",
                f"{r.mean_node_energy_j:.2f}",
                f"{r.metrics.load_skew:.2f}",
            ]
        )
    headers = [
        "policy",
        "root sent",
        "root received",
        "root J",
        "root rx J",
        "mean node J",
        "skew",
    ]
    emit(
        "root_skew",
        format_table(
            headers,
            rows,
            "Section 6: root-node load and energy by policy (REAL)",
        ),
    )

    # BASE's root receives every reading: far more traffic lands on it than
    # on SCOOP's root (which only collects summaries and rule-4 fallbacks).
    assert results["base"].root_received > results["scoop"].root_received
    # The same skew, read off the structured per-node load map: the root's
    # node_load entry is consistent with the coarse counters, and BASE's
    # root pays more reception *energy* than SCOOP's ("costly as the radio
    # must be on at all times").
    for r in results.values():
        assert r.metrics.node_load["0"] == r.root_sent + r.root_received
        assert r.metrics.load_skew >= 1.0
    assert (
        results["base"].metrics.root_energy_j["radio_rx"]
        > results["scoop"].metrics.root_energy_j["radio_rx"]
    )
    # The average SCOOP node spends less energy than the average LOCAL node
    # (the paper's 1 month -> 3 months claim) and than the average BASE node.
    assert results["scoop"].mean_node_energy_j < results["local"].mean_node_energy_j
    assert results["scoop"].mean_node_energy_j < results["base"].mean_node_energy_j
    # Note: the paper additionally reports SCOOP's root as busier than its
    # average node; with the basestation at the floor's corner, relay nodes
    # in the middle of the tree carry more retransmissions than the root
    # itself — recorded as a deviation in EXPERIMENTS.md (E7).
