"""E10 — Section 4: indexing-algorithm practicality (O(V·n²)).

Paper: "In our experiments ... V was at about 150 and n was 62. For the
size of sensor networks we are aiming for — a few hundred nodes — this
algorithm is very practical." This benchmark times index construction at
the paper's scale and at the "few hundred nodes" scale. Unlike the
campaign-backed experiment benchmarks it measures a pure in-process
computation, so it bypasses the result cache on purpose (see DESIGN.md,
E10).
"""

import random

import pytest

from repro.core.config import ScoopConfig, ValueDomain
from repro.core.cost_model import NetworkModel
from repro.core.histogram import Histogram
from repro.core.indexing import build_storage_index
from repro.core.messages import SummaryMessage
from repro.core.statistics import BasestationStatistics


def synthetic_statistics(n_nodes: int, domain: ValueDomain, seed: int = 7):
    """A fully populated statistics registry without running a network."""
    rng = random.Random(seed)
    config = ScoopConfig(
        n_nodes=n_nodes,
        domain=domain,
        max_network_size=max(128, n_nodes),
    )
    stats = BasestationStatistics(config)
    for node in range(1, n_nodes):
        center = rng.uniform(domain.lo, domain.hi)
        values = [
            domain.clamp(round(rng.gauss(center, 6.0))) for _ in range(30)
        ]
        summary = SummaryMessage(
            origin=node,
            histogram=Histogram.from_values(values, config.n_bins),
            min_value=min(values),
            max_value=max(values),
            sum_values=sum(values),
            readings_since_last=7,
            neighbors=tuple(
                (rng.randrange(n_nodes), rng.uniform(0.4, 0.95)) for _ in range(12)
            ),
            last_sid=-1,
        )
        stats.ingest_summary(summary, now=float(node))
        stats.observe_packet_header(node, max(0, node - 1), now=float(node))
    for _ in range(40):
        lo = rng.randint(domain.lo, domain.hi - 5)
        stats.record_query((lo, lo + 5), now=rng.uniform(0, 600))
    return config, stats


@pytest.mark.parametrize("n_nodes", [63, 128])
def test_index_construction_speed(benchmark, n_nodes):
    domain = ValueDomain(0, 149)
    config, stats = synthetic_statistics(n_nodes, domain)
    model = NetworkModel.from_statistics(stats)

    result = benchmark(build_storage_index, 1, stats, model, config, 600.0)
    index = result.index
    assert index.domain == domain
    # Every value has an owner and ranges compact correctly.
    assert len(index.compact()) >= 1
    assert index.all_owners() <= set(range(n_nodes))
