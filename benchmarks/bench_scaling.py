"""E8 — Section 6 text: scaling with network size.

Paper: "the system scaled well up to 100 nodes with little overall effect
on loss rate. We observed that Scoop over a RANDOM distribution is more
sensitive to larger networks as data is sent further across the network;
Scoop over other distributions is less sensitive to network size."
"""

from _harness import emit, run_specs

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import scaling

SIZES = (25, 63, 100)


def test_scaling(benchmark):
    def run():
        grid = [
            (n, spec) for n, specs in scaling(sizes=SIZES) for spec in specs
        ]
        results = run_specs([spec for _, spec in grid])
        table = {}
        for (n, spec), result in zip(grid, results):
            table.setdefault(n, {})[spec.workload] = result
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n in SIZES:
        real = table[n]["real"]
        rand = table[n]["random"]
        rows.append(
            [
                n,
                int(real.total_messages),
                f"{real.storage_success_rate:.0%}",
                int(rand.total_messages),
                f"{rand.storage_success_rate:.0%}",
            ]
        )
    emit(
        "scaling",
        format_table(
            ["nodes", "REAL msgs", "REAL stored", "RANDOM msgs", "RANDOM stored"],
            rows,
            "Section 6: Scoop total cost and storage success vs network size",
        ),
    )

    # Cost grows with network size for both workloads...
    assert (
        table[SIZES[-1]]["real"].total_messages
        > table[SIZES[0]]["real"].total_messages
    )
    # ...but RANDOM (no locality; data crosses the network) grows at least
    # as fast as REAL in absolute terms.
    real_growth = (
        table[SIZES[-1]]["real"].total_messages
        - table[SIZES[0]]["real"].total_messages
    )
    rand_growth = (
        table[SIZES[-1]]["random"].total_messages
        - table[SIZES[0]]["random"].total_messages
    )
    assert rand_growth > 0.5 * real_growth
    # Loss rates stay workable at 100 nodes ("scaled well up to 100 nodes").
    assert table[SIZES[-1]]["real"].storage_success_rate > 0.75
