"""A1 — ablation: the Section 4 extensions (owner sets, range placement).

Not a paper figure; DESIGN.md calls these out as design choices worth
quantifying. Owner sets can cut data cost when several regions produce the
same values (each ships to a nearby owner); range placement trades index
granularity for fewer mapping chunks.
"""

from _harness import emit, run_specs

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import ablation_extensions


def test_ablation_extensions(benchmark):
    def run():
        variants = ablation_extensions()
        return dict(zip(variants, run_specs(variants.values())))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # Results are cached and shared across benchmark files: never mutate
    # them; build labelled rows locally instead.
    rows = []
    for name, result in results.items():
        rows.append(
            [f"gaussian[{name}]"]
            + [
                int(result.breakdown[c])
                for c in ("data", "summary", "mapping", "query/reply")
            ]
            + [int(result.total_messages)]
        )
    emit(
        "ablation_extensions",
        format_table(
            ["variant", "data", "summary", "mapping", "query/reply", "total"],
            rows,
            "Ablation: Section 4 index extensions (GAUSSIAN)",
        ),
    )

    # All variants complete their workload and store data reliably.
    for name, result in results.items():
        assert result.storage_success_rate > 0.8, name
    # Range placement produces far fewer mapping ranges, hence fewer or
    # equal mapping messages.
    assert (
        results["range-width-10"].breakdown["mapping"]
        <= results["single-owner"].breakdown["mapping"] * 1.25
    )
