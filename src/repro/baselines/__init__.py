"""Baseline storage policies the paper compares Scoop against."""

from repro.baselines.hash_static import (
    AnalyticalHashModel,
    HashBasestation,
    HashCostEstimate,
    HashNode,
    build_hash_index,
    hash_owner,
)
from repro.baselines.local import LocalBasestation, LocalNode
from repro.baselines.send_base import SendToBaseBasestation, SendToBaseNode

__all__ = [
    "AnalyticalHashModel",
    "HashBasestation",
    "HashCostEstimate",
    "HashNode",
    "LocalBasestation",
    "LocalNode",
    "SendToBaseBasestation",
    "SendToBaseNode",
    "build_hash_index",
    "hash_owner",
]
