"""The LOCAL baseline: store everything locally, flood every query.

Section 4/6 of the paper: "In LOCAL, nodes store all data locally and
queries are flooded to all nodes in the network; sensors send their reply
back." There is no statistics collection, no storage index and no mapping
dissemination — the only Scoop-category packets are query floods and the
replies they trigger.

Implementation note: LOCAL reuses the Scoop node/basestation machinery with
the adaptive parts switched off, so both systems share identical routing,
MAC and accounting substrates — differences in the measured message counts
come purely from the storage policy, as in the paper's comparison.
"""

from __future__ import annotations

from typing import Set

from repro.core.basestation import Basestation
from repro.core.node import ScoopNode
from repro.core.query import Query


class LocalNode(ScoopNode):
    """Stores every reading in its own flash; never sends data/summaries."""

    def on_boot(self) -> None:
        # No mapping dissemination under LOCAL.
        pass

    def start_sampling(self) -> None:
        self._require_sources()
        if self.sampling:
            return
        self.sampling = True
        # Sample timer only: LOCAL sends no summaries.
        self._sample_timer.start(
            delay=self.sim.rng.uniform(0.0, self.config.sample_interval)
        )

    def _sample(self) -> None:
        if not self.sampling or (
            self.data_source is None and self.multi_source is None
        ):
            return
        now = self.sim.now
        for attr in self.config.attribute_ids:
            value = self.config.domain_of(attr).clamp(self._read_sensor(attr, now))
            self._recent_by_attr[attr].add(now, value)
            if self.tracker is not None:
                self.tracker.reading_produced(
                    self.node_id, value, now, intended_owner=self.node_id, attr=attr
                )
            self._store_reading((value, now, self.node_id), attr)


class LocalBasestation(Basestation):
    """Floods every query to every node; builds no indices."""

    def on_boot(self) -> None:
        pass  # no mapping dissemination

    def start_scoop(self) -> None:
        pass  # no remapping under LOCAL

    def plan_query(self, query: Query) -> Set[int]:
        """LOCAL "has to always query all nodes" (Section 6, Figure 4):
        without an index the basestation cannot narrow the flood, even for
        node-list queries — only the ``node_filter`` narrows the *answers*.
        """
        return set(range(1, self.config.n_nodes))
