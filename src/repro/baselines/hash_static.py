"""The HASH baseline: static uniform value-to-node hashing (GHT-style).

Section 6 of the paper: "In HASH, a uniform, static hash function maps each
value to a node in the network where it is stored ... This approach is
similar to the proposal for geographic hash tables (GHTs)." The authors had
no any-to-any routing protocol, so "we evaluate the cost of this HASH
approach analytically" — :class:`AnalyticalHashModel` reproduces that
methodology: expected transmissions are computed from the ground-truth
topology ETX and a deterministic replay of the data and query streams,
without running the network.

As an extension this module also provides a *simulated* HASH
(:class:`HashNode` / :class:`HashBasestation`): Scoop's routing rules do
give approximate any-to-any delivery, so the static index can be
pre-installed on every node and run through the full simulator. The paper's
expectation — HASH costs about as much as BASE for storage, plus query
overhead — is checkable both ways.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Set

from repro.core.basestation import Basestation
from repro.core.config import ScoopConfig
from repro.core.node import ScoopNode
from repro.core.query import Query
from repro.core.storage_index import StorageIndex
from repro.sim.topology import Topology
from repro.workloads.base import Workload
from repro.workloads.queries import QueryGenerator, QueryPlanConfig

#: Multiplier used when hashing values to sensors (a large odd constant
#: scrambles consecutive values across the node list).
_HASH_MULTIPLIER = 2_654_435_761


#: Salt stride separating per-attribute hash functions (E15): attribute
#: a's placement uses ``salt + a * _ATTR_SALT_STRIDE``, so attribute 0
#: keeps the legacy single-attribute mapping byte-for-byte.
_ATTR_SALT_STRIDE = 1_000_003


def hash_owner(value: int, sensors: Sequence[int], salt: int = 0) -> int:
    """The static uniform hash: value -> owning sensor node."""
    return sensors[((value + salt) * _HASH_MULTIPLIER) % (2**32) % len(sensors)]


def build_hash_index(
    config: ScoopConfig, salt: int = 0, sid: int = 1, attr: int = 0
) -> StorageIndex:
    """A fixed storage index implementing the static hash placement for
    one attribute."""
    sensors = list(config.sensor_ids)
    attr_salt = salt + attr * _ATTR_SALT_STRIDE
    domain = config.domain_of(attr)
    owners = [hash_owner(v, sensors, attr_salt) for v in domain]
    return StorageIndex.single_owner(sid, domain, owners, attr=attr)


def build_hash_indexes(
    config: ScoopConfig, salt: int = 0, sid: int = 1
) -> Dict[int, StorageIndex]:
    """One static index per registered attribute."""
    return {
        attr: build_hash_index(config, salt=salt, sid=sid, attr=attr)
        for attr in config.attribute_ids
    }


@dataclass
class HashCostEstimate:
    """Analytical message-count estimate, Figure 3 categories."""

    data: float
    query_reply: float

    @property
    def total(self) -> float:
        return self.data + self.query_reply

    def breakdown(self) -> Dict[str, float]:
        return {
            "data": self.data,
            "summary": 0.0,
            "mapping": 0.0,
            "query/reply": self.query_reply,
        }


class AnalyticalHashModel:
    """The paper's analytical evaluation of HASH.

    Data cost: every sample travels from its producer to its hashed owner
    along the ETX-optimal path. Query cost: every query travels from the
    basestation to each owner of a value in its range, and the reply comes
    back. Ground-truth topology ETX stands in for the routing protocol the
    authors did not have.
    """

    def __init__(
        self,
        topology: Topology,
        config: ScoopConfig,
        salt: int = 0,
    ):
        self.topology = topology
        self.config = config
        self.salt = salt
        self.sensors = [n for n in config.sensor_ids if n < topology.n]

    def owner_of(self, value: int, attr: int = 0) -> int:
        return hash_owner(value, self.sensors, self.salt + attr * _ATTR_SALT_STRIDE)

    def _finite_etx(self, src: int, dst: int) -> float:
        etx = self.topology.path_etx(src, dst)
        if math.isfinite(etx):
            return etx
        # Unreachable pair: charge a network-diameter-scale penalty rather
        # than infinity (the packet would be retried and dropped).
        return 2.0 * max(
            e
            for i in range(self.topology.n)
            if math.isfinite(e := self.topology.path_etx(i, 0))
        )

    def estimate(
        self,
        workload: Workload,
        query_plan: QueryPlanConfig,
        duration: float,
        seed: int = 0,
    ) -> HashCostEstimate:
        """Replay the experiment's data and query streams analytically."""
        config = self.config
        base = config.basestation_id
        data_cost = 0.0
        sample_times = [
            t * config.sample_interval
            for t in range(1, int(duration / config.sample_interval) + 1)
        ]
        for attr in config.attribute_ids:
            domain = config.domain_of(attr)
            for node in self.sensors:
                for t in sample_times:
                    value = domain.clamp(workload.sample_attr(node, t, attr))
                    owner = self.owner_of(value, attr)
                    if owner != node:
                        data_cost += self._finite_etx(node, owner)

        rng = random.Random(seed)
        generator = QueryGenerator(
            query_plan,
            config.domain,
            self.sensors,
            rng,
            attribute_domains=[
                config.domain_of(a) for a in config.attribute_ids
            ],
        )
        query_cost = 0.0
        n_queries = int(duration / config.query_interval)
        for k in range(n_queries):
            now = (k + 1) * config.query_interval
            query = generator.next_query(now)
            if query.node_list is not None:
                owners: Set[int] = set(query.node_list)
            else:
                lo, hi = query.value_range
                owners = {
                    self.owner_of(v, query.attr) for v in range(lo, hi + 1)
                }
            for owner in owners:
                query_cost += self._finite_etx(base, owner) + self._finite_etx(
                    owner, base
                )
        return HashCostEstimate(data=data_cost, query_reply=query_cost)


def _as_index_map(
    hash_index: Optional[StorageIndex],
    hash_indexes: Optional[Mapping[int, StorageIndex]],
) -> Dict[int, StorageIndex]:
    if (hash_index is None) == (hash_indexes is None):
        raise ValueError("pass exactly one of hash_index / hash_indexes")
    if hash_index is not None:
        return {hash_index.attr: hash_index}
    return dict(hash_indexes)


class HashNode(ScoopNode):
    """Simulated HASH sensor: static pre-installed indexes, no statistics."""

    def __init__(
        self,
        *args,
        hash_index: Optional[StorageIndex] = None,
        hash_indexes: Optional[Mapping[int, StorageIndex]] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self._indexes = _as_index_map(hash_index, hash_indexes)

    def on_boot(self) -> None:
        pass  # nothing to disseminate: the index is static

    def start_sampling(self) -> None:
        self._require_sources()
        if self.sampling:
            return
        self.sampling = True
        # Sample timer only: HASH collects no statistics.
        self._sample_timer.start(
            delay=self.sim.rng.uniform(0.0, self.config.sample_interval)
        )


class HashBasestation(Basestation):
    """Simulated HASH basestation: plans queries off the static indexes."""

    def __init__(
        self,
        *args,
        hash_index: Optional[StorageIndex] = None,
        hash_indexes: Optional[Mapping[int, StorageIndex]] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self._indexes = _as_index_map(hash_index, hash_indexes)
        for attr, index in self._indexes.items():
            self.index_histories[attr].append((0.0, index))

    def on_boot(self) -> None:
        pass

    def start_scoop(self) -> None:
        pass  # the hash never adapts
