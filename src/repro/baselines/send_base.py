"""The BASE baseline: send every reading to the basestation.

Section 4/6 of the paper: "In BASE, all nodes send their data up the
routing tree to the basestation and queries have no associated cost" —
the TinyDB/Cougar collection model Scoop's introduction argues against.
Readings are transmitted as they are produced (one data message per
sample, the acquisitional model of TinyDB), so "on average, each data item
[is] sent roughly halfway across the network" and the root becomes the
reception hotspot the paper measures in its skew experiment.
"""

from __future__ import annotations

from typing import Set

from repro.core.basestation import Basestation
from repro.core.messages import DataMessage
from repro.core.node import ScoopNode
from repro.core.query import Query


class SendToBaseNode(ScoopNode):
    """Ships each reading straight up the routing tree, unbatched."""

    def on_boot(self) -> None:
        pass  # no mapping dissemination under BASE

    def start_sampling(self) -> None:
        self._require_sources()
        if self.sampling:
            return
        self.sampling = True
        # Sample timer only: BASE sends no summaries.
        self._sample_timer.start(
            delay=self.sim.rng.uniform(0.0, self.config.sample_interval)
        )

    def _sample(self) -> None:
        if not self.sampling or (
            self.data_source is None and self.multi_source is None
        ):
            return
        now = self.sim.now
        base = self.config.basestation_id
        for attr in self.config.attribute_ids:
            value = self.config.domain_of(attr).clamp(self._read_sensor(attr, now))
            self._recent_by_attr[attr].add(now, value)
            if self.tracker is not None:
                self.tracker.reading_produced(
                    self.node_id, value, now, intended_owner=base, attr=attr
                )
            message = DataMessage(
                readings=[(value, now, self.node_id)], owner=base, sid=0, attr=attr
            )
            self._route_by_rules(message)


class SendToBaseBasestation(Basestation):
    """All data already lives here; queries cost nothing (Section 6)."""

    def on_boot(self) -> None:
        pass

    def start_scoop(self) -> None:
        pass  # no remapping under BASE

    def plan_query(self, query: Query) -> Set[int]:
        """Answer every query from the local store: zero radio targets."""
        return set()
