"""Query workload generation.

The paper's default query workload (Section 6): "The basestation issues a
query once every 15 seconds over 1-5% of the attribute's value domain (the
query width)." Figure 4 varies the *percentage of nodes queried* instead,
which maps to the paper's node-list query form (Section 5.5).

Generators are deterministic given their RNG, and draw query centers either
uniformly or biased toward recently produced values (a user looking for
what the network is currently seeing) — the default matches the paper's
uniform behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional, Sequence, Tuple

from repro.core.config import (
    ValueDomain,
    dataclass_from_dict,
    dataclass_to_dict,
)
from repro.core.query import Query


@dataclass
class QueryPlanConfig:
    """Shape of the query stream an experiment issues."""

    #: "value" -> value-range queries; "nodes" -> node-list queries.
    kind: str = "value"
    #: width of value queries as a fraction of the domain (lo, hi).
    width_frac: Tuple[float, float] = (0.01, 0.05)
    #: fraction of sensor nodes named by node-list queries.
    node_frac: float = 0.10
    #: how far back in time queries look, in seconds.
    time_window: float = 240.0
    #: bias query centers toward values recently produced (0 = uniform).
    popularity_bias: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("value", "nodes"):
            raise ValueError(f"unknown query kind {self.kind!r}")
        if not 0 < self.node_frac <= 1:
            raise ValueError("node_frac must be in (0, 1]")

    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`.

        Generic field enumeration, so future fields automatically enter
        the canonical spec key — a hand-written dict would silently keep
        serving stale cached results when a field is added.
        """
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "QueryPlanConfig":
        return dataclass_from_dict(cls, data)


class QueryGenerator:
    """Draws queries per a :class:`QueryPlanConfig`."""

    def __init__(
        self,
        plan: QueryPlanConfig,
        domain: ValueDomain,
        sensor_ids: Sequence[int],
        rng: random.Random,
        recent_value_hint: Optional[Callable[[], Optional[int]]] = None,
    ):
        self.plan = plan
        self.domain = domain
        self.sensor_ids = list(sensor_ids)
        self.rng = rng
        self._recent_value_hint = recent_value_hint

    def _pick_center(self) -> int:
        if self.plan.popularity_bias > 0 and self._recent_value_hint is not None:
            hint = self._recent_value_hint()
            if hint is not None and self.rng.random() < self.plan.popularity_bias:
                return self.domain.clamp(hint)
        return self.rng.randint(self.domain.lo, self.domain.hi)

    def value_range(self) -> Tuple[int, int]:
        lo_frac, hi_frac = self.plan.width_frac
        width = max(1, round(self.rng.uniform(lo_frac, hi_frac) * self.domain.size))
        center = self._pick_center()
        lo = max(self.domain.lo, center - width // 2)
        hi = min(self.domain.hi, lo + width - 1)
        lo = max(self.domain.lo, hi - width + 1)
        return lo, hi

    def node_set(self) -> FrozenSet[int]:
        count = max(1, round(self.plan.node_frac * len(self.sensor_ids)))
        return frozenset(
            self.rng.sample(self.sensor_ids, min(count, len(self.sensor_ids)))
        )

    def next_query(self, now: float) -> Query:
        t_lo = max(0.0, now - self.plan.time_window)
        if self.plan.kind == "nodes":
            return Query(time_range=(t_lo, now), node_list=self.node_set())
        return Query(time_range=(t_lo, now), value_range=self.value_range())
