"""Query workload generation.

The paper's default query workload (Section 6): "The basestation issues a
query once every 15 seconds over 1-5% of the attribute's value domain (the
query width)." Figure 4 varies the *percentage of nodes queried* instead,
which maps to the paper's node-list query form (Section 5.5).

Generators are deterministic given their RNG, and draw query centers either
uniformly or biased toward recently produced values (a user looking for
what the network is currently seeing) — the default matches the paper's
uniform behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional, Sequence, Tuple

from repro.core.config import (
    ValueDomain,
    dataclass_from_dict,
    dataclass_to_dict,
)
from repro.core.query import Query


@dataclass
class QueryPlanConfig:
    """Shape of the query stream an experiment issues."""

    #: "value" -> value-range queries; "nodes" -> node-list queries.
    kind: str = "value"
    #: width of value queries as a fraction of the domain (lo, hi).
    width_frac: Tuple[float, float] = (0.01, 0.05)
    #: fraction of sensor nodes named by node-list queries.
    node_frac: float = 0.10
    #: how far back in time queries look, in seconds.
    time_window: float = 240.0
    #: bias query centers toward values recently produced (0 = uniform).
    popularity_bias: float = 0.0
    #: attributes the stream cycles over (E15): queries round-robin
    #: attribute ids 0..n_attributes-1, so every attribute sees the same
    #: per-attribute query rate. 1 = the legacy single-attribute stream.
    n_attributes: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("value", "nodes"):
            raise ValueError(f"unknown query kind {self.kind!r}")
        if not 0 < self.node_frac <= 1:
            raise ValueError("node_frac must be in (0, 1]")
        if self.n_attributes < 1:
            raise ValueError("n_attributes must be >= 1")

    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`.

        Generic field enumeration, so future fields automatically enter
        the canonical spec key — a hand-written dict would silently keep
        serving stale cached results when a field is added.
        """
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "QueryPlanConfig":
        return dataclass_from_dict(cls, data)


class QueryGenerator:
    """Draws queries per a :class:`QueryPlanConfig`.

    ``attribute_domains`` supplies the per-attribute domains of a
    multi-attribute deployment (E15); without it the single ``domain``
    serves every attribute the plan names. Attribute selection is a
    deterministic round-robin over the plan's ``n_attributes``, so a
    k-attribute stream queries each attribute at the same rate and the
    value-range draw consumes identical RNG stream positions regardless
    of which attribute a query lands on.
    """

    def __init__(
        self,
        plan: QueryPlanConfig,
        domain: ValueDomain,
        sensor_ids: Sequence[int],
        rng: random.Random,
        recent_value_hint: Optional[Callable[[], Optional[int]]] = None,
        attribute_domains: Optional[Sequence[ValueDomain]] = None,
    ):
        self.plan = plan
        self.domain = domain
        self.sensor_ids = list(sensor_ids)
        self.rng = rng
        self._recent_value_hint = recent_value_hint
        self.attribute_domains = (
            list(attribute_domains)
            if attribute_domains is not None
            else [domain] * plan.n_attributes
        )
        if len(self.attribute_domains) < plan.n_attributes:
            raise ValueError(
                f"plan names {plan.n_attributes} attributes but only "
                f"{len(self.attribute_domains)} domains are configured"
            )
        self._issued = 0

    def _pick_center(self, domain: ValueDomain) -> int:
        if self.plan.popularity_bias > 0 and self._recent_value_hint is not None:
            hint = self._recent_value_hint()
            if hint is not None and self.rng.random() < self.plan.popularity_bias:
                return domain.clamp(hint)
        return self.rng.randint(domain.lo, domain.hi)

    def value_range(self, attr: int = 0) -> Tuple[int, int]:
        domain = self.attribute_domains[attr]
        lo_frac, hi_frac = self.plan.width_frac
        width = max(1, round(self.rng.uniform(lo_frac, hi_frac) * domain.size))
        center = self._pick_center(domain)
        lo = max(domain.lo, center - width // 2)
        hi = min(domain.hi, lo + width - 1)
        lo = max(domain.lo, hi - width + 1)
        return lo, hi

    def node_set(self) -> FrozenSet[int]:
        count = max(1, round(self.plan.node_frac * len(self.sensor_ids)))
        return frozenset(
            self.rng.sample(self.sensor_ids, min(count, len(self.sensor_ids)))
        )

    def next_query(self, now: float) -> Query:
        t_lo = max(0.0, now - self.plan.time_window)
        attr = self._issued % self.plan.n_attributes
        self._issued += 1
        if self.plan.kind == "nodes":
            return Query(
                time_range=(t_lo, now),
                node_list=self.node_set(),
                attr=attr,
                domain=self.attribute_domains[attr],
            )
        return Query(
            time_range=(t_lo, now),
            value_range=self.value_range(attr),
            attr=attr,
            domain=self.attribute_domains[attr],
        )
