"""Correlated multi-attribute traces (E15).

The paper's motivating deployments sample several attributes per mote
(temperature, light, humidity) whose readings are *correlated* — a hot
spot is usually a bright spot — and Scoop's index exploits exactly that
kind of locality. :class:`MultiAttributeWorkload` turns any registered
single-attribute workload family into a k-attribute trace:

* attribute 0 is the base family verbatim (so a k=1 multi-attribute run
  is sample-for-sample identical to the legacy single-attribute path);
* every further attribute runs its own independently seeded instance of
  the same family over its *own* domain, then blends in the node's
  attribute-0 signal (affinely projected between domains) with weight
  ``correlation`` — 0 gives independent streams, 1 makes every attribute
  a rescaled copy of attribute 0.

Sampling stays deterministic in ``(seed, attr, node, time)`` and
stateless across calls, so the analytical HASH model can replay any
attribute's stream without running the network.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import AttributeSpec, ValueDomain
from repro.workloads.base import Workload

#: Seed stride between per-attribute child workloads; any large prime
#: keeps the derived streams out of step with each other.
_ATTR_SEED_STRIDE = 7919


def _project(value: int, src: ValueDomain, dst: ValueDomain) -> float:
    """Affine map of ``value``'s position in ``src`` onto ``dst``."""
    if src.size <= 1:
        return float(dst.lo)
    fraction = (value - src.lo) / (src.size - 1)
    return dst.lo + fraction * (dst.size - 1)


class MultiAttributeWorkload(Workload):
    """k correlated per-attribute streams built from one workload family."""

    name = "multi"

    def __init__(
        self,
        family: str,
        attributes: Sequence[AttributeSpec],
        n_nodes: int,
        seed: int = 0,
        positions: Optional[Sequence[tuple]] = None,
        correlation: float = 0.5,
    ):
        if not attributes:
            raise ValueError("need at least one attribute")
        if not 0.0 <= correlation <= 1.0:
            raise ValueError(f"correlation must be in [0, 1], got {correlation}")
        super().__init__(attributes[0].domain, n_nodes, seed, positions=positions)
        from repro.workloads import make_workload  # local: avoids a cycle

        self.family = family
        self.attributes = tuple(attributes)
        self.correlation = correlation
        self.name = f"multi-{family}"
        self.children = tuple(
            make_workload(
                family,
                spec.domain,
                n_nodes,
                seed=seed + _ATTR_SEED_STRIDE * position,
                positions=positions,
            )
            for position, spec in enumerate(self.attributes)
        )

    def sample(self, node_id: int, now: float) -> int:
        return self.children[0].sample(node_id, now)

    def sample_attr(self, node_id: int, now: float, attr: int) -> int:
        if not 0 <= attr < len(self.children):
            raise ValueError(
                f"attribute {attr} outside registry of {len(self.children)}"
            )
        if attr == 0:
            return self.children[0].sample(node_id, now)
        domain = self.attributes[attr].domain
        own = self.children[attr].sample(node_id, now)
        if self.correlation == 0.0:
            return domain.clamp(own)
        shared = _project(
            self.children[0].sample(node_id, now), self.domain, domain
        )
        blended = self.correlation * shared + (1.0 - self.correlation) * own
        return domain.clamp(round(blended))
