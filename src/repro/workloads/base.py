"""Workload abstractions: data sources feeding the simulated sensors.

A :class:`Workload` produces the value a given node reads at a given time.
Implementations must be:

* **deterministic** in ``(seed, node_id, time)`` so experiments are exactly
  repeatable;
* **stateless across calls** where possible (values derived functionally
  from time), so a workload can be sampled out of order — the analytical
  HASH baseline replays value streams without running the network.

The five workloads of the paper's experiment table (REAL, UNIQUE, EQUAL,
RANDOM, GAUSSIAN) live in :mod:`repro.workloads.synthetic` and
:mod:`repro.workloads.real_trace`.
"""

from __future__ import annotations

import abc
import hashlib
import random
from typing import Callable, List, Optional, Sequence

from repro.core.config import ValueDomain


class Workload(abc.ABC):
    """A per-node stream of sensor values over a common domain.

    ``positions`` (optional) are the nodes' physical coordinates from the
    topology; spatially-correlated workloads (the REAL trace) use them so
    that nearby nodes read similar values — the "geographic locality
    between values produced by nodes" the paper's index exploits.
    """

    #: short name used in experiment tables ("unique", "real", ...).
    name: str = "abstract"

    def __init__(
        self,
        domain: ValueDomain,
        n_nodes: int,
        seed: int = 0,
        positions: Optional[Sequence[tuple]] = None,
    ):
        self.domain = domain
        self.n_nodes = n_nodes
        self.seed = seed
        self.positions = list(positions) if positions is not None else None

    @abc.abstractmethod
    def sample(self, node_id: int, now: float) -> int:
        """The value node ``node_id`` reads at simulation time ``now``."""

    def sample_attr(self, node_id: int, now: float, attr: int) -> int:
        """The value of attribute ``attr`` at ``(node_id, now)``.

        Single-attribute workloads only answer for attribute 0; the
        multi-attribute wrapper (:mod:`repro.workloads.multi`) overrides
        this with one correlated stream per registered attribute.
        """
        if attr != 0:
            raise ValueError(
                f"workload {self.name!r} is single-attribute; "
                f"attribute {attr} requested"
            )
        return self.sample(node_id, now)

    def source_for_node(self, node_id: int) -> Callable[[int, float], int]:
        """Adapter matching :data:`repro.core.node.DataSource`."""
        return lambda _node, now: self.sample(node_id, now)

    def as_data_source(self) -> Callable[[int, float], int]:
        """One shared DataSource callable dispatching on node id."""
        return self.sample

    # ------------------------------------------------------------------
    # Determinism helper
    # ------------------------------------------------------------------
    def _rng_for(self, *key: object) -> random.Random:
        """A PRNG deterministically derived from the workload seed and a
        structured key (e.g. node id, time bucket).

        Uses a stable digest rather than ``hash()``: Python salts string
        hashes per process, which would make value streams differ between
        runs of the same experiment.
        """
        material = repr((self.seed, self.name) + tuple(key)).encode()
        digest = hashlib.blake2b(material, digest_size=8).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def expected_values(self, node_id: int, times: Sequence[float]) -> List[int]:
        """The exact value stream a node would produce at ``times`` —
        usable by analytical models without touching node state."""
        return [self.sample(node_id, t) for t in times]


class CallableWorkload(Workload):
    """Wrap a plain function ``(node_id, now) -> value`` as a Workload."""

    name = "callable"

    def __init__(
        self,
        fn: Callable[[int, float], int],
        domain: ValueDomain,
        n_nodes: int,
        name: str = "callable",
    ):
        super().__init__(domain, n_nodes, seed=0)
        self._fn = fn
        self.name = name

    def sample(self, node_id: int, now: float) -> int:
        return self.domain.clamp(self._fn(node_id, now))
