"""Workloads: the five data sources of the paper plus query generation."""

from typing import Optional

from repro.core.config import ValueDomain
from repro.workloads.base import CallableWorkload, Workload
from repro.workloads.multi import MultiAttributeWorkload
from repro.workloads.queries import QueryGenerator, QueryPlanConfig
from repro.workloads.real_trace import CorrelatedLightWorkload, IntelLabTraceWorkload
from repro.workloads.synthetic import (
    EqualWorkload,
    GaussianWorkload,
    RandomWorkload,
    UniqueWorkload,
)

#: Workload names as used in the paper's figures.
WORKLOAD_NAMES = ("unique", "equal", "real", "gaussian", "random")


def make_workload(
    name: str, domain: ValueDomain, n_nodes: int, seed: int = 0, positions=None
) -> Workload:
    """Factory over the paper's workload names (Figure 3's data sources).

    ``positions`` (node coordinates from the topology) enable the REAL
    trace's geographic locality; the synthetic sources ignore them.
    """
    factories = {
        "unique": UniqueWorkload,
        "equal": EqualWorkload,
        "random": RandomWorkload,
        "gaussian": GaussianWorkload,
        "real": CorrelatedLightWorkload,
    }
    if name not in factories:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {sorted(factories)}"
        )
    return factories[name](domain, n_nodes, seed=seed, positions=positions)


__all__ = [
    "CallableWorkload",
    "CorrelatedLightWorkload",
    "EqualWorkload",
    "GaussianWorkload",
    "IntelLabTraceWorkload",
    "MultiAttributeWorkload",
    "QueryGenerator",
    "QueryPlanConfig",
    "RandomWorkload",
    "UniqueWorkload",
    "WORKLOAD_NAMES",
    "Workload",
    "make_workload",
]
