"""The paper's synthetic data sources: UNIQUE, EQUAL, RANDOM, GAUSSIAN.

From Section 6:

* **UNIQUE** — "each sensor produces its own, unique node ID as its value
  for the duration of the experiment": perfect locality, Scoop's best case
  (the index maps every node's value to the node itself);
* **EQUAL** — "all sensors in the network produce the same value for the
  duration of the experiment": one popular value, maximal batching, and a
  storage index that never changes (mapping suppression kicks in);
* **RANDOM** — "nodes produce random numbers in the range [0,100]": no
  locality at all, the adversarial case where Scoop degenerates to
  BASE/HASH-level performance;
* **GAUSSIAN** — "each sensor i randomly selects a mean value µ_i from the
  range [0,100] ... generates readings by sampling from a uni-dimensional
  Gaussian with mean µ and variance of 10": per-node locality without
  cross-node correlation, approximating independent sensors.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ValueDomain
from repro.workloads.base import Workload


class UniqueWorkload(Workload):
    """Every node always produces its own node ID."""

    name = "unique"

    def sample(self, node_id: int, now: float) -> int:
        return self.domain.clamp(node_id)


class EqualWorkload(Workload):
    """Every node always produces the same single value."""

    name = "equal"

    def __init__(
        self,
        domain: ValueDomain,
        n_nodes: int,
        seed: int = 0,
        value: Optional[int] = None,
        positions=None,
    ):
        super().__init__(domain, n_nodes, seed, positions=positions)
        if value is None:
            value = (domain.lo + domain.hi) // 2
        self.value = domain.clamp(value)

    def sample(self, node_id: int, now: float) -> int:
        return self.value


class RandomWorkload(Workload):
    """Uniformly random values over the whole domain, per sample.

    Deterministic in (seed, node, time): the same (node, time) pair always
    yields the same value, so replays match.
    """

    name = "random"

    def sample(self, node_id: int, now: float) -> int:
        rng = self._rng_for(node_id, round(now, 3))
        return rng.randint(self.domain.lo, self.domain.hi)


class GaussianWorkload(Workload):
    """Per-node Gaussian: mean µ_i ~ U[domain], variance 10 (paper's value)."""

    name = "gaussian"

    def __init__(
        self,
        domain: ValueDomain,
        n_nodes: int,
        seed: int = 0,
        variance: float = 10.0,
        positions=None,
    ):
        super().__init__(domain, n_nodes, seed, positions=positions)
        self.variance = variance
        self._means = {}
        for node in range(n_nodes):
            rng = self._rng_for("mean", node)
            self._means[node] = rng.uniform(domain.lo, domain.hi)

    def mean_of(self, node_id: int) -> float:
        return self._means[node_id]

    def sample(self, node_id: int, now: float) -> int:
        rng = self._rng_for(node_id, round(now, 3))
        value = rng.gauss(self._means[node_id], self.variance ** 0.5)
        return self.domain.clamp(round(value))
