"""The REAL workload: correlated indoor light data.

The paper replays "a trace of real light data collected from a 50-node
indoor sensor network deployment" (the Intel Lab dataset) and notes the key
property: "Because these sensors were deployed in the same building, their
light readings are highly correlated."

That dataset is not redistributable inside this offline reproduction, so
:class:`CorrelatedLightWorkload` generates a synthetic equivalent that
preserves the two properties Scoop actually exploits (see DESIGN.md,
substitutions table):

* **temporal correlation** — a node's next value is close to its recent
  values (the paper's premise that "recently sensed values are likely to be
  a good predictor of values a node produces in the near future");
* **spatial correlation** — co-located nodes see similar light levels
  (shared building-wide illumination), so the histogram-driven index packs
  neighborhoods onto nearby owners.

The generator sums a shared building signal (slow diurnal ramp + smooth
random walk), a per-node offset (fixed shading/position), and small sensor
noise, then quantises to the domain. All components are deterministic
functions of ``(seed, node, time)``.

:class:`IntelLabTraceWorkload` loads the actual published trace when a file
is available, for users who have it.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List

from repro.core.config import ValueDomain
from repro.workloads.base import Workload


class CorrelatedLightWorkload(Workload):
    """Synthetic stand-in for the Intel Lab light trace."""

    name = "real"

    def __init__(
        self,
        domain: ValueDomain,
        n_nodes: int,
        seed: int = 0,
        diurnal_period: float = 7200.0,
        walk_step: float = 600.0,
        spatial_spread: float = 1.0,
        shared_amplitude: float = 0.08,
        noise: float = 1.5,
        positions=None,
    ):
        super().__init__(domain, n_nodes, seed, positions=positions)
        self.diurnal_period = diurnal_period
        self.walk_step = walk_step
        self.noise = noise
        self.shared_amplitude = shared_amplitude
        span = domain.hi - domain.lo
        # Fixed per-node offset: where a sensor sits (window desk vs.
        # interior corridor) separates light levels far more than the
        # within-hour drift does. When topology positions are available the
        # offset is a smooth function of position — nearby nodes see
        # similar light, the "geographic locality between values produced
        # by nodes" that lets Scoop assign nodes their own values. Without
        # positions, offsets are random per node (no geographic locality).
        self._offsets: Dict[int, float] = {}
        #: memoized random-walk knots: every node sampling inside the same
        #: time bucket re-derives the same deterministic value, so caching
        #: changes nothing but skips a hash + PRNG construction per sample.
        self._walk_cache: Dict[int, float] = {}
        if self.positions is not None and len(self.positions) >= n_nodes:
            xs = [p[0] for p in self.positions[:n_nodes]]
            ys = [p[1] for p in self.positions[:n_nodes]]
            w = max(max(xs) - min(xs), 1e-9)
            h = max(max(ys) - min(ys), 1e-9)
            for node in range(n_nodes):
                rng = self._rng_for("offset", node)
                x = (self.positions[node][0] - min(xs)) / w
                y = (self.positions[node][1] - min(ys)) / h
                gradient = (x - 0.5) * span * 0.55 * spatial_spread
                window_band = math.sin(2.5 * math.pi * y) * span * 0.18
                self._offsets[node] = (
                    gradient + window_band + rng.gauss(0.0, span * 0.03)
                )
        else:
            for node in range(n_nodes):
                rng = self._rng_for("offset", node)
                self._offsets[node] = rng.gauss(0.0, spatial_spread * span / 4)
        self._span = span

    # ------------------------------------------------------------------
    # Shared building signal
    # ------------------------------------------------------------------
    def _walk_value(self, bucket: int) -> float:
        """Smooth random-walk component, deterministic per time bucket."""
        try:
            return self._walk_cache[bucket]
        except KeyError:
            rng = self._rng_for("walk", bucket)
            value = rng.gauss(0.0, self._span * self.shared_amplitude / 2)
            self._walk_cache[bucket] = value
            return value

    def building_signal(self, now: float) -> float:
        """The shared light level all nodes observe (before offsets)."""
        mid = (self.domain.lo + self.domain.hi) / 2
        diurnal = math.sin(2 * math.pi * now / self.diurnal_period)
        base = mid + diurnal * self._span * self.shared_amplitude
        # Linear interpolation between random-walk knots keeps the signal
        # continuous (temporal correlation) yet deterministic.
        bucket = int(now // self.walk_step)
        frac = (now % self.walk_step) / self.walk_step
        walk = (1 - frac) * self._walk_value(bucket) + frac * self._walk_value(
            bucket + 1
        )
        return base + walk

    def sample(self, node_id: int, now: float) -> int:
        rng = self._rng_for(node_id, round(now, 3))
        value = (
            self.building_signal(now)
            + self._offsets[node_id]
            + rng.gauss(0.0, self.noise)
        )
        return self.domain.clamp(round(value))


class IntelLabTraceWorkload(Workload):
    """Replays the real Intel Lab trace from a local file.

    Expects the published ``data.txt`` format: whitespace-separated columns
    ``date time epoch moteid temperature humidity light voltage``. Light
    readings are rescaled into the configured domain. Each simulated node
    is assigned one mote's readings, replayed in order — "Each time a node
    in our experiments needs to produce a value, it reads the next number
    from this trace" — wrapping around at the end.
    """

    name = "real-file"

    def __init__(
        self,
        path: Path,
        domain: ValueDomain,
        n_nodes: int,
        light_column: int = 6,
        mote_column: int = 3,
        max_rows: int = 500_000,
    ):
        super().__init__(domain, n_nodes, seed=0)
        self._series: Dict[int, List[int]] = {}
        self._cursor: Dict[int, int] = {}
        raw: Dict[int, List[float]] = {}
        with open(path) as handle:
            for line_no, line in enumerate(handle):
                if line_no >= max_rows:
                    break
                parts = line.split()
                if len(parts) <= max(light_column, mote_column):
                    continue
                try:
                    mote = int(parts[mote_column])
                    light = float(parts[light_column])
                except ValueError:
                    continue
                raw.setdefault(mote, []).append(light)
        if not raw:
            raise ValueError(f"no usable rows in trace file {path}")
        lights = [v for series in raw.values() for v in series]
        lo, hi = min(lights), max(lights)
        scale = (domain.hi - domain.lo) / (hi - lo) if hi > lo else 0.0
        motes = sorted(raw)
        for node in range(n_nodes):
            source = raw[motes[node % len(motes)]]
            self._series[node] = [
                domain.clamp(round(domain.lo + (v - lo) * scale)) for v in source
            ]
            self._cursor[node] = 0

    def sample(self, node_id: int, now: float) -> int:
        series = self._series[node_id]
        value = series[self._cursor[node_id] % len(series)]
        self._cursor[node_id] += 1
        return value
