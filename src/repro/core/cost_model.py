"""The basestation's transmission-cost model: ``xmits(x -> y)``.

Figure 2's algorithm needs the expected number of transmissions between any
two nodes. The basestation cannot see the true topology; per Section 5.2 it
estimates connectivity from two evidence streams:

* summary topology lists — each node reports its best inbound neighbors
  with link quality, giving directed delivery estimates;
* the (origin, origin's parent) headers on every packet that reaches the
  root, giving routing-tree edges even for nodes whose summaries were lost.

The model builds a directed graph weighted by expected transmissions per
acknowledged hop (``1/q²`` for delivery estimate ``q``, the same snooping
proxy nodes themselves use) and answers shortest-path queries. Property P4
of the paper — avoid owners behind lossy links — falls out of these weights.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.statistics import BasestationStatistics

#: Delivery quality assumed for routing-tree edges whose quality was never
#: reported in a summary (a usable but unremarkable link).
DEFAULT_TREE_QUALITY = 0.7

#: Quality floor: evidence below this is clamped so one terrible report
#: cannot make a hop look infinitely expensive.
MIN_QUALITY = 0.10


def hop_cost(quality: float) -> float:
    """Expected transmissions for one acknowledged hop with delivery
    estimate ``quality`` (frame and ACK must both get through)."""
    q = max(MIN_QUALITY, min(1.0, quality))
    return 1.0 / (q * q)


class NetworkModel:
    """Shortest-path ``xmits`` oracle over the basestation's partial view.

    Every model keeps a ``stats`` counter dict — Dijkstra runs, memoized
    reuses, point queries — that the basestation folds into its per-trial
    planner telemetry (:class:`~repro.sim.metrics.TrialMetrics`), giving
    the index-construction side of the paper's cost story a measurable
    footprint next to the radio counts.
    """

    def __init__(self, graph: nx.DiGraph):
        self._graph = graph
        self._from_cache: Dict[int, Dict[int, float]] = {}
        self._to_cache: Dict[int, Dict[int, float]] = {}
        #: Planner work counters, all ints (JSON-ready).
        self.stats: Dict[str, int] = {
            "model_nodes": graph.number_of_nodes(),
            "model_edges": graph.number_of_edges(),
            "dijkstra_runs": 0,
            "dijkstra_memo_hits": 0,
            "xmits_queries": 0,
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_statistics(cls, stats: BasestationStatistics) -> "NetworkModel":
        graph = nx.DiGraph()
        graph.add_nodes_from(stats.known_nodes())
        for (a, b), quality in stats.link_quality.items():
            graph.add_edge(a, b, weight=hop_cost(quality))
            # Radio links are roughly bidirectional; if the reverse
            # direction has no evidence, assume it exists but is weaker.
            if not graph.has_edge(b, a):
                graph.add_edge(b, a, weight=hop_cost(quality * 0.8))
        for child, (parent, _when) in stats.parents.items():
            for u, v in ((child, parent), (parent, child)):
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v, weight=hop_cost(DEFAULT_TREE_QUALITY))
        return cls(graph)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int, float]]) -> "NetworkModel":
        """Build directly from (src, dst, delivery-quality) triples (tests)."""
        graph = nx.DiGraph()
        for a, b, quality in edges:
            graph.add_edge(a, b, weight=hop_cost(quality))
        return cls(graph)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _distances_from(self, src: int) -> Dict[int, float]:
        if src not in self._from_cache:
            self.stats["dijkstra_runs"] += 1
            if src in self._graph:
                self._from_cache[src] = nx.single_source_dijkstra_path_length(
                    self._graph, src, weight="weight"
                )
            else:
                self._from_cache[src] = {}
        else:
            self.stats["dijkstra_memo_hits"] += 1
        return self._from_cache[src]

    def _distances_to(self, dst: int) -> Dict[int, float]:
        if dst not in self._to_cache:
            self.stats["dijkstra_runs"] += 1
            if dst in self._graph:
                reversed_graph = self._graph.reverse(copy=False)
                self._to_cache[dst] = nx.single_source_dijkstra_path_length(
                    reversed_graph, dst, weight="weight"
                )
            else:
                self._to_cache[dst] = {}
        else:
            self.stats["dijkstra_memo_hits"] += 1
        return self._to_cache[dst]

    def xmits(self, src: int, dst: int) -> float:
        """Expected transmissions to move one packet from src to dst
        (``inf`` when the basestation knows no connecting path)."""
        self.stats["xmits_queries"] += 1
        if src == dst:
            return 0.0
        return self._distances_from(src).get(dst, math.inf)

    def roundtrip(self, base: int, node: int) -> float:
        """xmits(base -> node -> base): query out plus reply back."""
        return self.xmits(base, node) + self.xmits(node, base)

    def xmits_matrix(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> np.ndarray:
        """Matrix of xmits(source, target), shape (len(sources), len(targets))."""
        self.stats["xmits_queries"] += len(sources) * len(targets)
        out = np.empty((len(sources), len(targets)))
        for i, src in enumerate(sources):
            dists = self._distances_from(src)
            for j, dst in enumerate(targets):
                out[i, j] = 0.0 if src == dst else dists.get(dst, math.inf)
        return out

    def roundtrip_vector(self, base: int, targets: Sequence[int]) -> np.ndarray:
        self.stats["xmits_queries"] += len(targets)
        from_base = self._distances_from(base)
        to_base = self._distances_to(base)
        out = np.empty(len(targets))
        for j, node in enumerate(targets):
            if node == base:
                out[j] = 0.0
            else:
                out[j] = from_base.get(node, math.inf) + to_base.get(node, math.inf)
        return out

    def reachable(self, src: int, dst: int) -> bool:
        return math.isfinite(self.xmits(src, dst))

    @property
    def nodes(self) -> List[int]:
        return sorted(self._graph.nodes)
