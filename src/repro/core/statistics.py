"""Basestation statistics: everything the indexing algorithm consumes.

Section 5.2 of the paper describes what the basestation learns and keeps:

* the **last histogram per node** — "the basestation always saves the last
  histogram it receives from each node, thus allowing it to reason about a
  node even if newer summary messages are lost" (~40% of summaries are lost
  in their experiments, so this matters);
* **every summary ever received** — "the basestation never discards any
  summary message", enabling historical query planning and summary-based
  query answering;
* **network topology**: neighbor link qualities from summary topology
  lists, plus parent/child relationships observed from Scoop's custom
  packet header on every packet that reaches the root;
* **query statistics** (Section 5.5): "for each query it issues, the
  basestation updates its statistics that keep track of the query rate, and
  which attributes and what value ranges get queried", yielding
  ``P(user queries v)`` and the query rate used by the indexing algorithm;
* **which storage index each node is using**, from the ``last_sid`` field
  of summaries — needed to decide which indices may be active when planning
  a historical query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.config import ScoopConfig, ValueDomain
from repro.core.messages import AttributeSummary, SummaryMessage


@dataclass
class NodeRecord:
    """The basestation's current knowledge about one node."""

    node: int
    last_summary: Optional[SummaryMessage] = None
    last_summary_time: float = -1.0
    summaries_received: int = 0
    #: EWMA of readings per second.
    data_rate: float = 0.0
    #: (report_time, sid) history — which index the node said it was using.
    sid_history: List[Tuple[float, int]] = field(default_factory=list)


@dataclass
class AttrNodeRecord:
    """Per-(attribute, node) statistics: the attribute's latest summary
    block and which of that attribute's indexes the node reported using."""

    node: int
    last_block: Optional[AttributeSummary] = None
    last_time: float = -1.0
    #: (report_time, sid) history for this attribute's index stream.
    sid_history: List[Tuple[float, int]] = field(default_factory=list)


class QueryStatistics:
    """Tracks query rate and per-value query popularity."""

    def __init__(self, domain: ValueDomain):
        self.domain = domain
        self._value_counts = np.zeros(domain.size)
        self.total_queries = 0
        self.first_query_time: Optional[float] = None
        self.last_query_time: Optional[float] = None

    def record(self, value_range: Optional[Tuple[int, int]], now: float) -> None:
        self.total_queries += 1
        if self.first_query_time is None:
            self.first_query_time = now
        self.last_query_time = now
        if value_range is None:
            return
        lo = max(value_range[0], self.domain.lo)
        hi = min(value_range[1], self.domain.hi)
        if hi >= lo:
            self._value_counts[lo - self.domain.lo : hi - self.domain.lo + 1] += 1.0

    def query_rate(self, now: float) -> float:
        """Queries per second over the observed query history."""
        if self.total_queries == 0 or self.first_query_time is None:
            return 0.0
        elapsed = max(now - self.first_query_time, 1.0)
        return self.total_queries / elapsed

    def probability_vector(self) -> np.ndarray:
        """P(user queries v) for every v in the domain.

        The probability that a given query's range covers value v,
        estimated from past queries.
        """
        if self.total_queries == 0:
            return np.zeros(self.domain.size)
        return self._value_counts / self.total_queries


class BasestationStatistics:
    """The complete statistics registry living at the basestation."""

    def __init__(self, config: ScoopConfig):
        self.config = config
        self.domain = config.domain
        self.records: Dict[int, NodeRecord] = {}
        #: every summary ever received, in arrival order (never discarded).
        self.summary_history: List[Tuple[float, SummaryMessage]] = []
        #: directed link quality evidence: (from, to) -> delivery estimate.
        self.link_quality: Dict[Tuple[int, int], float] = {}
        #: origin -> (parent, last observation time), from packet headers.
        self.parents: Dict[int, Tuple[int, float]] = {}
        #: node -> last time any evidence of it being alive arrived (a
        #: summary it originated, or a packet header naming it as origin
        #: or as the forwarding origin's parent). Drives staleness-based
        #: eviction: the indexing algorithm stops assigning ranges to
        #: nodes silent for ``node_staleness_intervals`` summary
        #: intervals (the paper's node-death recovery, Section 6).
        self.last_heard: Dict[int, float] = {}
        #: per-attribute query statistics; attribute 0's instance is also
        #: exposed as the legacy ``queries`` attribute.
        self._queries_by_attr: Dict[int, QueryStatistics] = {
            attr: QueryStatistics(config.domain_of(attr))
            for attr in config.attribute_ids
        }
        self.queries = self._queries_by_attr[0]
        #: per-attribute per-node block records; attribute 0 is mirrored
        #: into the legacy ``records`` (same summary objects), so the
        #: single-attribute API keeps working unchanged.
        self._attr_records: Dict[int, Dict[int, AttrNodeRecord]] = {
            attr: {} for attr in config.attribute_ids
        }
        self.summaries_lost_guess = 0

    @property
    def staleness_window(self) -> float:
        """Seconds of silence after which a node is presumed dead."""
        return self.config.node_staleness_intervals * self.config.summary_interval

    def _fresh(self, node: int, now: Optional[float]) -> bool:
        """Whether ``node`` counts as alive at ``now`` (always, if ``now``
        is None — the unfiltered historical view)."""
        if now is None:
            return True
        if node == self.config.basestation_id:
            return True
        return self.last_heard.get(node, -math.inf) >= now - self.staleness_window

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _record(self, node: int) -> NodeRecord:
        if node not in self.records:
            self.records[node] = NodeRecord(node=node)
        return self.records[node]

    def ingest_summary(self, summary: SummaryMessage, now: float) -> None:
        record = self._record(summary.origin)
        if record.last_summary_time >= 0:
            interval = max(now - record.last_summary_time, 1e-6)
            instantaneous = summary.readings_since_last / interval
            record.data_rate = (
                0.5 * record.data_rate + 0.5 * instantaneous
                if record.data_rate > 0
                else instantaneous
            )
        else:
            # First summary: assume the configured sample rate until the
            # next one arrives.
            record.data_rate = (
                summary.readings_since_last / self.config.summary_interval
                if summary.readings_since_last
                else 1.0 / self.config.sample_interval
            )
        record.last_summary = summary
        record.last_summary_time = now
        self.last_heard[summary.origin] = now
        record.summaries_received += 1
        record.sid_history.append((now, summary.last_sid))
        self.summary_history.append((now, summary))
        # Per-attribute blocks (attribute 0's block mirrors the legacy
        # scalar fields; further attributes ride in ``summary.extra``).
        for block in summary.blocks():
            per_node = self._attr_records.get(block.attr)
            if per_node is None:
                continue  # block for an attribute this config doesn't know
            attr_record = per_node.setdefault(
                summary.origin, AttrNodeRecord(node=summary.origin)
            )
            attr_record.last_block = block
            attr_record.last_time = now
            attr_record.sid_history.append((now, block.last_sid))
        # Topology: the summary lists origin's best inbound neighbors, i.e.
        # delivery estimates for links (neighbor -> origin).
        for neighbor, quality in summary.neighbors:
            self.link_quality[(neighbor, summary.origin)] = quality
            # A node first known only by hearsay gets a full staleness
            # window of candidacy from its first sighting; hearsay never
            # *refreshes* an already-heard node, though — neighbor tables
            # can keep reporting a dead node for a while, and direct
            # silence is what must drive its eviction.
            self.last_heard.setdefault(neighbor, now)

    def observe_packet_header(
        self, origin: int, origin_parent: Optional[int], now: float
    ) -> None:
        """Every packet reaching the root reveals (origin, origin's parent)."""
        self.last_heard[origin] = now
        if origin_parent is not None and origin_parent != origin:
            self.parents[origin] = (origin_parent, now)
            self.last_heard[origin_parent] = max(
                self.last_heard.get(origin_parent, -math.inf), now
            )

    def record_query(
        self, value_range: Optional[Tuple[int, int]], now: float, attr: int = 0
    ) -> None:
        self.queries_for(attr).record(value_range, now)

    def queries_for(self, attr: int) -> QueryStatistics:
        """The named attribute's query statistics (0 = legacy stream)."""
        try:
            return self._queries_by_attr[attr]
        except KeyError:
            raise ValueError(
                f"attribute id {attr} outside registry of "
                f"{len(self._queries_by_attr)}"
            ) from None

    # ------------------------------------------------------------------
    # Views for the indexing algorithm
    # ------------------------------------------------------------------
    def known_nodes(self, now: Optional[float] = None) -> List[int]:
        """Nodes the basestation has evidence about (plus itself).

        With ``now``, nodes silent for longer than the staleness window
        are evicted from the view: the indexing algorithm must not assign
        ranges to nodes that may be dead. Without it, the full historical
        set (used for query planning — "the basestation never discards
        any summary message")."""
        nodes: Set[int] = {self.config.basestation_id}
        nodes.update(self.records.keys())
        for child, (parent, _when) in self.parents.items():
            nodes.add(child)
            nodes.add(parent)
        for a, b in self.link_quality:
            nodes.add(a)
            nodes.add(b)
        return sorted(node for node in nodes if self._fresh(node, now))

    def producer_nodes(
        self, now: Optional[float] = None, attr: int = 0
    ) -> List[int]:
        """Nodes with a usable histogram for ``attr`` (the p's of the
        algorithm).

        With ``now``, staleness-evicted nodes are excluded (see
        :meth:`known_nodes`)."""
        return sorted(
            node
            for node, record in self._attr_records[attr].items()
            if record.last_block is not None
            and record.last_block.histogram is not None
            and self._fresh(node, now)
        )

    def stale_nodes(self, now: float) -> Set[int]:
        """Nodes the basestation actually heard from at some point but
        not within the staleness window — presumed dead; their ranges get
        reassigned at the next remap."""
        return {node for node in self.last_heard if not self._fresh(node, now)}

    def production_matrix(
        self, producers: Sequence[int], attr: int = 0
    ) -> np.ndarray:
        """Rows of P(p -> v) over ``attr``'s whole domain, one per
        producer."""
        domain = self.config.domain_of(attr)
        matrix = np.zeros((len(producers), domain.size))
        per_node = self._attr_records[attr]
        for row, node in enumerate(producers):
            record = per_node.get(node)
            block = record.last_block if record is not None else None
            if block is not None and block.histogram is not None:
                matrix[row] = block.histogram.probability_vector(
                    domain.lo, domain.hi
                )
        return matrix

    def rate_vector(self, producers: Sequence[int]) -> np.ndarray:
        """Per-producer readings/second. Attributes are sampled together
        (one reading of each per sample tick), so one rate serves every
        attribute."""
        return np.array([self.records[node].data_rate for node in producers])

    # ------------------------------------------------------------------
    # Historical index usage (query planning, Section 5.5)
    # ------------------------------------------------------------------
    def sids_in_use(self, t_lo: float, t_hi: float, attr: int = 0) -> Set[int]:
        """Index IDs some node may have been using for ``attr`` during
        [t_lo, t_hi].

        A node's reports bracket the window: the last sid reported at or
        before t_hi could have been in use, and so could any sid reported
        within the window itself. Includes -1 when a node had no complete
        index yet (it was storing locally).
        """
        in_use: Set[int] = set()
        per_node = self._attr_records[attr]
        for node in self.records:
            record = per_node.get(node)
            history = record.sid_history if record is not None else []
            last_before: Optional[int] = None
            for time, sid in history:
                if time <= t_lo:
                    last_before = sid
                elif time <= t_hi + self.config.summary_interval:
                    in_use.add(sid)
            if last_before is not None:
                in_use.add(last_before)
            if not history:
                in_use.add(-1)
        if not self.records:
            in_use.add(-1)
        return in_use

    def nodes_possibly_storing_locally(
        self,
        value_range: Optional[Tuple[int, int]],
        t_lo: float,
        t_hi: float,
        attr: int = 0,
    ) -> Set[int]:
        """Nodes that may hold matching ``attr`` data *locally* during the
        window because they had no complete index (last_sid == -1).

        Their summaries' [min, max] bound what they produce, so nodes whose
        recent range cannot overlap the query are excluded.
        """
        out: Set[int] = set()
        per_node = self._attr_records[attr]
        for node in self.records:
            record = per_node.get(node)
            history = record.sid_history if record is not None else []
            reported = [
                sid
                for time, sid in history
                if time <= t_hi + self.config.summary_interval
            ]
            if reported and all(sid >= 0 for sid in reported[-2:]):
                continue  # had an index throughout the window
            block = record.last_block if record is not None else None
            if value_range is not None and block is not None:
                if (
                    block.max_value < value_range[0]
                    or block.min_value > value_range[1]
                ):
                    continue
            out.add(node)
        return out

    # ------------------------------------------------------------------
    # Summary-based query answering (Section 5.5 optimization)
    # ------------------------------------------------------------------
    def max_value_seen(self, since: float = 0.0, attr: int = 0) -> Optional[int]:
        """Answer MAX(attr) from summaries, costing no network traffic."""
        candidates = [
            block.max_value
            for t, s in self.summary_history
            if t >= since
            for block in s.blocks()
            if block.attr == attr
        ]
        return max(candidates) if candidates else None

    def min_value_seen(self, since: float = 0.0, attr: int = 0) -> Optional[int]:
        candidates = [
            block.min_value
            for t, s in self.summary_history
            if t >= since
            for block in s.blocks()
            if block.attr == attr
        ]
        return min(candidates) if candidates else None
