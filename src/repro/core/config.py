"""Scoop system configuration with the paper's default parameters.

Every default in :class:`ScoopConfig` is taken from the paper's experiment
table (Section 6) or the inline parameter values the text mentions; the
docstring on each field cites the source. Experiments override only what the
corresponding figure varies.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import typing
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.messages import bitmap_wire_bytes


def dataclass_to_dict(obj) -> Dict[str, object]:
    """Generic dataclass → JSON-ready dict.

    Nested objects exposing ``to_dict`` recurse; tuples become lists.
    Field enumeration is automatic, so fields added later flow into the
    canonical cache key without touching serialization code (pair with
    :func:`dataclass_from_dict`, which restores tuple-typed fields from
    the class's type hints).
    """
    out: Dict[str, object] = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if hasattr(value, "to_dict"):
            value = value.to_dict()
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


@functools.lru_cache(maxsize=None)
def _tuple_fields(cls) -> frozenset:
    return frozenset(
        name
        for name, hint in typing.get_type_hints(cls).items()
        if typing.get_origin(hint) is tuple
    )


def dataclass_from_dict(
    cls,
    data: Dict[str, object],
    converters: Optional[Dict[str, Callable]] = None,
):
    """Inverse of :func:`dataclass_to_dict`.

    ``converters`` maps field names to value converters (for nested
    dataclasses); every other list-valued field declared as a tuple is
    restored to a tuple automatically.
    """
    tuple_fields = _tuple_fields(cls)
    kwargs: Dict[str, object] = {}
    for name, value in data.items():
        if converters and name in converters:
            value = converters[name](value)
        elif name in tuple_fields and isinstance(value, list):
            value = tuple(value)
        kwargs[name] = value
    return cls(**kwargs)


def canonical_key(payload: object) -> str:
    """SHA-256 over the canonical JSON form of ``payload``.

    The canonical form (sorted keys, minimal separators, ASCII) is stable
    across processes and Python versions, unlike ``repr`` of nested
    dataclasses — this is what keys the persistent experiment-result
    cache, so two processes computing a key for the same spec must agree
    byte-for-byte.
    """
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ValueDomain:
    """Integer domain of an indexed attribute.

    The paper's REAL trace has ~150 distinct values ("V was at about 150");
    the synthetic sources use [0, 100].
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"empty domain [{self.lo}, {self.hi}]")

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __iter__(self):
        return iter(range(self.lo, self.hi + 1))

    def clamp(self, value: int) -> int:
        return max(self.lo, min(self.hi, int(value)))

    def index_of(self, value: int) -> int:
        if value not in self:
            raise ValueError(f"value {value} outside domain [{self.lo}, {self.hi}]")
        return value - self.lo

    def to_dict(self) -> Dict[str, int]:
        return {"lo": self.lo, "hi": self.hi}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "ValueDomain":
        return cls(lo=int(data["lo"]), hi=int(data["hi"]))


@dataclass(frozen=True)
class AttributeSpec:
    """One named, indexable sensor attribute and its value domain.

    The paper's Section 5.5 query model is one attribute per index; the
    motivating deployments sample several (temperature, light, humidity).
    A deployment's attribute registry (:attr:`ScoopConfig.attributes`)
    names each concurrently indexed attribute; attribute ids are the
    registry positions, so attribute 0 is always the legacy single
    attribute of the paper's experiments.
    """

    name: str
    domain: ValueDomain

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute needs a non-empty name")

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "domain": self.domain.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AttributeSpec":
        return cls(
            name=str(data["name"]), domain=ValueDomain.from_dict(data["domain"])
        )


def _attribute_specs_from_list(items) -> Tuple[AttributeSpec, ...]:
    return tuple(
        item if isinstance(item, AttributeSpec) else AttributeSpec.from_dict(item)
        for item in items
    )


@dataclass
class ScoopConfig:
    """All tunables of a Scoop deployment, defaulted to the paper's values."""

    # -- workload timing (paper experiment table) ------------------------
    #: Seconds between sensor samples ("sample rate: 1 in 15 seconds").
    sample_interval: float = 15.0
    #: Seconds between queries ("query rate: 1 in 15 seconds").
    query_interval: float = 15.0
    #: Seconds between summary messages ("summary rate: 1 in 110 seconds").
    summary_interval: float = 110.0
    #: Seconds between storage-index recomputations ("remap rate: 1 in 240").
    remap_interval: float = 240.0
    #: Measured experiment duration ("duration: 40 minutes").
    duration: float = 2400.0
    #: Tree-stabilization warm-up before sampling starts ("The first 10
    #: minutes are spent stabilizing the network").
    stabilization: float = 600.0

    # -- network sizing ---------------------------------------------------
    #: Nodes including the basestation ("size: 62 nodes + 1 base").
    n_nodes: int = 63
    #: Query bitmap capacity ("an upper bound to the size of the sensor
    #: network; 128 nodes in our current implementation"). Raise it to run
    #: networks past the paper's testbed — every query then carries a
    #: proportionally wider bitmap (:attr:`query_bitmap_bytes`).
    max_network_size: int = 128

    # -- data / statistics ------------------------------------------------
    #: Attribute domain (REAL trace: ~150 values; synthetic: [0, 100]).
    #: This is always attribute 0's domain (the paper's single attribute).
    domain: ValueDomain = field(default_factory=lambda: ValueDomain(0, 100))
    #: Multi-attribute registry (E15). Empty = the legacy single-attribute
    #: deployment: one implicit attribute named "value" over ``domain``.
    #: When set, entry 0 must agree with ``domain`` (attribute 0 *is* the
    #: legacy attribute; everything single-attribute-shaped keeps reading
    #: ``domain``), and each further entry adds a concurrently indexed
    #: attribute with its own domain, histogram statistics, storage index
    #: and summary stream.
    attributes: Tuple[AttributeSpec, ...] = ()
    #: Histogram bins in summary messages ("nBins is 10").
    n_bins: int = 10
    #: Recent-readings ring size ("size 30, in our experiments").
    recent_readings_size: int = 30
    #: Neighbors reported in a summary ("12, in our experiments").
    summary_neighbors: int = 12
    #: Summary intervals of silence after which the basestation treats a
    #: node as dead: stale nodes stop being index-owner candidates and
    #: their ranges are reassigned at the next remap (the Section 6
    #: recovery story for failed nodes). ~40% of summaries are lost in
    #: the paper's testbed, so the default tolerates several consecutive
    #: losses before declaring death; churn scenarios tighten it.
    node_staleness_intervals: float = 6.0
    #: Descendants/neighbor list capacity ("32, in our experiments").
    max_descendants: int = 32
    max_neighbors: int = 32

    # -- data routing -----------------------------------------------------
    #: Readings batched into one data message ("by default we use n = 5").
    batch_size: int = 5
    #: Hop budget before a data packet gives up and routes to the root
    #: (loop protection; the paper reports ~15% of readings falling back to
    #: the root when the owner "could not be found"). Roughly twice the
    #: network diameter.
    max_data_hops: int = 10
    #: Seconds a partially filled batch may wait before being flushed. The
    #: paper flushes only on owner change or a full batch; the timeout is a
    #: liveness backstop and must exceed batch_size × sample_interval or it
    #: defeats batching entirely.
    batch_flush_timeout: float = 120.0

    # -- queries ------------------------------------------------------------
    #: Query width as a fraction of the value domain ("a query ... over
    #: 1-5% of the attribute's value domain").
    query_width_frac: Tuple[float, float] = (0.01, 0.05)
    #: How long the basestation keeps a query open for replies (the paper:
    #: "it takes several seconds for the first replies to come back"; with
    #: staggered answers and per-hop retransmission backoff, stragglers
    #: arrive close to 15 s).
    query_reply_window: float = 20.0

    # -- index construction / dissemination --------------------------------
    #: Suppress dissemination when the new index maps at least this
    #: fraction of the domain identically to the current one (Section 5.3:
    #: "suppressing the dissemination of a new storage index altogether if
    #: it is very similar to the previous storage index").
    suppression_similarity: float = 0.95
    #: Whether the basestation may fall back to a store-local policy when
    #: that is cheaper (Section 4). The paper's SCOOP experiments disable
    #: this ("the optimization ... has been disabled") so the figures
    #: measure the index itself.
    allow_store_local_fallback: bool = False
    #: Index extension: maximum owners per value (1 = paper's default
    #: algorithm; >1 enables the owner-set extension of Section 4).
    max_owners_per_value: int = 1
    #: Index extension: place fixed-width ranges instead of single values
    #: (0 = per-value placement, the paper's default).
    range_placement_width: int = 0

    # -- protocol timing ----------------------------------------------------
    beacon_interval: float = 10.0
    #: Trickle bounds for mapping dissemination. imax is half the remap
    #: interval: steady-state maintenance is one advert per neighborhood
    #: per 2 minutes, negligible next to data traffic.
    trickle_imin: float = 2.0
    trickle_imax: float = 120.0
    trickle_k: int = 1
    #: Random assessment delay before rebroadcasting a query packet.
    query_rebroadcast_delay: Tuple[float, float] = (0.02, 0.25)
    #: Query relay eligibility: "selective" is the paper's rule (relay only
    #: when the bitmap intersects the descendants/neighbor lists); "tree"
    #: additionally lets every routing-tree interior node relay, trading
    #: extra query messages for reach in small/sparse networks.
    query_relay_mode: str = "selective"
    #: Gossip repetitions per query (the modified-Trickle rounds).
    query_gossip_rounds: int = 3
    #: Near-tie tolerance when stabilising index owner choices: candidates
    #: within this fraction of the per-value minimum cost may be replaced
    #: by the contiguity/stability-preferred owner.
    index_tie_tolerance: float = 0.15

    # -- storage ------------------------------------------------------------
    #: Flash capacity in readings (paper: ~670,000 per MB; default 1 MB).
    flash_capacity: int = 670_000

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least a basestation and one sensor")
        if self.max_network_size < 2:
            raise ValueError("max_network_size must be >= 2")
        if self.n_nodes > self.max_network_size:
            raise ValueError(
                f"{self.n_nodes} nodes exceeds the {self.max_network_size}-node "
                "query bitmap; raise max_network_size to widen it"
            )
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        if self.node_staleness_intervals <= 0:
            raise ValueError("node_staleness_intervals must be positive")
        lo, hi = self.query_width_frac
        if not (0 < lo <= hi <= 1):
            raise ValueError("query_width_frac must satisfy 0 < lo <= hi <= 1")
        if self.attributes:
            names = [spec.name for spec in self.attributes]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate attribute names in {names}")
            if self.attributes[0].domain != self.domain:
                raise ValueError(
                    "attributes[0] is the legacy attribute and must share "
                    f"`domain` ({self.domain}); got {self.attributes[0].domain}"
                )

    # -- attribute registry ------------------------------------------------
    @property
    def attribute_specs(self) -> Tuple[AttributeSpec, ...]:
        """The live registry: ``attributes``, or the implicit legacy
        single attribute over ``domain``."""
        if self.attributes:
            return self.attributes
        return (AttributeSpec("value", self.domain),)

    @property
    def n_attributes(self) -> int:
        return len(self.attribute_specs)

    @property
    def attribute_ids(self) -> range:
        return range(self.n_attributes)

    def domain_of(self, attr: int) -> ValueDomain:
        """Value domain of attribute id ``attr`` (0 = the legacy one)."""
        specs = self.attribute_specs
        if not 0 <= attr < len(specs):
            raise ValueError(
                f"attribute id {attr} outside registry of {len(specs)}"
            )
        return specs[attr].domain

    def attribute_id(self, name: str) -> int:
        """Registry position of the attribute called ``name``."""
        for position, spec in enumerate(self.attribute_specs):
            if spec.name == name:
                return position
        raise ValueError(f"unknown attribute {name!r}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        out = dataclass_to_dict(self)
        out["attributes"] = [spec.to_dict() for spec in self.attributes]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScoopConfig":
        return dataclass_from_dict(
            cls,
            data,
            converters={
                "domain": ValueDomain.from_dict,
                "attributes": _attribute_specs_from_list,
            },
        )

    @property
    def query_bitmap_bytes(self) -> int:
        """Wire width of the query node bitmap: one bit per addressable
        node, so ``ceil(max_network_size / 8)`` bytes.

        The paper's 128-node implementation fixes this at 16 bytes; here
        it is derived, so a 256-node deployment automatically prices its
        queries with a 32-byte bitmap across every policy.
        """
        return bitmap_wire_bytes(self.max_network_size)

    @property
    def basestation_id(self) -> int:
        """The basestation is always node 0 in this implementation."""
        return 0

    @property
    def sensor_ids(self) -> range:
        return range(1, self.n_nodes)

    def total_runtime(self) -> float:
        return self.stabilization + self.duration
