"""Scoop core: the paper's primary contribution.

Storage indices (Section 4), the Figure 2 construction algorithm with its
extensions, statistics collection (Section 5.2), Trickle-based index
dissemination (Section 5.3), the six data-routing rules (Section 5.4), and
query planning/answering (Section 5.5).
"""

from repro.core.basestation import Basestation
from repro.core.config import ScoopConfig, ValueDomain
from repro.core.cost_model import NetworkModel, hop_cost
from repro.core.histogram import Histogram
from repro.core.indexing import (
    IndexBuildResult,
    build_storage_index,
    evaluate_index_cost,
    evaluate_store_local_cost,
)
from repro.core.messages import (
    DataMessage,
    MappingChunk,
    QueryMessage,
    ReplyMessage,
    SummaryMessage,
)
from repro.core.node import DataSource, ScoopNode
from repro.core.query import Query, QueryResult
from repro.core.statistics import BasestationStatistics, NodeRecord, QueryStatistics
from repro.core.storage_index import STORE_LOCAL, RangeEntry, StorageIndex

__all__ = [
    "Basestation",
    "BasestationStatistics",
    "DataMessage",
    "DataSource",
    "Histogram",
    "IndexBuildResult",
    "MappingChunk",
    "NetworkModel",
    "NodeRecord",
    "Query",
    "QueryMessage",
    "QueryResult",
    "QueryStatistics",
    "RangeEntry",
    "ReplyMessage",
    "STORE_LOCAL",
    "ScoopConfig",
    "ScoopNode",
    "StorageIndex",
    "SummaryMessage",
    "ValueDomain",
    "build_storage_index",
    "evaluate_index_cost",
    "evaluate_store_local_cost",
    "hop_cost",
]
