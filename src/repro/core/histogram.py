"""Fixed-width summary histograms and the P(p produces v) estimator.

Implements Section 5.2 of the paper exactly:

* the histogram has ``nBins`` fixed-width bins over ``[min, max]``, the
  smallest and largest values the attribute took on at the node during
  recent history; bin ``n`` counts readings in
  ``[min + n*w, min + (n+1)*w)`` with ``w = (max - min + 1) / nBins``;
* the producer-probability estimator assumes values within a bin are
  uniformly distributed::

      P(p -> v):
          binWidth = (max - min + 1) / nBins
          bin      = (v - min) / binWidth
          P(v|bin) = 1 / binWidth
          P(bin)   = height(bin) / sum(heights)
          return P(v|bin) * P(bin)

The estimator is deliberately coarse — 10 bins in one radio packet — and
the indexing algorithm's quality degrades gracefully with it, which is part
of what the reproduction must preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Histogram:
    """An equal-bin-width histogram over a node's recent readings."""

    min_value: int
    max_value: int
    bins: tuple

    def __post_init__(self) -> None:
        if self.max_value < self.min_value:
            raise ValueError("max_value < min_value")
        if not self.bins:
            raise ValueError("histogram needs at least one bin")
        if any(b < 0 for b in self.bins):
            raise ValueError("negative bin count")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Sequence[int], n_bins: int = 10) -> "Histogram":
        """Build from a node's recent-readings buffer.

        Raises ``ValueError`` on an empty sequence — a node with no recent
        readings sends no histogram (its summary simply reports nothing).
        """
        if len(values) == 0:
            raise ValueError("cannot build a histogram from no readings")
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        lo, hi = int(min(values)), int(max(values))
        width = (hi - lo + 1) / n_bins
        bins = [0] * n_bins
        for v in values:
            index = int((int(v) - lo) / width)
            bins[min(index, n_bins - 1)] += 1
        return cls(min_value=lo, max_value=hi, bins=tuple(bins))

    # ------------------------------------------------------------------
    # Probability model
    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        return len(self.bins)

    @property
    def bin_width(self) -> float:
        return (self.max_value - self.min_value + 1) / self.n_bins

    @property
    def total(self) -> int:
        return sum(self.bins)

    def bin_of(self, value: int) -> int:
        """Bin index for a value inside [min, max]."""
        if not self.min_value <= value <= self.max_value:
            raise ValueError(f"{value} outside [{self.min_value}, {self.max_value}]")
        return min(int((value - self.min_value) / self.bin_width), self.n_bins - 1)

    def probability(self, value: int) -> float:
        """The paper's P(p -> v): probability node p next produces ``v``.

        Values outside the node's recently observed [min, max] get
        probability 0 — the estimator only knows recent history.
        """
        if value < self.min_value or value > self.max_value:
            return 0.0
        total = self.total
        if total == 0:
            return 0.0
        p_bin = self.bins[self.bin_of(value)] / total
        # The paper's P(v|bin) = 1/binWidth; over an integer domain a bin
        # narrower than one value would yield a conditional above 1, so cap
        # it (a bin holding a single integer is certain to produce it).
        p_value_given_bin = min(1.0, 1.0 / self.bin_width)
        return p_value_given_bin * p_bin

    def probability_vector(self, domain_lo: int, domain_hi: int) -> np.ndarray:
        """P(p -> v) for every v in [domain_lo, domain_hi] as a vector.

        Used by the vectorised indexing algorithm; identical to calling
        :meth:`probability` per value.
        """
        size = domain_hi - domain_lo + 1
        out = np.zeros(size)
        total = self.total
        if total == 0:
            return out
        inv_width = min(1.0, 1.0 / self.bin_width)
        for v in range(
            max(domain_lo, self.min_value), min(domain_hi, self.max_value) + 1
        ):
            out[v - domain_lo] = (self.bins[self.bin_of(v)] / total) * inv_width
        return out

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def wire_bytes(self) -> int:
        # one byte per bin (coarse counts), two bytes each for min/max
        return self.n_bins + 4

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram[{self.min_value},{self.max_value}]{list(self.bins)}"
