"""Scoop application-message payloads and their wire sizes.

Five message families (Sections 5.2-5.5 of the paper):

* :class:`SummaryMessage` — node -> basestation statistics: a coarse
  histogram over recent data, the lowest/highest/sum of recent values, the
  node's best-connected neighbors sorted by link quality, and the ID of the
  last complete storage index the node holds;
* :class:`MappingChunk` — one piece of a storage index, a list of
  ``(value-range, owner)`` entries, disseminated by Trickle;
* :class:`DataMessage` — readings routed to their owner, carrying the
  paper's three routing fields: the data, the owner ``o`` and the storage
  index ID ``sid`` that chose it (both rewritable in flight by nodes with a
  newer index);
* :class:`QueryMessage` — a query flooded selectively with a node bitmap;
* :class:`ReplyMessage` — matching tuples routed back up the tree.

Wire sizes are estimates of a compact C layout and cap at the TinyOS
payload; they drive airtime and the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core.histogram import Histogram

#: (value, timestamp, producer) — one sensor reading on the wire.
WireReading = Tuple[int, float, int]

#: Bytes per reading inside data/reply messages: 12-bit value + timestamp
#: + producer id, packed.
READING_WIRE_BYTES = 4

#: Bytes per (lo, hi, owner) entry in a mapping chunk.
MAPPING_ENTRY_BYTES = 5

#: Query bitmap width of the paper's implementation (128 nodes / 8). The
#: live width is derived from the deployment's configured capacity —
#: :func:`bitmap_wire_bytes` / ``ScoopConfig.query_bitmap_bytes`` — and
#: this constant is only the default for messages built without one.
DEFAULT_BITMAP_BYTES = 16


def bitmap_wire_bytes(capacity: int) -> int:
    """Bytes of a node bitmap addressing ``capacity`` nodes (one bit
    each, rounded up to whole bytes)."""
    if capacity < 1:
        raise ValueError(f"bitmap capacity must be >= 1, got {capacity}")
    return (capacity + 7) // 8

#: Entries that fit in one mapping chunk given the TinyOS payload.
MAX_ENTRIES_PER_CHUNK = 5


@dataclass(frozen=True)
class AttributeSummary:
    """Per-attribute statistics block inside a summary message (E15).

    A multi-attribute node packs one block per attribute beyond the first
    into its periodic summary instead of sending k separate messages —
    the block costs bytes, not packets, which is what keeps Scoop's
    maintenance cost sublinear in the attribute count.
    """

    attr: int
    histogram: Optional[Histogram]
    min_value: int
    max_value: int
    sum_values: int
    #: ID of the last complete storage index held for this attribute.
    last_sid: int

    def wire_bytes(self) -> int:
        hist = self.histogram.wire_bytes() if self.histogram else 0
        # attr id + min/max/sum + sid
        return 1 + hist + 8 + 2


@dataclass(frozen=True)
class SummaryMessage:
    """Periodic per-node statistics report (Section 5.2).

    The scalar fields describe attribute 0 (the paper's single
    attribute); multi-attribute deployments append one
    :class:`AttributeSummary` block per further attribute in ``extra``.
    """

    origin: int
    histogram: Optional[Histogram]
    min_value: int
    max_value: int
    sum_values: int
    #: number of readings taken since the previous summary (lets the
    #: basestation estimate this node's data rate; attributes are sampled
    #: together, so one count covers every attribute).
    readings_since_last: int
    #: best-connected neighbors as (node, quality), sorted by quality desc.
    neighbors: Tuple[Tuple[int, float], ...]
    #: ID of the last complete storage index this node received
    #: (attribute 0's index in multi-attribute deployments).
    last_sid: int
    #: per-attribute blocks for attributes >= 1 (empty = legacy format).
    extra: Tuple[AttributeSummary, ...] = ()

    def blocks(self) -> Tuple[AttributeSummary, ...]:
        """Uniform per-attribute view: attribute 0's scalar fields as a
        block, then ``extra`` verbatim."""
        head = AttributeSummary(
            attr=0,
            histogram=self.histogram,
            min_value=self.min_value,
            max_value=self.max_value,
            sum_values=self.sum_values,
            last_sid=self.last_sid,
        )
        return (head,) + self.extra

    def wire_bytes(self) -> int:
        hist = self.histogram.wire_bytes() if self.histogram else 0
        base = hist + 8 + 2 * len(self.neighbors) + 2
        return base + sum(block.wire_bytes() for block in self.extra)


@dataclass(frozen=True)
class MappingChunk:
    """One Trickle-disseminated piece of a storage index (Section 5.3).

    ``sid`` is the *dissemination epoch* — the version the Trickle state
    machine tracks. In the legacy single-attribute format the epoch and
    the storage-index id coincide; multi-attribute epochs (E15) bundle
    one chunk run per attribute into a single dissemination wave, so each
    chunk also names its attribute and that attribute's own index id
    (``attr_sid`` — "shared epoch, per-attribute index ids").
    """

    sid: int
    index: int
    total: int
    #: compacted entries: (value_lo, value_hi, owner)
    entries: Tuple[Tuple[int, int, int], ...]
    #: attribute this chunk's entries map (one attribute per chunk).
    attr: int = 0
    #: the attribute's storage-index id; -1 = same as the epoch ``sid``
    #: (the legacy single-attribute wire format).
    attr_sid: int = -1

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.total:
            raise ValueError(f"chunk index {self.index} outside 0..{self.total - 1}")

    @property
    def index_sid(self) -> int:
        """The storage-index id these entries belong to."""
        return self.sid if self.attr_sid < 0 else self.attr_sid

    def wire_bytes(self) -> int:
        # the multi-attribute format spends 3 extra bytes on the
        # attribute id and its index id; the legacy format omits both.
        tagged = 3 if (self.attr or self.attr_sid >= 0) else 0
        return 4 + tagged + MAPPING_ENTRY_BYTES * len(self.entries)


@dataclass
class DataMessage:
    """A batch of readings en route to their owner (Section 5.4).

    ``owner`` and ``sid`` may be overwritten in flight by any node holding
    a storage index newer than ``sid`` (routing rule 1); ``hops`` is the
    loop-protection budget; ``force_base`` marks a packet that exhausted its
    budget and now simply climbs the tree to be stored at the root.
    """

    readings: List[WireReading]
    owner: int
    sid: int
    hops: int = 0
    force_base: bool = False
    #: attribute id of every reading in this batch (one attribute per
    #: message; the owner was chosen by that attribute's index).
    attr: int = 0

    def wire_bytes(self) -> int:
        # single-attribute deployments use the paper's wire format (no
        # attribute field); non-zero attributes spend one byte on the id.
        return 5 + (1 if self.attr else 0) + READING_WIRE_BYTES * len(self.readings)

    def values(self) -> List[int]:
        return [v for v, _t, _p in self.readings]


@dataclass(frozen=True)
class QueryMessage:
    """A query disseminated with a node bitmap (Section 5.5)."""

    query_id: int
    #: nodes that must answer (the packet's header bitmap).
    bitmap: FrozenSet[int]
    time_range: Tuple[float, float]
    #: inclusive value range, or None for node-list queries.
    value_range: Optional[Tuple[int, int]]
    issued_at: float
    #: for node-list queries: only readings produced by these nodes match.
    #: (Distinct from ``bitmap``: under LOCAL the flood must reach every
    #: node, but only the listed producers' data is wanted.)
    node_filter: Optional[FrozenSet[int]] = None
    #: wire width of the node bitmap(s), derived from the deployment's
    #: configured capacity (``ScoopConfig.query_bitmap_bytes``): 16 bytes
    #: for the paper's 128-node implementation, 32 at 256 nodes.
    bitmap_bytes: int = DEFAULT_BITMAP_BYTES
    #: attribute the query targets (0 = the legacy single attribute).
    attr: int = 0

    def __post_init__(self) -> None:
        limit = self.bitmap_bytes * 8
        widest = max(self.bitmap | (self.node_filter or frozenset()), default=0)
        if widest >= limit:
            raise ValueError(f"node {widest} does not fit a {limit}-bit query bitmap")

    def wire_bytes(self) -> int:
        # node bitmap + qid + time range + value range (+ filter bitmap,
        # same width) (+ attribute id beyond the legacy attribute 0)
        return (
            self.bitmap_bytes
            + 2
            + 8
            + 4
            + (self.bitmap_bytes if self.node_filter is not None else 0)
            + (1 if self.attr else 0)
        )

    def matches(self, value: int, timestamp: float, producer: int = -1) -> bool:
        t_lo, t_hi = self.time_range
        if not t_lo <= timestamp <= t_hi:
            return False
        if self.node_filter is not None and producer not in self.node_filter:
            return False
        if self.value_range is None:
            return True
        v_lo, v_hi = self.value_range
        return v_lo <= value <= v_hi


@dataclass
class ReplyMessage:
    """One fragment of a node's answer to a query (Section 5.5).

    A node replies even when nothing matched ("sends a reply—even if no
    tuples matched the query"); ``fragment``/``total_fragments`` let large
    answers span several packets.
    """

    query_id: int
    origin: int
    readings: List[WireReading]
    fragment: int = 0
    total_fragments: int = 1

    def wire_bytes(self) -> int:
        return 5 + READING_WIRE_BYTES * len(self.readings)
