"""The storage index: a value -> owner-node mapping (Section 4, Figure 1).

A storage index tells every node where each attribute value must be stored
during the index's activity period. This module covers the data structure
and its wire representation:

* **compaction** — "the storage index is compacted by coalescing
  consecutive values that map to the same node into a single value range to
  node mapping" (Section 5.3);
* **chunking** — the compacted ranges are split into
  :class:`~repro.core.messages.MappingChunk` packets for Trickle
  dissemination, and reassembled on the other side;
* **similarity** — the fraction of the domain mapped identically by two
  indices, which the basestation uses to suppress re-dissemination of
  near-identical indices;
* the **owner-set extension** (Section 4, Extensions): a value may map to a
  small set of candidate owners; producers pick the nearest.

Index IDs (``sid``) are issued monotonically by the basestation; nodes only
ever *use* a complete index, falling back to their previous complete one
while chunks of a newer index trickle in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.core.config import ValueDomain
from repro.core.messages import MAX_ENTRIES_PER_CHUNK, MappingChunk

#: Sentinel owner meaning "every producer stores this value locally".
#: Used when the basestation's store-local fallback (Section 4) wins the
#: cost comparison: the disseminated index maps the whole domain to this
#: pseudo-node and nodes keep their own readings.
STORE_LOCAL = -2


@dataclass(frozen=True)
class RangeEntry:
    """One compacted mapping row: values in [lo, hi] belong to ``owners``."""

    lo: int
    hi: int
    owners: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"empty range [{self.lo}, {self.hi}]")
        if not self.owners:
            raise ValueError("range entry needs at least one owner")


class StorageIndex:
    """An immutable value -> owner(s) mapping for one attribute."""

    def __init__(
        self,
        sid: int,
        domain: ValueDomain,
        owners: Sequence[Tuple[int, ...]],
        attr: int = 0,
    ):
        if len(owners) != domain.size:
            raise ValueError(
                f"owners list has {len(owners)} entries for a domain of "
                f"{domain.size} values"
            )
        for owner_set in owners:
            if not owner_set:
                raise ValueError("every value needs at least one owner")
        self.sid = sid
        self.domain = domain
        #: attribute this index maps (0 = the legacy single attribute).
        self.attr = attr
        self._owners: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(o) for o in owners
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single_owner(
        cls,
        sid: int,
        domain: ValueDomain,
        owner_by_value: Sequence[int],
        attr: int = 0,
    ) -> "StorageIndex":
        return cls(sid, domain, [(o,) for o in owner_by_value], attr=attr)

    @classmethod
    def uniform(
        cls, sid: int, domain: ValueDomain, owner: int, attr: int = 0
    ) -> "StorageIndex":
        """Every value mapped to one node (owner=0 gives send-to-base)."""
        return cls(sid, domain, [(owner,)] * domain.size, attr=attr)

    def with_sid(self, sid: int) -> "StorageIndex":
        """This mapping re-stamped with a different index id (the
        basestation assigns final ids only to indexes it accepts for
        dissemination). Returns ``self`` when the id already matches."""
        if sid == self.sid:
            return self
        return StorageIndex(sid, self.domain, self._owners, attr=self.attr)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def owners_of(self, value: int) -> Tuple[int, ...]:
        return self._owners[self.domain.index_of(value)]

    def owner_of(self, value: int) -> int:
        """Primary owner (first of the owner set)."""
        return self.owners_of(value)[0]

    def all_owners(self) -> frozenset:
        return frozenset(o for owner_set in self._owners for o in owner_set)

    def values_owned_by(self, node: int) -> List[int]:
        return [
            self.domain.lo + i
            for i, owner_set in enumerate(self._owners)
            if node in owner_set
        ]

    def owners_for_range(self, lo: int, hi: int) -> frozenset:
        """Every node owning any value in [lo, hi] ∩ domain."""
        lo = max(lo, self.domain.lo)
        hi = min(hi, self.domain.hi)
        found = set()
        for v in range(lo, hi + 1):
            found.update(self.owners_of(v))
        return frozenset(found)

    # ------------------------------------------------------------------
    # Compaction / chunking (wire format)
    # ------------------------------------------------------------------
    def compact(self) -> List[RangeEntry]:
        """Coalesce consecutive values with identical owner sets."""
        entries: List[RangeEntry] = []
        start = self.domain.lo
        current = self._owners[0]
        for i in range(1, self.domain.size):
            if self._owners[i] != current:
                entries.append(
                    RangeEntry(lo=start, hi=self.domain.lo + i - 1, owners=current)
                )
                start = self.domain.lo + i
                current = self._owners[i]
        entries.append(RangeEntry(lo=start, hi=self.domain.hi, owners=current))
        return entries

    def _wire_rows(self) -> List[Tuple[int, int, int]]:
        """Compacted (lo, hi, owner) wire rows, one per (range, owner)."""
        rows: List[Tuple[int, int, int]] = []
        for entry in self.compact():
            for owner in entry.owners:
                rows.append((entry.lo, entry.hi, owner))
        return rows

    def to_chunks(self, max_entries: int = MAX_ENTRIES_PER_CHUNK) -> List[MappingChunk]:
        """Split the compacted index into dissemination chunks.

        Owner sets are flattened into one wire entry per (range, owner)
        pair, the same 5-byte row as the single-owner format. This is the
        legacy single-index chunking (epoch == index id); multi-attribute
        epochs are assembled by :func:`chunk_index_set`.
        """
        rows = self._wire_rows()
        total = max(1, (len(rows) + max_entries - 1) // max_entries)
        chunks = []
        for k in range(total):
            chunk_rows = tuple(rows[k * max_entries : (k + 1) * max_entries])
            chunks.append(
                MappingChunk(sid=self.sid, index=k, total=total, entries=chunk_rows)
            )
        return chunks

    @classmethod
    def from_chunks(
        cls, domain: ValueDomain, chunks: Iterable[MappingChunk]
    ) -> "StorageIndex":
        """Reassemble an index from a complete chunk set.

        Raises ``ValueError`` on missing/duplicate chunks, mixed sids, or
        incomplete domain coverage — nodes must never act on a partial
        index (Section 5.3).
        """
        chunk_list = sorted(chunks, key=lambda c: c.index)
        if not chunk_list:
            raise ValueError("no chunks")
        sid = chunk_list[0].sid
        total = chunk_list[0].total
        attr = chunk_list[0].attr
        index_sid = chunk_list[0].index_sid
        if any(
            c.sid != sid or c.total != total or c.attr != attr
            for c in chunk_list
        ):
            raise ValueError("chunks from different indices")
        if [c.index for c in chunk_list] != list(range(total)):
            raise ValueError("missing or duplicate chunks")
        owner_sets: List[List[int]] = [[] for _ in range(domain.size)]
        for chunk in chunk_list:
            for lo, hi, owner in chunk.entries:
                if lo < domain.lo or hi > domain.hi:
                    raise ValueError(f"range [{lo},{hi}] outside domain")
                for v in range(lo, hi + 1):
                    if owner not in owner_sets[v - domain.lo]:
                        owner_sets[v - domain.lo].append(owner)
        if any(not owners for owners in owner_sets):
            raise ValueError("chunk set does not cover the whole domain")
        return cls(index_sid, domain, [tuple(o) for o in owner_sets], attr=attr)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def similarity(self, other: "StorageIndex") -> float:
        """Fraction of domain values mapped to identical owner sets."""
        if other.domain != self.domain:
            return 0.0
        same = sum(
            1
            for a, b in zip(self._owners, other._owners)
            if frozenset(a) == frozenset(b)
        )
        return same / self.domain.size

    def is_send_to_base(self, base_id: int = 0) -> bool:
        """True if this index degenerates into the send-to-base policy."""
        return all(owner_set == (base_id,) for owner_set in self._owners)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StorageIndex)
            and self.sid == other.sid
            and self.attr == other.attr
            and self.domain == other.domain
            and self._owners == other._owners
        )

    def __hash__(self) -> int:
        return hash((self.sid, self.attr, self.domain, self._owners))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StorageIndex(sid={self.sid}, attr={self.attr}, "
            f"domain=[{self.domain.lo},{self.domain.hi}], "
            f"ranges={len(self.compact())})"
        )


# ----------------------------------------------------------------------
# Shared-epoch chunking (E15): one Trickle wave carries every attribute
# ----------------------------------------------------------------------

def chunk_index_set(
    epoch: int,
    indexes: Mapping[int, StorageIndex],
    max_entries: int = MAX_ENTRIES_PER_CHUNK,
) -> List[MappingChunk]:
    """Chunk a whole per-attribute index set into ONE dissemination epoch.

    Every remap disseminates the complete current mapping — all
    attributes, changed or not — under a single Trickle version
    (``epoch``), so the gossip cost of k attributes is one wave, not k.
    Chunks never span attributes (a chunk carries one ``attr`` tag and
    that attribute's own index id), and chunk indices number the whole
    epoch consecutively so the disseminator's completeness bitmap works
    unchanged.
    """
    rows_by_attr = [
        (attr, indexes[attr]._wire_rows(), indexes[attr].sid)
        for attr in sorted(indexes)
    ]
    counts = [
        max(1, (len(rows) + max_entries - 1) // max_entries)
        for _a, rows, _s in rows_by_attr
    ]
    total = sum(counts)
    chunks: List[MappingChunk] = []
    position = 0
    for (attr, rows, attr_sid), n_chunks in zip(rows_by_attr, counts):
        for k in range(n_chunks):
            chunks.append(
                MappingChunk(
                    sid=epoch,
                    index=position,
                    total=total,
                    entries=tuple(rows[k * max_entries : (k + 1) * max_entries]),
                    attr=attr,
                    attr_sid=attr_sid,
                )
            )
            position += 1
    return chunks


def indexes_from_chunks(
    domains: Mapping[int, ValueDomain], chunks: Iterable[MappingChunk]
) -> Dict[int, StorageIndex]:
    """Reassemble a complete epoch's chunk set into per-attribute indexes.

    ``domains`` maps attribute id -> configured domain
    (``ScoopConfig.domain_of``). Raises ``ValueError`` on missing or
    duplicate chunks, mixed epochs, unknown attributes, or incomplete
    per-attribute domain coverage — nodes must never act on a partial
    index (Section 5.3).
    """
    chunk_list = sorted(chunks, key=lambda c: c.index)
    if not chunk_list:
        raise ValueError("no chunks")
    epoch = chunk_list[0].sid
    total = chunk_list[0].total
    if any(c.sid != epoch or c.total != total for c in chunk_list):
        raise ValueError("chunks from different epochs")
    if [c.index for c in chunk_list] != list(range(total)):
        raise ValueError("missing or duplicate chunks")
    out: Dict[int, StorageIndex] = {}
    by_attr: Dict[int, List[MappingChunk]] = {}
    for chunk in chunk_list:
        by_attr.setdefault(chunk.attr, []).append(chunk)
    for attr, group in by_attr.items():
        if attr not in domains:
            raise ValueError(f"chunks for unknown attribute {attr}")
        domain = domains[attr]
        attr_sid = group[0].index_sid
        if any(c.index_sid != attr_sid for c in group):
            raise ValueError(f"attribute {attr} chunks mix index ids")
        owner_sets: List[List[int]] = [[] for _ in range(domain.size)]
        for chunk in group:
            for lo, hi, owner in chunk.entries:
                if lo < domain.lo or hi > domain.hi:
                    raise ValueError(
                        f"range [{lo},{hi}] outside attribute {attr} domain"
                    )
                for v in range(lo, hi + 1):
                    if owner not in owner_sets[v - domain.lo]:
                        owner_sets[v - domain.lo].append(owner)
        if any(not owners for owners in owner_sets):
            raise ValueError(
                f"chunk set does not cover attribute {attr}'s domain"
            )
        out[attr] = StorageIndex(
            attr_sid, domain, [tuple(o) for o in owner_sets], attr=attr
        )
    return out
