"""The storage index: a value -> owner-node mapping (Section 4, Figure 1).

A storage index tells every node where each attribute value must be stored
during the index's activity period. This module covers the data structure
and its wire representation:

* **compaction** — "the storage index is compacted by coalescing
  consecutive values that map to the same node into a single value range to
  node mapping" (Section 5.3);
* **chunking** — the compacted ranges are split into
  :class:`~repro.core.messages.MappingChunk` packets for Trickle
  dissemination, and reassembled on the other side;
* **similarity** — the fraction of the domain mapped identically by two
  indices, which the basestation uses to suppress re-dissemination of
  near-identical indices;
* the **owner-set extension** (Section 4, Extensions): a value may map to a
  small set of candidate owners; producers pick the nearest.

Index IDs (``sid``) are issued monotonically by the basestation; nodes only
ever *use* a complete index, falling back to their previous complete one
while chunks of a newer index trickle in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.config import ValueDomain
from repro.core.messages import MAX_ENTRIES_PER_CHUNK, MappingChunk

#: Sentinel owner meaning "every producer stores this value locally".
#: Used when the basestation's store-local fallback (Section 4) wins the
#: cost comparison: the disseminated index maps the whole domain to this
#: pseudo-node and nodes keep their own readings.
STORE_LOCAL = -2


@dataclass(frozen=True)
class RangeEntry:
    """One compacted mapping row: values in [lo, hi] belong to ``owners``."""

    lo: int
    hi: int
    owners: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"empty range [{self.lo}, {self.hi}]")
        if not self.owners:
            raise ValueError("range entry needs at least one owner")


class StorageIndex:
    """An immutable value -> owner(s) mapping for one attribute."""

    def __init__(
        self,
        sid: int,
        domain: ValueDomain,
        owners: Sequence[Tuple[int, ...]],
    ):
        if len(owners) != domain.size:
            raise ValueError(
                f"owners list has {len(owners)} entries for a domain of "
                f"{domain.size} values"
            )
        for owner_set in owners:
            if not owner_set:
                raise ValueError("every value needs at least one owner")
        self.sid = sid
        self.domain = domain
        self._owners: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(o) for o in owners
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single_owner(
        cls, sid: int, domain: ValueDomain, owner_by_value: Sequence[int]
    ) -> "StorageIndex":
        return cls(sid, domain, [(o,) for o in owner_by_value])

    @classmethod
    def uniform(cls, sid: int, domain: ValueDomain, owner: int) -> "StorageIndex":
        """Every value mapped to one node (owner=0 gives send-to-base)."""
        return cls(sid, domain, [(owner,)] * domain.size)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def owners_of(self, value: int) -> Tuple[int, ...]:
        return self._owners[self.domain.index_of(value)]

    def owner_of(self, value: int) -> int:
        """Primary owner (first of the owner set)."""
        return self.owners_of(value)[0]

    def all_owners(self) -> frozenset:
        return frozenset(o for owner_set in self._owners for o in owner_set)

    def values_owned_by(self, node: int) -> List[int]:
        return [
            self.domain.lo + i
            for i, owner_set in enumerate(self._owners)
            if node in owner_set
        ]

    def owners_for_range(self, lo: int, hi: int) -> frozenset:
        """Every node owning any value in [lo, hi] ∩ domain."""
        lo = max(lo, self.domain.lo)
        hi = min(hi, self.domain.hi)
        found = set()
        for v in range(lo, hi + 1):
            found.update(self.owners_of(v))
        return frozenset(found)

    # ------------------------------------------------------------------
    # Compaction / chunking (wire format)
    # ------------------------------------------------------------------
    def compact(self) -> List[RangeEntry]:
        """Coalesce consecutive values with identical owner sets."""
        entries: List[RangeEntry] = []
        start = self.domain.lo
        current = self._owners[0]
        for i in range(1, self.domain.size):
            if self._owners[i] != current:
                entries.append(
                    RangeEntry(lo=start, hi=self.domain.lo + i - 1, owners=current)
                )
                start = self.domain.lo + i
                current = self._owners[i]
        entries.append(RangeEntry(lo=start, hi=self.domain.hi, owners=current))
        return entries

    def to_chunks(self, max_entries: int = MAX_ENTRIES_PER_CHUNK) -> List[MappingChunk]:
        """Split the compacted index into dissemination chunks.

        Owner sets are flattened into one wire entry per (range, owner)
        pair, the same 5-byte row as the single-owner format.
        """
        rows: List[Tuple[int, int, int]] = []
        for entry in self.compact():
            for owner in entry.owners:
                rows.append((entry.lo, entry.hi, owner))
        total = max(1, (len(rows) + max_entries - 1) // max_entries)
        chunks = []
        for k in range(total):
            chunk_rows = tuple(rows[k * max_entries : (k + 1) * max_entries])
            chunks.append(
                MappingChunk(sid=self.sid, index=k, total=total, entries=chunk_rows)
            )
        return chunks

    @classmethod
    def from_chunks(
        cls, domain: ValueDomain, chunks: Iterable[MappingChunk]
    ) -> "StorageIndex":
        """Reassemble an index from a complete chunk set.

        Raises ``ValueError`` on missing/duplicate chunks, mixed sids, or
        incomplete domain coverage — nodes must never act on a partial
        index (Section 5.3).
        """
        chunk_list = sorted(chunks, key=lambda c: c.index)
        if not chunk_list:
            raise ValueError("no chunks")
        sid = chunk_list[0].sid
        total = chunk_list[0].total
        if any(c.sid != sid or c.total != total for c in chunk_list):
            raise ValueError("chunks from different indices")
        if [c.index for c in chunk_list] != list(range(total)):
            raise ValueError("missing or duplicate chunks")
        owner_sets: List[List[int]] = [[] for _ in range(domain.size)]
        for chunk in chunk_list:
            for lo, hi, owner in chunk.entries:
                if lo < domain.lo or hi > domain.hi:
                    raise ValueError(f"range [{lo},{hi}] outside domain")
                for v in range(lo, hi + 1):
                    if owner not in owner_sets[v - domain.lo]:
                        owner_sets[v - domain.lo].append(owner)
        if any(not owners for owners in owner_sets):
            raise ValueError("chunk set does not cover the whole domain")
        return cls(sid, domain, [tuple(o) for o in owner_sets])

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def similarity(self, other: "StorageIndex") -> float:
        """Fraction of domain values mapped to identical owner sets."""
        if other.domain != self.domain:
            return 0.0
        same = sum(
            1
            for a, b in zip(self._owners, other._owners)
            if frozenset(a) == frozenset(b)
        )
        return same / self.domain.size

    def is_send_to_base(self, base_id: int = 0) -> bool:
        """True if this index degenerates into the send-to-base policy."""
        return all(owner_set == (base_id,) for owner_set in self._owners)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StorageIndex)
            and self.sid == other.sid
            and self.domain == other.domain
            and self._owners == other._owners
        )

    def __hash__(self) -> int:
        return hash((self.sid, self.domain, self._owners))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StorageIndex(sid={self.sid}, domain=[{self.domain.lo},"
            f"{self.domain.hi}], ranges={len(self.compact())})"
        )
