"""The Scoop sensor-node application (Sections 5.2-5.5 of the paper).

A :class:`ScoopNode` runs on top of the simulated mote stack and implements
the node half of Scoop:

* **sampling** at the configured rate, keeping the recent-readings ring
  from which summary histograms are built;
* **summary messages** every ``summary_interval`` seconds, unicast hop by
  hop up the routing tree to the basestation;
* **storage-index reception** over Trickle; a node only ever *uses* a
  complete index and keeps its previous complete index until a newer one
  fully arrives; before the first complete index it stores locally
  (Section 5.3);
* **data routing** by the paper's six rules (Section 5.4), verbatim:

    1. a node with a storage index newer than the packet's ``sid`` rewrites
       the owner;
    2. if the owner is this node, store locally;
    3. if the owner is in the neighbor list, send directly (shortcut);
    4. if this node is the basestation, store here — never route back down;
    5. if the owner is in the descendants list, send down that branch;
    6. otherwise send to the parent;

  with batching of up to ``batch_size`` readings per data message;
* **query handling**: answering queries whose bitmap names this node by a
  linear flash scan, and selectively rebroadcasting query packets using the
  bitmap plus the neighbor and descendants lists (Section 5.5).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.config import ScoopConfig
from repro.core.histogram import Histogram
from repro.core.messages import (
    AttributeSummary,
    DataMessage,
    MappingChunk,
    QueryMessage,
    ReplyMessage,
    SummaryMessage,
    WireReading,
)
from repro.core.storage_index import (
    STORE_LOCAL,
    StorageIndex,
    indexes_from_chunks,
)
from repro.sim.flash import Flash, RecentReadings, StoredReading
from repro.sim.kernel import EventHandle, Simulator, Timer
from repro.sim.metrics import DeliveryTracker
from repro.sim.mote import Mote
from repro.sim.packets import Frame, FrameKind
from repro.sim.radio import Radio
from repro.sim.trickle import Advertisement, ChunkDisseminator

#: A reading producer: (node_id, now) -> raw value.
DataSource = Callable[[int, float], int]

#: A multi-attribute reading producer: (node_id, now, attr) -> raw value.
MultiDataSource = Callable[[int, float, int], int]


class _AttrBatch:
    """Per-attribute batching state (Section 5.4): one open batch per
    (attribute, destination owner)."""

    __slots__ = ("readings", "owner", "sid", "deadline")

    def __init__(self) -> None:
        self.readings: List[WireReading] = []
        self.owner: Optional[int] = None
        self.sid: int = -1
        self.deadline: Optional[EventHandle] = None


class ScoopNode(Mote):
    """One Scoop sensor node."""

    # Scoop's per-sample/per-frame state lives in slots (Mote already
    # grants subclasses a __dict__, so policy subclasses stay free to add
    # attributes; these descriptors just keep the hot reads off it).
    __slots__ = (
        "config",
        "data_source",
        "multi_source",
        "tracker",
        "flash",
        "_recent_by_attr",
        "recent",
        "_indexes",
        "disseminator",
        "_sample_timer",
        "_summary_timer",
        "sampling",
        "_was_sampling",
        "readings_since_summary",
        "_batches",
        "_queries_heard",
        "_query_gossip",
    )

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: Radio,
        config: ScoopConfig,
        data_source: Optional[DataSource] = None,
        tracker: Optional[DeliveryTracker] = None,
        energy=None,
        is_root: bool = False,
        multi_source: Optional[MultiDataSource] = None,
    ):
        super().__init__(
            node_id,
            sim,
            radio,
            is_root=is_root,
            beacon_interval=config.beacon_interval,
            max_descendants=config.max_descendants,
            max_neighbors=config.max_neighbors,
        )
        self.config = config
        self.data_source = data_source
        self.multi_source = multi_source
        self.tracker = tracker
        self.flash = Flash(
            capacity_readings=config.flash_capacity, meter=energy, node_id=node_id
        )
        #: per-attribute recent-readings rings; attribute 0's ring is also
        #: exposed as the legacy ``recent``.
        self._recent_by_attr: Dict[int, RecentReadings] = {
            attr: RecentReadings(config.recent_readings_size)
            for attr in config.attribute_ids
        }
        self.recent = self._recent_by_attr[0]

        #: last *complete* storage index per attribute (missing entry ->
        #: store that attribute locally, Section 5.3). Attribute 0's slot
        #: is also reachable through the legacy ``current_index`` property.
        self._indexes: Dict[int, StorageIndex] = {}
        self.disseminator: ChunkDisseminator[MappingChunk] = ChunkDisseminator(
            sim,
            send_advert=self._send_advert,
            send_chunk=self._send_chunk,
            on_complete=self._index_complete,
            imin=config.trickle_imin,
            imax=config.trickle_imax,
            k=config.trickle_k,
        )

        self._sample_timer = Timer(
            sim,
            self._sample,
            interval=config.sample_interval,
            periodic=True,
            jitter=0.05,
        )
        self._summary_timer = Timer(
            sim,
            self._send_summary,
            interval=config.summary_interval,
            periodic=True,
            jitter=0.1,
        )
        self.sampling = False
        self._was_sampling = False
        self.readings_since_summary = 0

        # batching state (Section 5.4): one open batch per attribute and
        # destination owner (a batch carries one attribute's readings).
        self._batches: Dict[int, _AttrBatch] = {
            attr: _AttrBatch() for attr in config.attribute_ids
        }

        # query gossip state (the paper's "modified version of Trickle"):
        # qid -> {heard-this-round, rounds-sent, pending timer}
        self._queries_heard: Dict[int, int] = {}
        self._query_gossip: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_boot(self) -> None:
        self.disseminator.start()

    def _require_sources(self) -> None:
        """Fail fast at start_sampling (not mid-simulation) when the node
        cannot read every registered attribute."""
        if self.data_source is None and self.multi_source is None:
            raise RuntimeError(f"node {self.node_id} has no data source")
        if self.config.n_attributes > 1 and self.multi_source is None:
            raise RuntimeError(
                f"node {self.node_id}: a {self.config.n_attributes}-attribute "
                "deployment needs a multi-attribute data source"
            )

    def start_sampling(self) -> None:
        """Begin the measured workload (after tree stabilization)."""
        self._require_sources()
        if self.sampling:
            return
        self.sampling = True
        self._sample_timer.start(
            delay=self.sim.rng.uniform(0.0, self.config.sample_interval)
        )
        self._summary_timer.start(
            delay=self.sim.rng.uniform(
                self.config.summary_interval * 0.25, self.config.summary_interval
            )
        )

    def stop_sampling(self) -> None:
        self.sampling = False
        self._sample_timer.stop()
        self._summary_timer.stop()
        for attr in self._batches:
            self._flush_batch(attr)

    def on_fail(self) -> None:
        """Node death: every timer stops and RAM-held work is lost — the
        open batches die unsent, gossip state evaporates. Flash survives
        (its readings are simply unreachable while the node is dark)."""
        self._was_sampling = self.sampling
        self.sampling = False
        self._sample_timer.stop()
        self._summary_timer.stop()
        for batch in self._batches.values():
            if batch.deadline is not None:
                batch.deadline.cancel()
                batch.deadline = None
            batch.readings = []
            batch.owner = None
        self._recent_by_attr = {
            attr: RecentReadings(self.config.recent_readings_size)
            for attr in self.config.attribute_ids
        }
        self.recent = self._recent_by_attr[0]
        self.readings_since_summary = 0
        self.disseminator.stop()
        self._queries_heard.clear()
        self._query_gossip.clear()

    def on_revive(self) -> None:
        """Cold reboot: the node has no storage index (it stores locally
        until a complete one arrives over Trickle, Section 5.3) and
        resumes sampling if it was sampling when it died — through
        ``start_sampling``, so policy overrides (LOCAL/BASE start no
        summary timer) keep their behaviour across a reboot."""
        self._indexes = {}
        self.disseminator.reset()
        # Boot again through the policy's own hook: SCOOP restarts Trickle
        # dissemination, LOCAL/BASE (which override on_boot to skip it)
        # stay mapping-silent after a reboot too.
        self.on_boot()
        if self._was_sampling:
            self.start_sampling()

    # ------------------------------------------------------------------
    # Storage indexes (per attribute)
    # ------------------------------------------------------------------
    @property
    def current_index(self) -> Optional[StorageIndex]:
        """Attribute 0's last complete index (the legacy single-attribute
        view; per-attribute lookup is :meth:`index_for`)."""
        return self._indexes.get(0)

    @current_index.setter
    def current_index(self, index: Optional[StorageIndex]) -> None:
        if index is None:
            self._indexes.pop(0, None)
        else:
            self._indexes[0] = index

    def index_for(self, attr: int) -> Optional[StorageIndex]:
        return self._indexes.get(attr)

    def install_index(self, index: StorageIndex) -> None:
        """Adopt ``index`` for its attribute if it is newer than what we
        hold (nodes never step backwards, Section 5.3)."""
        current = self._indexes.get(index.attr)
        if current is None or index.sid > current.sid:
            self._indexes[index.attr] = index
            self.on_new_index(index)

    @property
    def sid(self) -> int:
        return self.sid_for(0)

    def sid_for(self, attr: int) -> int:
        index = self._indexes.get(attr)
        return index.sid if index is not None else -1

    # ------------------------------------------------------------------
    # Sampling and batching
    # ------------------------------------------------------------------
    def _choose_owner(self, value: int, attr: int = 0) -> Optional[int]:
        """Owner for ``(attr, value)`` under that attribute's current
        index (None = no index).

        With the owner-set extension a node prefers itself, then the
        closest owner in its neighbor list, then the first listed owner.
        """
        index = self._indexes.get(attr)
        if index is None:
            return None
        owners = index.owners_of(value)
        if STORE_LOCAL in owners or self.node_id in owners:
            return self.node_id
        if len(owners) == 1:
            return owners[0]
        in_reach = [o for o in owners if self.tree.in_neighbor_list(o)]
        if in_reach:
            return max(in_reach, key=self.linkest.quality)
        return owners[0]

    def _read_sensor(self, attr: int, now: float) -> int:
        if self.multi_source is not None:
            return self.multi_source(self.node_id, now, attr)
        if attr != 0:
            raise RuntimeError(
                f"node {self.node_id} has no multi-attribute data source"
            )
        return self.data_source(self.node_id, now)

    def _sample(self) -> None:
        if not self.sampling or (
            self.data_source is None and self.multi_source is None
        ):
            return
        now = self.sim.now
        # One reading of every registered attribute per sample tick (the
        # mote reads its whole sensor board at once).
        for attr in self.config.attribute_ids:
            value = self.config.domain_of(attr).clamp(self._read_sensor(attr, now))
            self._recent_by_attr[attr].add(now, value)
            if attr == 0:
                self.readings_since_summary += 1
            owner = self._choose_owner(value, attr)
            if self.tracker is not None:
                self.tracker.reading_produced(
                    self.node_id, value, now, intended_owner=owner, attr=attr
                )
            if owner is None or owner == self.node_id:
                # No index yet (store locally, Section 5.3) or we own it.
                self._store_reading((value, now, self.node_id), attr)
                continue
            self._add_to_batch((value, now, self.node_id), owner, attr)

    def _add_to_batch(self, reading: WireReading, owner: int, attr: int = 0) -> None:
        batch = self._batches[attr]
        if batch.readings and batch.owner != owner:
            # "As soon as a node produces data for another node ... the
            # message is sent."
            self._flush_batch(attr)
        if not batch.readings:
            batch.owner = owner
            batch.sid = self.sid_for(attr)
            batch.deadline = self.sim.schedule(
                self.config.batch_flush_timeout, self._flush_batch, attr
            )
        batch.readings.append(reading)
        if len(batch.readings) >= self.config.batch_size:
            self._flush_batch(attr)

    def _flush_batch(self, attr: int = 0) -> None:
        batch = self._batches[attr]
        if batch.deadline is not None:
            batch.deadline.cancel()
            batch.deadline = None
        if not batch.readings or batch.owner is None:
            batch.readings = []
            return
        message = DataMessage(
            readings=list(batch.readings),
            owner=batch.owner,
            sid=batch.sid,
            attr=attr,
        )
        batch.readings = []
        batch.owner = None
        self.route_data(message)

    # ------------------------------------------------------------------
    # Data routing (the six rules)
    # ------------------------------------------------------------------
    def _store_reading(self, reading: WireReading, attr: int = 0) -> None:
        value, timestamp, producer = reading
        self.flash.store(
            StoredReading(
                origin=producer, value=value, timestamp=timestamp, attr=attr
            )
        )
        if self.tracker is not None:
            self.tracker.reading_stored(
                producer,
                value,
                timestamp,
                stored_at=self.node_id,
                time=self.sim.now,
                attr=attr,
            )

    def _store_message(self, message: DataMessage) -> None:
        for reading in message.readings:
            self._store_reading(reading, message.attr)

    #: minimum snooped link quality for the rule-3 neighbor shortcut; the
    #: neighbor list also contains barely audible nodes, and burning six
    #: retransmissions on a 10%-delivery link before falling back is worse
    #: than climbing the tree directly.
    SHORTCUT_MIN_QUALITY = 0.25

    def route_data(self, message: DataMessage, from_node: Optional[int] = None) -> None:
        """Apply routing rules 1-6 to a produced or received data message.

        ``from_node`` is the link sender we received it from (None when we
        produced it); it breaks stale-descendant ping-pong loops.
        """
        # Rule 1: a newer index (for the batch's attribute) rewrites owner
        # and sid. A batch whose values now map to different owners is
        # split per new owner.
        index = self.index_for(message.attr)
        if (
            not message.force_base
            and index is not None
            and index.sid > message.sid
        ):
            regrouped: Dict[int, List[WireReading]] = {}
            for reading in message.readings:
                owner = self._choose_owner(reading[0], message.attr)
                regrouped.setdefault(owner, []).append(reading)
            for owner, readings in regrouped.items():
                self._route_by_rules(
                    DataMessage(
                        readings=readings,
                        owner=owner,
                        sid=index.sid,
                        hops=message.hops,
                        attr=message.attr,
                    ),
                    from_node,
                )
            return
        self._route_by_rules(message, from_node)

    def _route_by_rules(
        self, message: DataMessage, from_node: Optional[int] = None
    ) -> None:
        owner = message.owner
        # Rule 2: we are the owner.
        if owner == self.node_id:
            self._store_message(message)
            return
        # Loop/hop-budget protection: give up on the owner and climb to the
        # root (the paper's "value ends up being stored at the root"
        # fallback path).
        if message.hops >= self.config.max_data_hops:
            message.force_base = True
        if not message.force_base:
            # Rule 3: shortcut straight to a listed neighbor (if the link
            # is worth trying).
            if (
                owner != from_node
                and self.tree.in_neighbor_list(owner)
                and self.linkest.quality(owner) >= self.SHORTCUT_MIN_QUALITY
            ):
                self._transmit_data(message, owner, fallback_to_parent=True)
                return
        # Rule 4: the basestation never routes data back down.
        if self.is_root:
            self._store_message(message)
            return
        if not message.force_base:
            # Rule 5: send down the branch that leads to the owner — unless
            # that branch is where the packet just came from, in which case
            # the descendants entry is stale (the owner moved): drop it and
            # climb instead.
            next_down = self.tree.next_hop_down(owner)
            if next_down == from_node and next_down is not None:
                self.tree.forget_descendant(owner)
                next_down = None
            if next_down is not None:
                self._transmit_data(message, next_down, fallback_to_parent=True)
                return
        # Rule 6: send up to the parent.
        if self.tree.parent is not None:
            self._transmit_data(message, self.tree.parent, fallback_to_parent=False)
        else:
            # Orphaned (tree flap): keep the data rather than lose it.
            self._store_message(message)

    def _transmit_data(
        self, message: DataMessage, next_hop: int, fallback_to_parent: bool
    ) -> None:
        message.hops += 1

        def done(success: bool) -> None:
            if success:
                return
            if fallback_to_parent and self.tree.parent is not None:
                # Shortcut/descendant route failed after retries: climb the
                # tree instead (ends at the owner or, failing that, the root).
                retry = DataMessage(
                    readings=message.readings,
                    owner=message.owner,
                    sid=message.sid,
                    hops=message.hops,
                    force_base=message.force_base,
                    attr=message.attr,
                )
                self._transmit_data(retry, self.tree.parent, fallback_to_parent=False)
            # else: dropped; shows up as storage loss (paper: ~93% success).

        self.unicast(next_hop, FrameKind.DATA, message, done=done)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def _attr_summary_block(self, attr: int) -> "AttributeSummary":
        values = self._recent_by_attr[attr].values()
        histogram = (
            Histogram.from_values(values, self.config.n_bins) if values else None
        )
        return AttributeSummary(
            attr=attr,
            histogram=histogram,
            min_value=min(values) if values else 0,
            max_value=max(values) if values else 0,
            sum_values=sum(values) if values else 0,
            last_sid=self.sid_for(attr),
        )

    def _build_summary(self) -> SummaryMessage:
        head = self._attr_summary_block(0)
        return SummaryMessage(
            origin=self.node_id,
            histogram=head.histogram,
            min_value=head.min_value,
            max_value=head.max_value,
            sum_values=head.sum_values,
            readings_since_last=self.readings_since_summary,
            neighbors=tuple(self.linkest.best_neighbors(self.config.summary_neighbors)),
            last_sid=head.last_sid,
            # one block per further attribute rides in the same packet —
            # bytes, not messages, which keeps Scoop's maintenance cost
            # sublinear in the attribute count (E15).
            extra=tuple(
                self._attr_summary_block(attr)
                for attr in self.config.attribute_ids
                if attr != 0
            ),
        )

    def _send_summary(self) -> None:
        if self.is_root:
            return
        summary = self._build_summary()
        self.readings_since_summary = 0
        if self.tree.parent is None:
            return  # not joined; try again next interval
        self.unicast(self.tree.parent, FrameKind.SUMMARY, summary)

    # ------------------------------------------------------------------
    # Index dissemination plumbing
    # ------------------------------------------------------------------
    def _send_advert(self, advert: Advertisement) -> None:
        self.broadcast(FrameKind.MAPPING, advert)

    def _send_chunk(self, chunk: MappingChunk) -> None:
        self.broadcast(FrameKind.MAPPING, chunk)

    def _index_complete(self, sid: int, chunks: List[MappingChunk]) -> None:
        domains = {
            attr: self.config.domain_of(attr)
            for attr in self.config.attribute_ids
        }
        try:
            rebuilt = indexes_from_chunks(domains, chunks)
        except ValueError:
            return  # malformed chunk set; keep the old indexes (Section 5.3)
        for index in rebuilt.values():
            self.install_index(index)

    def on_new_index(self, index: StorageIndex) -> None:
        """Subclass/observer hook: a new complete index was installed."""

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------
    def handle_frame(self, frame: Frame) -> None:
        kind = frame.kind
        if kind is FrameKind.DATA:
            message: DataMessage = frame.payload
            # Copy before mutating: retransmitted duplicates and snoopers
            # share the payload object.
            self.route_data(
                DataMessage(
                    readings=list(message.readings),
                    owner=message.owner,
                    sid=message.sid,
                    hops=message.hops,
                    force_base=message.force_base,
                    attr=message.attr,
                ),
                from_node=frame.src,
            )
        elif kind is FrameKind.SUMMARY:
            if self.is_root:
                self._ingest_summary(frame)
            elif self.tree.parent is not None and self.tree.parent != frame.src:
                # Never bounce a summary straight back where it came from
                # (transient parent loops).
                self.forward(frame, self.tree.parent)
        elif kind is FrameKind.MAPPING:
            payload = frame.payload
            if isinstance(payload, Advertisement):
                self.disseminator.on_advert(payload)
            else:
                self.disseminator.on_chunk(payload)
        elif kind is FrameKind.QUERY:
            self._handle_query(frame)
        elif kind is FrameKind.REPLY:
            if self.is_root:
                self._ingest_reply(frame)
            elif self.tree.parent is not None and self.tree.parent != frame.src:
                self.forward(frame, self.tree.parent)

    def _ingest_summary(self, frame: Frame) -> None:
        """Root-only; overridden by the basestation."""

    def _ingest_reply(self, frame: Frame) -> None:
        """Root-only; overridden by the basestation."""

    # ------------------------------------------------------------------
    # Queries (Section 5.5)
    # ------------------------------------------------------------------

    def _handle_query(self, frame: Frame) -> None:
        query: QueryMessage = frame.payload
        qid = query.query_id
        first_time = qid not in self._queries_heard
        self._queries_heard[qid] = self._queries_heard.get(qid, 0) + 1
        if not first_time:
            self._note_query_copy_heard(qid)
            return
        if self.node_id in query.bitmap:
            # Stagger the answer: replying the instant the gossip wave
            # arrives would synchronise every target's reply burst into
            # hidden-terminal collisions near the root (the paper observes
            # replies taking "several seconds" to start coming back).
            self.sim.schedule(self.sim.rng.uniform(0.5, 3.0), self._answer_query, query)
        if self._should_rebroadcast(query):
            self._start_query_gossip(query)

    def _should_rebroadcast(self, query: QueryMessage) -> bool:
        """Selective rebroadcast (Section 5.5).

        A node relays the query when the bitmap intersects its descendants
        or neighbor lists (it can demonstrably help reach a target), and
        also when it is a routing-tree interior node — descendants lists go
        briefly stale after parent switches, so interior nodes must keep
        the wave moving down the tree or targets behind the staleness
        window become unreachable. Leaves with no listed target suppress,
        which is what keeps Scoop's query cost below LOCAL's full flood.
        """
        targets = query.bitmap - {self.node_id}
        if not targets:
            return False
        reachable = set(self.tree.descendants()) | set(self.tree.neighbor_list())
        if targets & reachable:
            return True
        if self.config.query_relay_mode == "tree":
            return len(self.tree.descendants()) > 0
        return False

    def _start_query_gossip(self, query: QueryMessage) -> None:
        lo, hi = self.config.query_rebroadcast_delay
        state = {"round": 0, "heard_this_round": 0}
        self._query_gossip[query.query_id] = state
        self.sim.schedule(self.sim.rng.uniform(lo, hi), self._query_gossip_fire, query)

    def _query_gossip_fire(self, query: QueryMessage) -> None:
        state = self._query_gossip.get(query.query_id)
        if state is None:
            return
        # Trickle-style suppression (k=1): stay quiet this round if any
        # copy was heard from a neighbor meanwhile.
        if state["heard_this_round"] < 1:
            self.broadcast(FrameKind.QUERY, query)
        state["round"] += 1
        state["heard_this_round"] = 0
        if state["round"] >= self.config.query_gossip_rounds:
            del self._query_gossip[query.query_id]
            return
        lo, hi = self.config.query_rebroadcast_delay
        delay = (
            self.sim.rng.uniform(lo, hi) * (2 ** state["round"])
            + 0.25 * state["round"]
        )
        self.sim.schedule(delay, self._query_gossip_fire, query)

    def _note_query_copy_heard(self, qid: int) -> None:
        state = self._query_gossip.get(qid)
        if state is not None:
            state["heard_this_round"] += 1

    def _answer_query(self, query: QueryMessage) -> None:
        if not self.booted:
            return  # died between hearing the query and the reply stagger
        matches = self.flash.scan(
            time_range=query.time_range,
            value_range=query.value_range,
            predicate=(
                (lambda r: r.origin in query.node_filter)
                if query.node_filter is not None
                else None
            ),
            attr=query.attr,
        )
        readings: List[WireReading] = [
            (r.value, r.timestamp, r.origin) for r in matches
        ]
        # "The node then sends a reply—even if no tuples matched the query."
        fragments: List[List[WireReading]] = [
            readings[i : i + self.config.batch_size]
            for i in range(0, len(readings), self.config.batch_size)
        ] or [[]]
        total = len(fragments)
        for number, fragment in enumerate(fragments):
            reply = ReplyMessage(
                query_id=query.query_id,
                origin=self.node_id,
                readings=fragment,
                fragment=number,
                total_fragments=total,
            )
            if self.is_root:
                self._ingest_reply_local(reply)
            elif self.tree.parent is not None:
                # Pace fragments out instead of dumping a burst on the MAC.
                self.sim.schedule(
                    number * 0.08 + self.sim.rng.uniform(0.0, 0.05),
                    self.unicast,
                    self.tree.parent,
                    FrameKind.REPLY,
                    reply,
                )

    def _ingest_reply_local(self, reply: ReplyMessage) -> None:
        """Root answering its own query locally; overridden by basestation."""
