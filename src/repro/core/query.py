"""User-facing query objects and results (Section 5.5).

A query names an attribute (``attr``, id 0 being the paper's single
implicit attribute), a time range, and either a value range or an explicit
node list ("Alternatively, a user can query values from one or more
specific nodes, in which case the query just specifies a time range and
the list of nodes").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.config import ValueDomain
from repro.core.messages import WireReading

_query_ids = itertools.count(1)


def next_query_id() -> int:
    return next(_query_ids)


@dataclass(frozen=True)
class Query:
    """A snapshot query over stored data.

    Exactly one of ``value_range`` / ``node_list`` should be provided; a
    query with neither asks for everything in the time range. ``attr``
    names the queried attribute; ``domain``, when supplied (the query
    generator and the basestation both do), is that attribute's
    configured domain, and a ``value_range`` reaching outside it is
    rejected at construction — an out-of-domain bound is a malformed
    query, not an empty answer.
    """

    time_range: Tuple[float, float]
    value_range: Optional[Tuple[int, int]] = None
    node_list: Optional[FrozenSet[int]] = None
    query_id: int = field(default_factory=next_query_id)
    #: attribute the query targets (0 = the legacy single attribute).
    attr: int = 0
    #: the named attribute's configured domain, when known at build time.
    domain: Optional[ValueDomain] = None

    def __post_init__(self) -> None:
        t_lo, t_hi = self.time_range
        if t_hi < t_lo:
            raise ValueError("empty time range")
        if self.value_range is not None and self.node_list is not None:
            raise ValueError("specify a value range or a node list, not both")
        if self.value_range is not None and self.value_range[1] < self.value_range[0]:
            raise ValueError("empty value range")
        if self.node_list is not None and not self.node_list:
            raise ValueError("empty node list")
        if self.attr < 0:
            raise ValueError(f"attribute id must be >= 0, got {self.attr}")
        if self.domain is not None and self.value_range is not None:
            lo, hi = self.value_range
            if lo not in self.domain or hi not in self.domain:
                raise ValueError(
                    f"value range [{lo}, {hi}] outside attribute {self.attr}'s "
                    f"domain [{self.domain.lo}, {self.domain.hi}]"
                )


@dataclass
class QueryResult:
    """What came back for a query before its reply window closed."""

    query: Query
    #: deduplicated matching readings: (value, timestamp, producer).
    readings: List[WireReading] = field(default_factory=list)
    #: nodes the planner decided to contact over the radio.
    nodes_targeted: Set[int] = field(default_factory=set)
    #: nodes whose reply made it back.
    nodes_replied: Set[int] = field(default_factory=set)
    #: readings served from the basestation's own flash (no radio cost).
    local_readings: int = 0
    #: True when the whole answer came from summaries/local data.
    answered_locally: bool = False
    closed: bool = False

    @property
    def complete(self) -> bool:
        """Every targeted node replied (best-effort completeness signal)."""
        return self.nodes_targeted <= self.nodes_replied

    @property
    def reply_fraction(self) -> float:
        if not self.nodes_targeted:
            return 1.0
        return len(self.nodes_targeted & self.nodes_replied) / len(self.nodes_targeted)

    def add_readings(self, readings: Sequence[WireReading]) -> None:
        """Merge readings, dropping duplicates from retransmissions."""
        seen = {(t, p) for _v, t, p in self.readings}
        for value, timestamp, producer in readings:
            if (timestamp, producer) not in seen:
                seen.add((timestamp, producer))
                self.readings.append((value, timestamp, producer))
