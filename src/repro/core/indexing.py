"""The storage-index construction algorithm (Figure 2 of the paper).

For every value ``v`` in the attribute domain, try every node ``o`` as
owner and charge it the expected message cost::

    cost(o, v) = Σ_p  P(p produces v) · rate_p · xmits(p -> o)
               +      P(user queries v) · query_rate · xmits(base -> o -> base)

then pick ``storage_index[v] = argmin_o cost(o, v)``. The paper notes the
complexity is O(V·n²) and "very practical" at V≈150, n=62; here the triple
loop is expressed as two matrix products so the same asymptotics run fast
enough to rebuild every simulated 240 s.

The algorithm satisfies the paper's four properties by construction:
P1 (higher data rate pulls values toward producers), P2 (higher query rate
pulls values toward the basestation), P3 (likely producers attract their
own values), P4 (xmits() penalises lossy paths).

Also implemented, from Section 4:

* the **store-local comparison** — "the basestation ... also evaluates the
  expected cost of a 'store-local' storage index and uses it if the
  expected cost is lower";
* the **owner-set extension** — up to ``max_owners_per_value`` owners per
  value, chosen greedily ("a more feasible approach is to consider only
  small owner sets"): producers then ship to the nearest owner, queries
  must visit every owner;
* the **range-placement extension** — place fixed-width value ranges
  instead of individual values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import ScoopConfig, ValueDomain
from repro.core.cost_model import NetworkModel
from repro.core.statistics import BasestationStatistics
from repro.core.storage_index import StorageIndex

#: Cost substituted for unreachable owners so argmin never picks them while
#: the matrices stay finite.
UNREACHABLE_COST = 1e12


@dataclass
class IndexBuildResult:
    """Outcome of one index construction round."""

    index: StorageIndex
    #: expected messages/second if the network follows ``index``.
    expected_cost: float
    #: expected messages/second under the store-local policy.
    store_local_cost: float
    #: True when store-local was cheaper and fallback is enabled.
    chose_store_local: bool
    #: candidate owners considered.
    candidates: List[int] = field(default_factory=list)
    #: producers with statistics.
    producers: List[int] = field(default_factory=list)


@dataclass
class _ProblemInputs:
    """The algorithm's statistical inputs, extracted once per build."""

    producers: List[int]
    candidates: List[int]
    production: np.ndarray  # (P, V): P(p -> v)
    rates: np.ndarray  # (P,)
    xmits_po: np.ndarray  # (P, O)
    roundtrip: np.ndarray  # (O,)
    query_prob: np.ndarray  # (V,)
    query_rate: float


def _gather_inputs(
    stats: BasestationStatistics,
    model: NetworkModel,
    config: ScoopConfig,
    now: float,
    attr: int = 0,
) -> _ProblemInputs:
    base = config.basestation_id
    # Staleness eviction (Section 6 recovery): nodes silent beyond the
    # staleness window are neither producers nor owner candidates, so a
    # dead owner's range is reassigned by the very next argmin.
    producers = stats.producer_nodes(now, attr)
    candidates = sorted(set(stats.known_nodes(now)) | {base})
    production = stats.production_matrix(producers, attr)
    rates = stats.rate_vector(producers)
    xmits_po = model.xmits_matrix(producers, candidates)
    roundtrip = model.roundtrip_vector(base, candidates)
    np.nan_to_num(xmits_po, copy=False, posinf=UNREACHABLE_COST)
    np.nan_to_num(roundtrip, copy=False, posinf=UNREACHABLE_COST)
    queries = stats.queries_for(attr)
    return _ProblemInputs(
        producers=producers,
        candidates=candidates,
        production=production,
        rates=rates,
        xmits_po=xmits_po,
        roundtrip=roundtrip,
        query_prob=queries.probability_vector(),
        query_rate=queries.query_rate(now),
    )


def _cost_matrix(inputs: _ProblemInputs) -> np.ndarray:
    """cost[v, o] per Figure 2, all values and owners at once.

    The inner sum Σ_p P(p→v)·rate_p·xmits(p→o) is the matrix
    product (P ⊙ rate)ᵀ · X; the query term broadcasts the roundtrip row.
    """
    weighted = inputs.production * inputs.rates[:, None]  # (P, V)
    data_cost = weighted.T @ inputs.xmits_po  # (V, O)
    query_cost = (
        inputs.query_rate * inputs.query_prob[:, None] * inputs.roundtrip[None, :]
    )
    return data_cost + query_cost


def evaluate_store_local_cost(
    stats: BasestationStatistics,
    model: NetworkModel,
    config: ScoopConfig,
    now: float,
    attr: int = 0,
) -> float:
    """Expected messages/second under the store-local policy.

    Data costs nothing (every reading stays at its producer); every query is
    flooded (one rebroadcast per node) and every node sends a reply up the
    tree: ``query_rate · (n_flood + Σ_p xmits(p -> base))``.
    """
    base = config.basestation_id
    producers = stats.producer_nodes(now, attr) or list(stats.known_nodes(now))
    flood_cost = float(len(stats.known_nodes(now)))
    reply_cost = 0.0
    for node in producers:
        xm = model.xmits(node, base)
        reply_cost += xm if math.isfinite(xm) else UNREACHABLE_COST
    return stats.queries_for(attr).query_rate(now) * (flood_cost + reply_cost)


def evaluate_index_cost(
    index: StorageIndex,
    stats: BasestationStatistics,
    model: NetworkModel,
    config: ScoopConfig,
    now: float,
) -> float:
    """Expected messages/second if the network follows ``index``.

    Used for the store-local comparison, ablations, and as the ground truth
    in optimality tests. Multi-owner values charge producers the nearest
    owner and queries every owner, mirroring the owner-set extension.
    The attribute evaluated is ``index.attr``.
    """
    inputs = _gather_inputs(stats, model, config, now, attr=index.attr)
    candidate_pos = {node: j for j, node in enumerate(inputs.candidates)}
    total = 0.0
    for v in index.domain:
        vi = index.domain.index_of(v)
        owners = index.owners_of(v)
        positions = [candidate_pos[o] for o in owners if o in candidate_pos]
        if not positions:
            total += UNREACHABLE_COST
            continue
        per_producer = inputs.xmits_po[:, positions].min(axis=1)
        data = float(np.dot(inputs.production[:, vi] * inputs.rates, per_producer))
        query = (
            inputs.query_rate
            * inputs.query_prob[vi]
            * float(inputs.roundtrip[positions].sum())
        )
        total += data + query
    return total


def _apply_range_placement(
    cost: np.ndarray, domain: ValueDomain, width: int
) -> np.ndarray:
    """Aggregate per-value costs into fixed-width ranges (extension 3).

    Returns a cost matrix where every value in a range shares the summed
    cost of the range, so the argmin assigns the whole range to one owner.
    """
    if width <= 1:
        return cost
    out = np.empty_like(cost)
    for start in range(0, domain.size, width):
        stop = min(start + width, domain.size)
        out[start:stop] = cost[start:stop].sum(axis=0, keepdims=True)
    return out


def _greedy_owner_sets(
    inputs: _ProblemInputs,
    single_owner_choice: np.ndarray,
    max_owners: int,
) -> List[Tuple[int, ...]]:
    """Owner-set extension: greedily add owners while expected cost drops.

    cost(O, v) = Σ_p P·rate·min_{o∈O} xmits(p,o)
               + query_rate · P(q v) · Σ_{o∈O} roundtrip(o)
    """
    owners_out: List[Tuple[int, ...]] = []
    weighted = inputs.production * inputs.rates[:, None]  # (P, V)
    n_candidates = len(inputs.candidates)
    for vi in range(inputs.production.shape[1]):
        chosen = [int(single_owner_choice[vi])]
        w = weighted[:, vi]  # (P,)
        current_min = inputs.xmits_po[:, chosen[0]].copy()
        current_cost = float(w @ current_min) + (
            inputs.query_rate
            * inputs.query_prob[vi]
            * float(inputs.roundtrip[chosen].sum())
        )
        while len(chosen) < max_owners:
            best_j, best_cost, best_min = -1, current_cost, None
            for j in range(n_candidates):
                if j in chosen:
                    continue
                candidate_min = np.minimum(current_min, inputs.xmits_po[:, j])
                cost = float(w @ candidate_min) + (
                    inputs.query_rate
                    * inputs.query_prob[vi]
                    * float(inputs.roundtrip[chosen].sum() + inputs.roundtrip[j])
                )
                if cost < best_cost - 1e-12:
                    best_j, best_cost, best_min = j, cost, candidate_min
            if best_j < 0:
                break
            chosen.append(best_j)
            current_cost = best_cost
            current_min = best_min
        owners_out.append(tuple(inputs.candidates[j] for j in chosen))
    return owners_out


def _stabilise_choice(
    cost: np.ndarray,
    choice: np.ndarray,
    previous_pick: np.ndarray,
    tolerance: float = 0.05,
) -> np.ndarray:
    """Resolve near-ties in favour of contiguity and stability.

    For values produced by several nodes with overlapping histograms the
    per-value costs of the cluster members are nearly identical, and a raw
    argmin interleaves them — producing width-1 ranges that defeat both
    range compaction (Section 5.3) and data batching (Section 5.4), and
    churning owners between remaps so similarity-based suppression never
    fires. Within a ``tolerance`` band of the minimum, prefer (1) the owner
    already chosen for the previous value, then (2) the owner the previous
    index assigned; otherwise keep the argmin.

    ``previous_pick[v]`` is the candidate column of the previous index's
    owner for v, or -1.
    """
    stabilised = choice.copy()
    min_cost = cost[np.arange(cost.shape[0]), choice]
    prev_column = -1
    for vi in range(cost.shape[0]):
        threshold = min_cost[vi] * (1.0 + tolerance) + 1e-12
        for candidate in (prev_column, int(previous_pick[vi])):
            if candidate >= 0 and cost[vi, candidate] <= threshold:
                stabilised[vi] = candidate
                break
        prev_column = int(stabilised[vi])
    return stabilised


def build_storage_index(
    sid: int,
    stats: BasestationStatistics,
    model: NetworkModel,
    config: ScoopConfig,
    now: float,
    previous: Optional[StorageIndex] = None,
    attr: int = 0,
) -> IndexBuildResult:
    """Run the Figure 2 algorithm and the store-local comparison.

    ``previous`` (the currently disseminated index) anchors near-tie
    resolution so consecutive indices stay similar. With no statistics at
    all, every value is mapped to the basestation (the only node the root
    is sure exists). ``attr`` selects which attribute's statistics,
    query stream and domain the argmin runs over (the per-attribute remap
    of E15); the supplied ``model`` is topology-only and is shared across
    attributes within one remap.
    """
    base = config.basestation_id
    domain = config.domain_of(attr)
    inputs = _gather_inputs(stats, model, config, now, attr=attr)

    if not inputs.candidates or not inputs.producers:
        index = StorageIndex.uniform(sid, domain, base, attr=attr)
        local_cost = evaluate_store_local_cost(stats, model, config, now, attr)
        return IndexBuildResult(
            index=index,
            expected_cost=0.0,
            store_local_cost=local_cost,
            chose_store_local=False,
            candidates=inputs.candidates,
            producers=inputs.producers,
        )

    cost = _cost_matrix(inputs)  # (V, O)
    # Tie-break toward the basestation side: among equal-cost owners prefer
    # the one cheapest to query, so untouched values don't scatter randomly.
    cost = cost + 1e-9 * inputs.roundtrip[None, :]
    cost = _apply_range_placement(cost, domain, config.range_placement_width)
    choice = cost.argmin(axis=1)  # (V,)

    candidate_column = {node: j for j, node in enumerate(inputs.candidates)}
    previous_pick = np.full(domain.size, -1, dtype=int)
    if previous is not None and previous.domain == domain:
        for vi, v in enumerate(domain):
            previous_pick[vi] = candidate_column.get(previous.owner_of(v), -1)
    choice = _stabilise_choice(
        cost, choice, previous_pick, tolerance=config.index_tie_tolerance
    )

    if config.max_owners_per_value > 1:
        owner_sets = _greedy_owner_sets(inputs, choice, config.max_owners_per_value)
        index = StorageIndex(sid, domain, owner_sets, attr=attr)
    else:
        owner_by_value = [inputs.candidates[j] for j in choice]
        index = StorageIndex.single_owner(sid, domain, owner_by_value, attr=attr)

    expected = float(np.take_along_axis(cost, choice[:, None], axis=1).sum())
    local_cost = evaluate_store_local_cost(stats, model, config, now, attr)
    chose_local = config.allow_store_local_fallback and local_cost < expected
    return IndexBuildResult(
        index=index,
        expected_cost=expected,
        store_local_cost=local_cost,
        chose_store_local=chose_local,
        candidates=inputs.candidates,
        producers=inputs.producers,
    )
