"""The Scoop basestation: statistics sink, index builder, query frontend.

The basestation (run on a PC in the paper, attached to mote 0) closes the
Scoop control loop:

* it ingests every summary that survives the trip up the tree and every
  origin/parent header it hears (Section 5.2);
* every ``remap_interval`` seconds it rebuilds the storage index from its
  statistics (Figure 2), suppresses dissemination when the new index is
  nearly identical to the current one (Section 5.3), and otherwise seeds
  its Trickle disseminator with the new chunks;
* it plans and issues queries (Section 5.5): consulting *all* storage
  indices that could have been active during the queried time window —
  "the basestation never discards old storage indices" — plus nodes that
  were storing locally, encodes the target set in the query bitmap, floods
  it selectively, and assembles replies;
* it answers what it can for free: data that was stored at the root (rule
  4 traffic) is scanned locally, and MAX/MIN-style questions are answered
  straight from summaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import ScoopConfig
from repro.core.cost_model import NetworkModel
from repro.core.indexing import IndexBuildResult, build_storage_index
from repro.core.messages import QueryMessage, ReplyMessage, SummaryMessage
from repro.core.node import ScoopNode
from repro.core.query import Query, QueryResult
from repro.core.statistics import BasestationStatistics
from repro.core.storage_index import STORE_LOCAL, StorageIndex, chunk_index_set
from repro.sim.kernel import Simulator, Timer
from repro.sim.metrics import DeliveryTracker
from repro.sim.packets import Frame, FrameKind
from repro.sim.radio import Radio


class Basestation(ScoopNode):
    """Node 0: the root of the routing tree and the brain of Scoop."""

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        config: ScoopConfig,
        tracker: Optional[DeliveryTracker] = None,
        energy=None,
    ):
        super().__init__(
            node_id=config.basestation_id,
            sim=sim,
            radio=radio,
            config=config,
            data_source=None,
            tracker=tracker,
            energy=energy,
            is_root=True,
        )
        self.stats = BasestationStatistics(config)
        #: shared monotonic id counter: every accepted index of every
        #: attribute draws its sid here, and the latest value doubles as
        #: the dissemination epoch ("shared epoch, per-attribute ids").
        self._sid_counter = 0
        #: per-attribute (created_at, index) histories of every index
        #: ever disseminated; attribute 0's list is also the legacy
        #: ``index_history``.
        self.index_histories: Dict[int, List[Tuple[float, StorageIndex]]] = {
            attr: [] for attr in config.attribute_ids
        }
        self.last_build: Optional[IndexBuildResult] = None
        self.remaps_run = 0
        self.remaps_suppressed = 0
        #: Accumulated cost-model work over every remap of the trial
        #: (model builds, Dijkstra runs, point queries) — exported through
        #: :class:`~repro.sim.metrics.TrialMetrics`.
        self.planner_stats: Dict[str, int] = {}
        self._remap_timer = Timer(
            sim, self._remap, interval=config.remap_interval, periodic=True, jitter=0.02
        )
        self._open_queries: Dict[int, QueryResult] = {}
        self.query_log: List[QueryResult] = []

    @property
    def index_history(self) -> List[Tuple[float, StorageIndex]]:
        """Attribute 0's dissemination history (the legacy view)."""
        return self.index_histories[0]

    @property
    def index_epoch(self) -> int:
        """The remap epoch: the shared sid counter, bumped whenever a
        remap disseminates new storage indexes. Cached query answers
        keyed on it self-invalidate the moment the mapping changes."""
        return self._sid_counter

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start_scoop(self) -> None:
        """Start periodic index recomputation (call when sampling starts)."""
        self._remap_timer.start(delay=self.config.remap_interval)

    def stop_scoop(self) -> None:
        self._remap_timer.stop()

    def force_remap(self) -> None:
        """Run one remap cycle immediately, outside the periodic timer.

        The serving layer's explicit invalidation hook: a forced remap
        bumps :attr:`index_epoch` (when indexes are accepted), expiring
        every epoch-keyed cached answer."""
        self._remap()

    # ------------------------------------------------------------------
    # Statistics ingestion
    # ------------------------------------------------------------------
    def _observe(self, frame: Frame) -> None:
        super()._observe(frame)
        if frame.kind is not FrameKind.ACK:
            self.stats.observe_packet_header(
                frame.origin, frame.origin_parent, self.sim.now
            )

    def _ingest_summary(self, frame: Frame) -> None:
        summary: SummaryMessage = frame.payload
        self.stats.ingest_summary(summary, self.sim.now)

    # ------------------------------------------------------------------
    # Index construction and dissemination
    # ------------------------------------------------------------------
    def _bump(self, counter: str, by: int = 1) -> None:
        self.planner_stats[counter] = self.planner_stats.get(counter, 0) + by

    def _remap(self) -> None:
        """One remap cycle: run the Figure-2 argmin once per registered
        attribute (sharing a single topology/cost model build — the
        planner work that stays flat in the attribute count), then
        disseminate every accepted index under one shared epoch."""
        now = self.sim.now
        model = NetworkModel.from_statistics(self.stats)
        try:
            accepted: List[Tuple[int, StorageIndex]] = []
            for attr in self.config.attribute_ids:
                provisional_sid = self._sid_counter + 1 + len(accepted)
                result = build_storage_index(
                    provisional_sid,
                    self.stats,
                    model,
                    self.config,
                    now,
                    previous=self.index_for(attr),
                    attr=attr,
                )
                if attr == 0:
                    self.last_build = result
                self._bump(f"a{attr}.index_builds")
                candidate = result.index
                if result.chose_store_local:
                    candidate = StorageIndex.uniform(
                        provisional_sid,
                        self.config.domain_of(attr),
                        STORE_LOCAL,
                        attr=attr,
                    )
                if self._should_suppress(candidate, model, result, now, attr):
                    # "...suppressing the dissemination of a new storage
                    # index altogether if it is very similar to the
                    # previous" — nodes keep using the old one.
                    self._bump(f"a{attr}.remaps_suppressed")
                    continue
                accepted.append((attr, candidate))
            self.remaps_run += 1
            if not accepted:
                self.remaps_suppressed += 1
                return
            # Count the staleness-evicted population once per remap (it
            # is attribute-agnostic); reassignment counts are per index.
            stale = self.stats.stale_nodes(now)
            if stale:
                self._bump("stale_nodes_seen", len(stale))
            for attr, candidate in accepted:
                self._count_reassignments(candidate, stale, attr)
                self._sid_counter += 1
                stamped = candidate.with_sid(self._sid_counter)
                self._indexes[attr] = stamped
                self.index_histories[attr].append((now, stamped))
                self._bump(f"a{attr}.indices_disseminated")
            if self.config.n_attributes == 1:
                # legacy wire format: epoch == the single index's sid
                chunks = self._indexes[0].to_chunks()
            else:
                # every attribute's current mapping rides one Trickle
                # wave — gossip cost per epoch is shared across k (E15)
                chunks = chunk_index_set(self._sid_counter, self._indexes)
            self.disseminator.seed(self._sid_counter, chunks)
        finally:
            self._absorb_planner_stats(model)

    def _count_reassignments(
        self, candidate: StorageIndex, stale: Set[int], attr: int = 0
    ) -> None:
        """Planner counter for the node-death recovery story (E14): how
        many of this attribute's domain values moved off a presumed-dead
        owner onto a live one."""
        current = self.index_for(attr)
        if not stale or current is None:
            return
        reassigned = sum(
            1
            for v in self.config.domain_of(attr)
            if set(current.owners_of(v)) & stale
            and not set(candidate.owners_of(v)) & stale
        )
        if reassigned:
            self._bump("owners_reassigned", reassigned)

    def _absorb_planner_stats(self, model: NetworkModel) -> None:
        """Fold one remap's cost-model counters into the trial totals."""
        self._bump("model_builds")
        for name, count in model.stats.items():
            self._bump(name, count)

    def _should_suppress(
        self,
        candidate: StorageIndex,
        model: NetworkModel,
        result: IndexBuildResult,
        now: float,
        attr: int = 0,
    ) -> bool:
        """Suppress dissemination when the new index is "very similar" to
        the current one (Section 5.3) — similar both in the fraction of the
        domain mapped identically AND in expected cost, so a small change
        to a *hot* value (e.g. a heavily queried band moving toward the
        base) still propagates."""
        current = self.index_for(attr)
        if current is None:
            return False
        if candidate.similarity(current) < self.config.suppression_similarity:
            return False
        if STORE_LOCAL in current.all_owners() or STORE_LOCAL in (
            candidate.all_owners()
        ):
            # Policy-mode changes always disseminate; plain similarity is
            # not meaningful across the sentinel.
            return candidate.similarity(current) >= 1.0
        from repro.core.indexing import evaluate_index_cost

        old_cost = evaluate_index_cost(
            current, self.stats, model, self.config, now
        )
        new_cost = max(result.expected_cost, 1e-9)
        # 25% slack: statistics built from 30-reading histograms fluctuate
        # that much without the placement being meaningfully better, and
        # re-disseminating resets every node's chunk-collection progress.
        return old_cost <= new_cost * 1.25 + 1e-9

    # ------------------------------------------------------------------
    # Query planning (Section 5.5)
    # ------------------------------------------------------------------
    def _indices_active_during(
        self, t_lo: float, t_hi: float, attr: int = 0
    ) -> List[StorageIndex]:
        """All of ``attr``'s indices whose activity window may overlap
        [t_lo, t_hi].

        An index is active from its creation until the *next* index is
        created — but nodes lag (lost chunks), so the basestation also
        keeps any index some node reported using in the window
        (``sids_in_use``).
        """
        history = self.index_histories[attr]
        reported = self.stats.sids_in_use(t_lo, t_hi, attr)
        active: List[StorageIndex] = []
        for position, (created_at, index) in enumerate(history):
            next_created = (
                history[position + 1][0]
                if position + 1 < len(history)
                else float("inf")
            )
            by_time = created_at <= t_hi and next_created >= t_lo
            if by_time or index.sid in reported:
                active.append(index)
        return active

    def plan_query(self, query: Query) -> Set[int]:
        """The set of nodes that may hold matching tuples, consulting the
        queried attribute's index stream."""
        if query.node_list is not None:
            return set(query.node_list)
        attr = query.attr
        domain = self.config.domain_of(attr)
        t_lo, t_hi = query.time_range
        v_range = query.value_range or (domain.lo, domain.hi)
        targets: Set[int] = set()
        local_mode = False
        for index in self._indices_active_during(t_lo, t_hi, attr):
            owners = index.owners_for_range(*v_range)
            if STORE_LOCAL in owners:
                local_mode = True
                owners = owners - {STORE_LOCAL}
            targets |= owners
        reported = self.stats.sids_in_use(t_lo, t_hi, attr)
        if -1 in reported or local_mode or not self.index_histories[attr]:
            # Some nodes were storing locally: add every node whose recent
            # value range could overlap the query.
            targets |= self.stats.nodes_possibly_storing_locally(
                query.value_range, t_lo, t_hi, attr
            )
        # Data that fell back to the root is found by the free local scan.
        targets.discard(self.node_id)
        return targets

    # ------------------------------------------------------------------
    # Query issue / reply assembly
    # ------------------------------------------------------------------
    def validate_query(self, query: Query) -> None:
        """Check an externally constructed query against this station's
        configuration, raising ``ValueError`` on the first problem.

        Malformed queries error instead of silently returning nothing:
        the attribute must be registered, a value range must sit inside
        that attribute's configured domain, and a node list may only
        name nodes in the deployed population. Every query entering
        :meth:`issue_query` passes through here, so externally supplied
        queries (the service facade's path) get the same validation as
        the internal generator's.
        """
        domain = self.config.domain_of(query.attr)
        if query.value_range is not None:
            lo, hi = query.value_range
            if lo not in domain or hi not in domain:
                raise ValueError(
                    f"query {query.query_id}: value range [{lo}, {hi}] outside "
                    f"attribute {query.attr}'s domain [{domain.lo}, {domain.hi}]"
                )
        if query.node_list is not None:
            unknown = {n for n in query.node_list if not 0 <= n < self.config.n_nodes}
            if unknown:
                raise ValueError(
                    f"query {query.query_id}: node list names unknown nodes "
                    f"{sorted(unknown)}; the population is 0..{self.config.n_nodes - 1}"
                )

    def issue_query(self, query: Query) -> QueryResult:
        now = self.sim.now
        self.validate_query(query)
        self.stats.record_query(query.value_range, now, attr=query.attr)
        targets = self.plan_query(query)
        result = QueryResult(query=query, nodes_targeted=set(targets))
        # Free local scan: rule-4 fallback data and anything the root owns.
        local = self.flash.scan(
            time_range=query.time_range,
            value_range=query.value_range,
            attr=query.attr,
        )
        if query.node_list is not None:
            local = [r for r in local if r.origin in query.node_list]
        result.add_readings([(r.value, r.timestamp, r.origin) for r in local])
        result.local_readings = len(local)

        if not targets:
            result.answered_locally = True
            result.closed = True
            self.query_log.append(result)
            return result

        message = QueryMessage(
            query_id=query.query_id,
            bitmap=frozenset(targets),
            time_range=query.time_range,
            value_range=query.value_range,
            issued_at=now,
            node_filter=query.node_list,
            bitmap_bytes=self.config.query_bitmap_bytes,
            attr=query.attr,
        )
        self._open_queries[query.query_id] = result
        if self.tracker is not None:
            self.tracker.query_issued(query.query_id, now, nodes_targeted=len(targets))
        # Mark our own query as heard so a neighbor's rebroadcast doesn't
        # make us treat it as new, then gossip it out (initial broadcast
        # plus the modified-Trickle repeats all nodes use).
        self._queries_heard[query.query_id] = 1
        self.broadcast(FrameKind.QUERY, message)
        self._start_query_gossip(message)
        self.sim.schedule(
            self.config.query_reply_window, self._close_query, query.query_id
        )
        return result

    def _ingest_reply(self, frame: Frame) -> None:
        reply: ReplyMessage = frame.payload
        self._accept_reply(reply, from_network=True)

    def _ingest_reply_local(self, reply: ReplyMessage) -> None:
        self._accept_reply(reply, from_network=False)

    def _accept_reply(self, reply: ReplyMessage, from_network: bool) -> None:
        result = self._open_queries.get(reply.query_id)
        if result is None:
            return  # reply window already closed
        result.nodes_replied.add(reply.origin)
        result.add_readings(reply.readings)
        if from_network and self.tracker is not None:
            self.tracker.query_reply(reply.query_id, len(reply.readings))

    def _close_query(self, query_id: int) -> None:
        result = self._open_queries.pop(query_id, None)
        if result is not None:
            result.closed = True
            self.query_log.append(result)

    # ------------------------------------------------------------------
    # Summary-based answers (free of network cost)
    # ------------------------------------------------------------------
    def answer_max(self, since: float = 0.0, attr: int = 0) -> Optional[int]:
        """MAX(attr) straight from summaries (Section 5.5 optimization)."""
        return self.stats.max_value_seen(since, attr)

    def answer_min(self, since: float = 0.0, attr: int = 0) -> Optional[int]:
        return self.stats.min_value_seen(since, attr)
