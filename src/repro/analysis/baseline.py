"""Finding baselines: adopt the checker on a dirty tree without a flag day.

A baseline file records currently-accepted findings; ``--baseline FILE``
filters them out of the report so only *new* violations fail CI.
Baselines match on ``(rule, path, message)`` — line numbers drift with
every unrelated edit and would make baselines churn constantly.

The repo's own tree is kept clean (the CI gate runs baseline-less), so
baselines exist for downstream forks and for staging genuinely hard
migrations, not as a parking lot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_baseline(path: Path) -> List[Finding]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a v{BASELINE_VERSION} analysis baseline"
        )
    out: List[Finding] = []
    for entry in data.get("findings", []):
        out.append(
            Finding(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                line=int(entry.get("line", 0)),
                message=str(entry["message"]),
            )
        )
    return out


def filter_baselined(
    findings: Sequence[Finding], baseline: Sequence[Finding]
) -> List[Finding]:
    """Findings not covered by the baseline (new violations)."""
    known: Set[Tuple[str, str, str]] = {f.key() for f in baseline}
    return [f for f in findings if f.key() not in known]
