"""Determinism rules: seeded RNG streams only, no wall clock, no set-order
dependence in simulated paths.

Every campaign guarantee the repo ships — byte-identical replays,
``--jobs 1`` ≡ ``--jobs 4``, the persistent result cache — rests on
trials being pure functions of their spec. These rules fail CI on the
three ways that purity historically almost broke: the process-global
RNG, wall-clock reads inside simulated time, and iteration order of set
displays.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from repro.analysis.core import FileContext, Finding, Rule, dotted_name, import_aliases

#: Directories whose code runs inside a simulated trial and must be a
#: pure function of the spec'd seed.
DETERMINISTIC_SCOPE: Tuple[str, ...] = (
    "src/repro/sim",
    "src/repro/core",
    "src/repro/baselines",
    "src/repro/workloads",
)

#: Wall-clock scope: the deterministic scope minus workloads (which never
#: read clocks) plus the serving layer's in-simulator halves and the trial
#: runner (whose wall-clock *capture* is the canonical pragma'd case).
WALL_CLOCK_SCOPE: Tuple[str, ...] = (
    "src/repro/sim",
    "src/repro/core",
    "src/repro/baselines",
    "src/repro/service/gateway.py",
    "src/repro/service/shard.py",
    "src/repro/experiments/runner.py",
)

#: Dotted names that read the host clock. Simulated code asks the kernel
#: (``sim.now``) for time; these leak real time into trial trajectories.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class GlobalRandomRule(Rule):
    """DET01 — the process-global RNG (and unseeded ``random.Random()``)
    never appears in deterministic code.

    ``random.random()``, ``random.shuffle()`` etc. share one process-wide
    stream: any other consumer (a library, a second trial in the same
    worker) perturbs the sequence and the trial stops being a function of
    its seed. ``random.Random()`` without a seed argument draws entropy
    from the OS. Deterministic code takes an injected ``random.Random``
    or a :mod:`repro.sim.rngstream` stream instead.
    """

    rule_id = "DET01"
    description = (
        "no process-global random.* calls or unseeded random.Random() in "
        "deterministic code"
    )
    scope = DETERMINISTIC_SCOPE

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func, aliases)
            if dotted is None:
                continue
            if dotted in ("random.Random", "random.SystemRandom"):
                if dotted == "random.SystemRandom" or self._unseeded(node):
                    yield ctx.finding(
                        self.rule_id,
                        node.lineno,
                        f"{dotted}() without an explicit seed draws OS "
                        "entropy; pass a seed derived from the spec",
                    )
            elif dotted.startswith("random.") and dotted.count(".") == 1:
                yield ctx.finding(
                    self.rule_id,
                    node.lineno,
                    f"{dotted}() uses the process-global RNG; inject a "
                    "seeded random.Random or an rngstream stream",
                )

    @staticmethod
    def _unseeded(call: ast.Call) -> bool:
        if call.args:
            return False
        return not any(kw.arg in (None, "x", "seed") for kw in call.keywords)


class WallClockRule(Rule):
    """DET02 — no wall-clock reads where time is simulated.

    Inside a trial, "now" is :attr:`Simulator.now`; a host-clock read
    either corrupts the trajectory (if used) or invites it (if kept
    around). The one legitimate use — the runner metering how long a
    trial took to *execute* — carries an explicit allow pragma.
    """

    rule_id = "DET02"
    description = "no wall-clock reads (time.*, datetime.now) in simulated paths"
    scope = WALL_CLOCK_SCOPE

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func, aliases)
            if dotted in WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self.rule_id,
                    node.lineno,
                    f"{dotted}() reads the host clock inside a simulated "
                    "path; use sim.now (or pragma a deliberate wall-clock "
                    "capture)",
                )


class SetIterationRule(Rule):
    """DET03 — no direct iteration over set displays in simulated paths.

    Set iteration order is salted per process on str/bytes members and
    insertion-history-dependent for ints; a ``for`` loop (or
    comprehension) over a set literal, set comprehension or ``set()``
    call can reorder events between runs. Sort it, or use a tuple.
    """

    rule_id = "DET03"
    description = "no iteration over set literals/comprehensions/set() calls"
    scope = DETERMINISTIC_SCOPE

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters: Iterable[ast.expr]
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = (node.iter,)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters = (gen.iter for gen in node.generators)
            else:
                continue
            for it in iters:
                if self._is_set_display(it):
                    yield ctx.finding(
                        self.rule_id,
                        it.lineno,
                        "iteration over a set display has no deterministic "
                        "order; iterate a sorted() view or a tuple instead",
                    )

    @staticmethod
    def _is_set_display(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )
