"""BND01 — declarative import boundaries between packages.

A boundary says: outside code may import only these names, and only from
these submodules; these internal type names must not appear at all (not
even via attribute access). The first boundary is ``repro.service`` —
the rule generalizes the ad-hoc AST walk that used to live in
``tests/unit/test_api_boundary.py`` — and a new boundary (e.g. around
``repro.experiments`` internals) is one :class:`BoundaryConfig` block
away.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Optional, Sequence, Tuple

from repro.analysis.core import FileContext, Finding, Rule


@dataclass(frozen=True)
class BoundaryConfig:
    """One package's public surface, declaratively."""

    #: dotted package the boundary protects (``repro.service``).
    package: str
    #: the only names importable from the package (or its public
    #: submodules) by outside code.
    public_names: FrozenSet[str]
    #: submodules outside code may import *from*; everything else is
    #: internal plumbing.
    public_submodules: FrozenSet[str]
    #: internal type names that must not be referenced outside the
    #: package at all — belt and braces against attribute-access leaks.
    internal_names: FrozenSet[str] = field(default_factory=frozenset)

    @property
    def package_dir(self) -> str:
        """Repo-relative directory of the package (its own files are
        exempt — the boundary binds outsiders only)."""
        return "src/" + self.package.replace(".", "/")


#: The serving API boundary (PR 8): the typed request/response vocabulary
#: of ``repro.service.api`` plus the supported entry points. Internal
#: plumbing — tickets, tenant services, caches, frame structs — stays in.
SERVICE_BOUNDARY = BoundaryConfig(
    package="repro.service",
    public_names=frozenset(
        {
            # typed API (repro.service.api)
            "PROTOCOL_VERSION",
            "QueryRequest",
            "QueryAnswer",
            "ServiceError",
            "ServiceStats",
            "ServiceFault",
            "ShedError",
            "MalformedRequestError",
            "ProtocolVersionError",
            "ProtocolError",
            "ServiceUnavailableError",
            "ShardRestartingError",
            "aggregate_shard_stats",
            # entry points
            "ScoopClient",
            "AsyncScoopClient",
            "ScoopServer",
            "serve_framed",
            "QueryGateway",
            "ShardedGateway",
            "BackoffPolicy",
            "serve_gateway",
            "ServiceLimits",
            "Deployment",
            # load drivers
            "build_arrivals",
            "drive_load",
            "drive_socket_load",
            "build_client_program",
            "answers_digest",
        }
    ),
    public_submodules=frozenset(
        {
            "repro.service",
            "repro.service.api",
            "repro.service.client",
            "repro.service.deployment",
            "repro.service.loadtest",
            "repro.service.server",
            "repro.service.shard",
        }
    ),
    internal_names=frozenset({"ServiceTicket", "TenantService", "AnswerCache"}),
)

#: Every boundary the checker enforces. Adding a package boundary means
#: appending a config here (and nothing else).
BOUNDARIES: Tuple[BoundaryConfig, ...] = (SERVICE_BOUNDARY,)


class ImportBoundaryRule(Rule):
    """BND01 — only a boundary's public names cross it.

    Applies to every scanned file outside the protected package (tests
    are not scanned by the default CLI invocation: they white-box
    internals on purpose).
    """

    rule_id = "BND01"
    description = "package-internal names never cross a declared API boundary"
    scope = ()  # every scanned file, minus the package's own

    def __init__(
        self,
        config: BoundaryConfig = SERVICE_BOUNDARY,
        scope: Optional[Sequence[str]] = None,
    ):
        super().__init__(scope)
        self.config = config

    def applies_to(self, rel: str) -> bool:
        if rel == self.config.package_dir or rel.startswith(
            self.config.package_dir + "/"
        ):
            return False
        return super().applies_to(rel)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        cfg = self.config
        prefix = cfg.package
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _touches(alias.name, prefix):
                        yield ctx.finding(
                            self.rule_id,
                            node.lineno,
                            f"whole-module import of {alias.name!r}: attribute "
                            "access is unchecked; import the public names "
                            f"from {prefix!r} instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                if not _touches(module, prefix):
                    continue
                if module not in cfg.public_submodules:
                    yield ctx.finding(
                        self.rule_id,
                        node.lineno,
                        f"import from internal module {module!r}; the public "
                        f"surface is {sorted(cfg.public_submodules)}",
                    )
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        yield ctx.finding(
                            self.rule_id,
                            node.lineno,
                            f"star import from {module!r} defeats the "
                            "boundary check; import the public names",
                        )
                    elif alias.name not in cfg.public_names:
                        yield ctx.finding(
                            self.rule_id,
                            node.lineno,
                            f"{alias.name!r} is not part of the public "
                            f"{prefix} API",
                        )
        yield from self._internal_name_scan(ctx)

    def _internal_name_scan(self, ctx: FileContext) -> Iterator[Finding]:
        forbidden = self.config.internal_names
        if not forbidden:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) and node.id in forbidden:
                yield ctx.finding(
                    self.rule_id,
                    node.lineno,
                    f"internal type {node.id!r} referenced outside "
                    f"{self.config.package}",
                )
            elif isinstance(node, ast.Attribute) and node.attr in forbidden:
                yield ctx.finding(
                    self.rule_id,
                    node.lineno,
                    f"internal type {node.attr!r} reached via attribute "
                    f"access outside {self.config.package}",
                )


def _touches(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")
