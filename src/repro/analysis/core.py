"""Framework of the repo-specific invariant checker.

The checker is a plugin-based AST lint pass: a :class:`Rule` inspects one
parsed file at a time (or, for project rules, the whole tree at once) and
yields :class:`Finding` records — rule id, repo-relative path, line,
message. The engine (:func:`run_analysis`) walks the requested paths,
applies every rule whose scope covers the file, and filters findings
through inline suppression pragmas:

    some_call()  # repro: allow[DET02] reason why this one is fine

A pragma only suppresses when it names the finding's rule id *and*
carries a non-empty reason — a bare ``allow[DET02]`` is ignored, so the
finding stays red until the author writes down why. Pragmas work on the
finding's own line or on a comment line directly above it.

Rules are deliberately dumb AST walks, not data-flow analyses: every
invariant here (seeded RNG streams, no wall clock in simulated paths,
``__slots__`` on hot state, schema-version discipline, the service API
boundary) is checkable from syntax alone, which keeps the checker fast
enough to gate CI and simple enough to trust.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Repository root, derived from this package's location in the source
#: tree (``src/repro/analysis`` -> three levels up).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Inline suppression: ``# repro: allow[RULE-ID] reason``. The reason is
#: mandatory — the capture must be non-empty for the pragma to count.
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_\-, ]+)\]\s*(?P<reason>\S.*)?"
)

#: Rule id reserved for files the checker cannot parse.
PARSE_RULE_ID = "PARSE"


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at a specific source location."""

    path: str  #: repo-relative posix path
    line: int  #: 1-indexed line number
    rule: str  #: rule id (``DET01``, ``BND01``, ...)
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers drift with unrelated edits, so
        baselines match on (rule, path, message) only."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class FileContext:
    """One file under analysis: source text, parsed AST, pragma table."""

    def __init__(self, path: Path, root: Path = REPO_ROOT):
        self.path = path
        self.root = root
        resolved = path.resolve()
        try:
            self.rel = resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            self.rel = resolved.as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self._tree: Optional[ast.Module] = None
        self._pragmas: Optional[Dict[int, Set[str]]] = None

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=str(self.path))
        return self._tree

    def finding(self, rule: str, line: int, message: str) -> Finding:
        return Finding(path=self.rel, line=line, rule=rule, message=message)

    @property
    def pragmas(self) -> Dict[int, Set[str]]:
        """line number -> rule ids allowed there (reason-carrying pragmas
        only)."""
        if self._pragmas is None:
            table: Dict[int, Set[str]] = {}
            for lineno, text in enumerate(self.lines, start=1):
                match = PRAGMA_RE.search(text)
                if match is None or not match.group("reason"):
                    continue
                rules = {
                    part.strip()
                    for part in match.group("rules").split(",")
                    if part.strip()
                }
                if rules:
                    table[lineno] = rules
            self._pragmas = table
        return self._pragmas

    def suppressed(self, finding: Finding) -> bool:
        """True when a pragma on the finding's line (or the line directly
        above it) allows the finding's rule."""
        for lineno in (finding.line, finding.line - 1):
            if finding.rule in self.pragmas.get(lineno, set()):
                return True
        return False


class Rule:
    """Base of every per-file rule.

    Subclasses set ``rule_id``/``description``/``scope`` and implement
    :meth:`check`. ``scope`` is a tuple of repo-relative path prefixes
    (a directory, or an exact ``.py`` file); empty scope means every
    scanned file. Constructors accept a ``scope`` override so tests can
    point a rule at fixture trees.
    """

    rule_id: str = "RULE"
    description: str = ""
    scope: Tuple[str, ...] = ()

    def __init__(self, scope: Optional[Sequence[str]] = None):
        if scope is not None:
            self.scope = tuple(scope)

    def applies_to(self, rel: str) -> bool:
        if not self.scope:
            return True
        for prefix in self.scope:
            clean = prefix.rstrip("/")
            if rel == clean or rel.startswith(clean + "/"):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule:
    """Base of rules that inspect the whole tree at once (not one file).

    Project rules anchor their findings to specific files, but their
    input is cross-file state (e.g. a committed schema fingerprint), so
    the engine runs them exactly once per analysis instead of per file.
    """

    rule_id: str = "RULE"
    description: str = ""

    def check_project(self, root: Path) -> Iterable[Finding]:
        raise NotImplementedError


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files,
    skipping ``__pycache__`` litter."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            for found in path.rglob("*.py"):
                if "__pycache__" not in found.parts:
                    out.add(found)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def run_analysis(
    paths: Sequence[Path],
    rules: Sequence[object],
    root: Path = REPO_ROOT,
) -> List[Finding]:
    """Run every rule over every scanned file; return surviving findings.

    Per-file rules run on files their scope covers; project rules run
    once against ``root``. Pragma suppression applies to both (a project
    finding is suppressed by a pragma at its anchor line, when the anchor
    file is readable).
    """
    file_rules = [r for r in rules if isinstance(r, Rule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    findings: List[Finding] = []
    contexts: Dict[str, FileContext] = {}
    for path in iter_python_files(paths):
        ctx = FileContext(path, root=root)
        contexts[ctx.rel] = ctx
        applicable = [r for r in file_rules if r.applies_to(ctx.rel)]
        if not applicable:
            continue
        try:
            ctx.tree
        except SyntaxError as exc:
            findings.append(
                ctx.finding(
                    PARSE_RULE_ID,
                    exc.lineno or 1,
                    f"file does not parse: {exc.msg}",
                )
            )
            continue
        for rule in applicable:
            for finding in rule.check(ctx):
                if not ctx.suppressed(finding):
                    findings.append(finding)

    for project_rule in project_rules:
        for finding in project_rule.check_project(root):
            ctx = contexts.get(finding.path)
            if ctx is None:
                anchor = root / finding.path
                if anchor.is_file():
                    ctx = FileContext(anchor, root=root)
                    contexts[finding.path] = ctx
            if ctx is not None and ctx.suppressed(finding):
                continue
            findings.append(finding)

    return sorted(findings)


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted things they import.

    ``import random`` -> ``{"random": "random"}``; ``import a.b as c`` ->
    ``{"c": "a.b"}``; ``from time import perf_counter as pc`` ->
    ``{"pc": "time.perf_counter"}``. Relative imports are skipped (they
    cannot name a stdlib module).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain rooted at an imported name into its
    dotted form (``datetime.now`` under ``from datetime import datetime``
    -> ``"datetime.datetime.now"``). None when the root is not a tracked
    import (locals, ``self.rng`` etc. resolve to nothing on purpose)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))
