"""SCHEMA01 — schema changes ship with a version bump, mechanically.

Two version counters guard two serialized surfaces:

* ``SPEC_SCHEMA_VERSION`` (``repro.experiments.runner``) — the trial
  spec/result serialization: :class:`ExperimentSpec` field names *and
  defaults* (defaults are part of the cache key), plus the field lists
  of :class:`ExperimentResult` and :class:`TrialMetrics`;
* ``PROTOCOL_VERSION`` (``repro.service.api``) — the service wire
  vocabulary: the field lists of the four frozen wire dataclasses.

A fingerprint of both surfaces is committed next to this module
(``schema_fingerprint.json``). The rule recomputes it from the AST — no
imports, pure static analysis — and fires when the surface changed but
its version counter did not, turning the "schema v6→v7" discipline from
CHANGES.md into a machine check. After a legitimate bump, refresh the
committed fingerprint with ``python -m repro.analysis
--write-schema-fingerprint`` (the rule demands this too, so the
fingerprint can never silently rot).
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.core import Finding, ProjectRule

#: Committed fingerprint of both schema surfaces.
FINGERPRINT_PATH = Path(__file__).with_name("schema_fingerprint.json")

#: (repo-relative file, version constant, classes whose *names+defaults*
#: are fingerprinted, classes whose *field lists* are fingerprinted).
SPEC_FILE = "src/repro/experiments/runner.py"
SPEC_VERSION_NAME = "SPEC_SCHEMA_VERSION"
METRICS_FILE = "src/repro/sim/metrics.py"
WIRE_FILE = "src/repro/service/api.py"
WIRE_VERSION_NAME = "PROTOCOL_VERSION"
WIRE_CLASSES = ("QueryRequest", "QueryAnswer", "ServiceError", "ServiceStats")


def _parse(root: Path, rel: str) -> ast.Module:
    return ast.parse((root / rel).read_text(encoding="utf-8"), filename=rel)


def _int_constant(tree: ast.Module, name: str, rel: str) -> Tuple[int, int]:
    """Value and line of a module-level ``NAME = <int>`` assignment."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
        ):
            return node.value.value, node.lineno
    raise LookupError(f"{rel} has no integer constant {name}")


def _class_def(tree: ast.Module, name: str, rel: str) -> ast.ClassDef:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    raise LookupError(f"{rel} defines no class {name}")


def _fields(cls: ast.ClassDef, with_defaults: bool) -> List[Dict[str, object]]:
    """Dataclass fields as the AST sees them: annotated assignments in
    declaration order. ``with_defaults`` additionally captures each
    default's source text (defaults feed the cache key, so changing one
    changes the schema even when no field is added)."""
    out: List[Dict[str, object]] = []
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        entry: Dict[str, object] = {"name": stmt.target.id}
        if with_defaults:
            entry["default"] = (
                None if stmt.value is None else ast.unparse(stmt.value)
            )
        out.append(entry)
    return out


def compute_fingerprint(root: Path) -> Dict[str, object]:
    """The live schema fingerprint, computed from source ASTs only."""
    runner = _parse(root, SPEC_FILE)
    metrics = _parse(root, METRICS_FILE)
    api = _parse(root, WIRE_FILE)
    spec_version, _ = _int_constant(runner, SPEC_VERSION_NAME, SPEC_FILE)
    wire_version, _ = _int_constant(api, WIRE_VERSION_NAME, WIRE_FILE)
    return {
        "spec_schema_version": spec_version,
        "spec": {
            "ExperimentSpec": _fields(
                _class_def(runner, "ExperimentSpec", SPEC_FILE), True
            ),
            "ExperimentResult": _fields(
                _class_def(runner, "ExperimentResult", SPEC_FILE), False
            ),
            "TrialMetrics": _fields(
                _class_def(metrics, "TrialMetrics", METRICS_FILE), False
            ),
        },
        "protocol_version": wire_version,
        "wire": {
            name: _fields(_class_def(api, name, WIRE_FILE), False)
            for name in WIRE_CLASSES
        },
    }


def write_fingerprint(
    root: Path, path: Optional[Path] = None
) -> Dict[str, object]:
    """Recompute and commit the fingerprint; returns what was written."""
    fingerprint = compute_fingerprint(root)
    target = FINGERPRINT_PATH if path is None else path
    target.write_text(
        json.dumps(fingerprint, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return fingerprint


class SchemaVersionRule(ProjectRule):
    """SCHEMA01 — fingerprinted schema surfaces only change alongside
    their version counter (and the committed fingerprint)."""

    rule_id = "SCHEMA01"
    description = (
        "ExperimentSpec/TrialMetrics/wire-dataclass changes require a "
        "SPEC_SCHEMA_VERSION / PROTOCOL_VERSION bump"
    )

    def __init__(self, fingerprint_path: Optional[Path] = None):
        self.fingerprint_path = (
            FINGERPRINT_PATH if fingerprint_path is None else fingerprint_path
        )

    def check_project(self, root: Path) -> Iterator[Finding]:
        try:
            current = compute_fingerprint(root)
        except (OSError, LookupError, SyntaxError) as exc:
            yield Finding(
                path=SPEC_FILE,
                line=1,
                rule=self.rule_id,
                message=f"cannot compute schema fingerprint: {exc}",
            )
            return
        if not self.fingerprint_path.is_file():
            yield Finding(
                path=SPEC_FILE,
                line=1,
                rule=self.rule_id,
                message=(
                    "no committed schema fingerprint; run `python -m "
                    "repro.analysis --write-schema-fingerprint`"
                ),
            )
            return
        committed = json.loads(self.fingerprint_path.read_text(encoding="utf-8"))

        runner = _parse(root, SPEC_FILE)
        api = _parse(root, WIRE_FILE)
        _, spec_line = _int_constant(runner, SPEC_VERSION_NAME, SPEC_FILE)
        _, wire_line = _int_constant(api, WIRE_VERSION_NAME, WIRE_FILE)

        yield from self._check_surface(
            surface="spec",
            version_key="spec_schema_version",
            version_name=SPEC_VERSION_NAME,
            anchor=(SPEC_FILE, spec_line),
            current=current,
            committed=committed,
        )
        yield from self._check_surface(
            surface="wire",
            version_key="protocol_version",
            version_name=WIRE_VERSION_NAME,
            anchor=(WIRE_FILE, wire_line),
            current=current,
            committed=committed,
        )

    def _check_surface(
        self,
        surface: str,
        version_key: str,
        version_name: str,
        anchor: Tuple[str, int],
        current: Dict[str, object],
        committed: Dict[str, object],
    ) -> Iterator[Finding]:
        path, line = anchor
        fields_changed = current.get(surface) != committed.get(surface)
        version_changed = current.get(version_key) != committed.get(version_key)
        if fields_changed and not version_changed:
            changed = _changed_classes(
                committed.get(surface) or {}, current.get(surface) or {}
            )
            yield Finding(
                path=path,
                line=line,
                rule=self.rule_id,
                message=(
                    f"schema surface changed ({', '.join(changed)}) without "
                    f"a {version_name} bump; bump it, then refresh the "
                    "fingerprint with --write-schema-fingerprint"
                ),
            )
        elif fields_changed or version_changed:
            yield Finding(
                path=path,
                line=line,
                rule=self.rule_id,
                message=(
                    f"{version_name} (or its schema surface) moved but the "
                    "committed fingerprint is stale; run `python -m "
                    "repro.analysis --write-schema-fingerprint` in the same "
                    "tree"
                ),
            )


def _changed_classes(
    old: Dict[str, object], new: Dict[str, object]
) -> List[str]:
    names = sorted(set(old) | set(new))
    return [n for n in names if old.get(n) != new.get(n)] or ["<unknown>"]
