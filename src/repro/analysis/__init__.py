"""repro.analysis — the repo's own static invariant checker.

A plugin-based AST lint framework plus the repo-specific rule family
that keeps the determinism, performance and API-boundary disciplines
mechanical (see DESIGN.md "Static analysis" for the rule table):

========  ============================================================
DET01     no process-global ``random.*`` / unseeded ``random.Random()``
DET02     no wall-clock reads in simulated paths
DET03     no iteration over set displays in deterministic code
PERF01    hot-module classes declare ``__slots__``
BND01     declarative package API boundaries (``repro.service``)
SCHEMA01  schema changes ship with their version bump + fingerprint
========  ============================================================

Run it: ``python -m repro.analysis [paths] [--format text|github]
[--baseline FILE] [--write-baseline]``. Suppress a deliberate finding
inline with ``# repro: allow[RULE-ID] reason`` (reason mandatory).
"""

from repro.analysis.baseline import (
    filter_baselined,
    load_baseline,
    save_baseline,
)
from repro.analysis.boundary import (
    BOUNDARIES,
    SERVICE_BOUNDARY,
    BoundaryConfig,
    ImportBoundaryRule,
)
from repro.analysis.cli import DEFAULT_PATHS, default_rules, main
from repro.analysis.core import (
    PRAGMA_RE,
    REPO_ROOT,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    iter_python_files,
    run_analysis,
)
from repro.analysis.determinism import (
    GlobalRandomRule,
    SetIterationRule,
    WallClockRule,
)
from repro.analysis.perf import HOT_MODULES, SlotsRule
from repro.analysis.schema import (
    FINGERPRINT_PATH,
    SchemaVersionRule,
    compute_fingerprint,
    write_fingerprint,
)

__all__ = [
    "BOUNDARIES",
    "BoundaryConfig",
    "DEFAULT_PATHS",
    "FINGERPRINT_PATH",
    "FileContext",
    "Finding",
    "GlobalRandomRule",
    "HOT_MODULES",
    "ImportBoundaryRule",
    "PRAGMA_RE",
    "ProjectRule",
    "REPO_ROOT",
    "Rule",
    "SERVICE_BOUNDARY",
    "SchemaVersionRule",
    "SetIterationRule",
    "SlotsRule",
    "WallClockRule",
    "compute_fingerprint",
    "default_rules",
    "filter_baselined",
    "iter_python_files",
    "load_baseline",
    "main",
    "run_analysis",
    "save_baseline",
    "write_fingerprint",
]
