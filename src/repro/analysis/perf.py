"""Performance rules: hot-path state stays slotted.

PR 6 bought a ~40% kernel speedup partly by moving per-event and
per-frame state into ``__slots__`` records; a later refactor that quietly
reintroduces ``__dict__``-backed attributes on those classes would erase
it without failing a single test. PERF01 makes the discipline a CI gate
for the designated hot modules.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional, Sequence, Tuple

from repro.analysis.core import FileContext, Finding, Rule

#: Modules whose classes sit on the per-event / per-frame hot path.
HOT_MODULES: Tuple[str, ...] = (
    "src/repro/sim/kernel.py",
    "src/repro/sim/radio.py",
    "src/repro/sim/packets.py",
    "src/repro/sim/mote.py",
    "src/repro/sim/linkest.py",
    "src/repro/sim/trickle.py",
    "src/repro/sim/routing_tree.py",
    "src/repro/core/node.py",
)

#: Base-class names that exempt a class: protocols and enums have no
#: per-instance state worth slotting, exceptions are cold by definition.
_EXEMPT_BASES = frozenset(
    {
        "Protocol",
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "Exception",
        "BaseException",
        "NamedTuple",
    }
)


class SlotsRule(Rule):
    """PERF01 — every class in a designated hot module declares
    ``__slots__`` (directly or via ``@dataclass(slots=True)``).

    Protocols, enums and exception types are exempt; anything else needs
    slots, an entry in the allow list, or an inline
    ``# repro: allow[PERF01] reason`` on its ``class`` line.
    """

    rule_id = "PERF01"
    description = "classes in hot modules declare __slots__"
    scope = HOT_MODULES

    def __init__(
        self,
        scope: Optional[Sequence[str]] = None,
        allow: FrozenSet[str] = frozenset(),
    ):
        super().__init__(scope)
        self.allow = frozenset(allow)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in self.allow:
                continue
            if self._is_exempt(node) or self._declares_slots(node):
                continue
            yield ctx.finding(
                self.rule_id,
                node.lineno,
                f"class {node.name} in a hot module has no __slots__; "
                "declare them (or @dataclass(slots=True)) to keep "
                "per-instance state off __dict__",
            )

    @staticmethod
    def _is_exempt(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = _tail_name(base)
            if name is None:
                continue
            if name in _EXEMPT_BASES or name.endswith(("Error", "Exception")):
                return True
        return False

    @staticmethod
    def _declares_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            if _tail_name(decorator.func) != "dataclass":
                continue
            for kw in decorator.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
        return False


def _tail_name(node: ast.expr) -> Optional[str]:
    """Last segment of a name/attribute chain (``enum.IntEnum`` ->
    ``IntEnum``); None for subscripted or computed bases' roots."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):
        # Generic[C], Protocol[...] — classify by the subscripted name.
        return _tail_name(node.value)
    return None
