"""``python -m repro.analysis`` — the invariant checker CLI.

Exit status: 0 when no (non-baselined) findings, 1 when findings remain,
2 on usage errors. ``--format github`` emits workflow error annotations
so findings land inline on the PR diff.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    filter_baselined,
    load_baseline,
    save_baseline,
)
from repro.analysis.boundary import BOUNDARIES, ImportBoundaryRule
from repro.analysis.core import REPO_ROOT, Finding, run_analysis
from repro.analysis.determinism import (
    GlobalRandomRule,
    SetIterationRule,
    WallClockRule,
)
from repro.analysis.perf import SlotsRule
from repro.analysis.schema import SchemaVersionRule, write_fingerprint

#: What a bare ``python -m repro.analysis`` checks: the library, the
#: benchmark/example surfaces, and the CI gate scripts. Tests are exempt
#: by default — they white-box internals on purpose.
DEFAULT_PATHS = ("src", "benchmarks", "examples", ".github/scripts")


def default_rules() -> List[object]:
    """The shipped rule set, each config-scoped to where it applies."""
    rules: List[object] = [
        GlobalRandomRule(),
        WallClockRule(),
        SetIterationRule(),
        SlotsRule(),
        SchemaVersionRule(),
    ]
    rules.extend(ImportBoundaryRule(config) for config in BOUNDARIES)
    return rules


def _render(findings: Sequence[Finding], fmt: str) -> str:
    if fmt == "github":
        return "\n".join(
            f"::error file={f.path},line={f.line},title={f.rule}::{f.message}"
            for f in findings
        )
    return "\n".join(f"{f.location}: {f.rule} {f.message}" for f in findings)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static determinism/boundary/perf invariant checker for the "
            "Scoop reproduction."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to check (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="finding output format (github = workflow error annotations)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="baseline file: findings recorded there do not fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--write-schema-fingerprint",
        action="store_true",
        help=(
            "recompute and commit the SCHEMA01 fingerprint (run after a "
            "deliberate schema + version change), then exit"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the shipped rules and their scopes, then exit",
    )
    args = parser.parse_args(argv)

    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")

    if args.write_schema_fingerprint:
        write_fingerprint(REPO_ROOT)
        print("schema fingerprint refreshed")
        return 0

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            scope = getattr(rule, "scope", ()) or ("<all scanned files>",)
            print(f"{rule.rule_id}: {rule.description}")
            for prefix in scope:
                print(f"    {prefix}")
        return 0

    raw_paths = args.paths or list(DEFAULT_PATHS)
    paths: List[Path] = []
    for raw in raw_paths:
        path = Path(raw)
        if not path.is_absolute() and not path.exists():
            # Convenience: resolve the default roots against the repo even
            # when invoked from elsewhere.
            candidate = REPO_ROOT / raw
            if candidate.exists():
                path = candidate
        if not path.exists():
            print(f"error: no such path: {raw}", file=sys.stderr)
            return 2
        paths.append(path)

    findings = run_analysis(paths, rules)

    if args.write_baseline:
        save_baseline(args.baseline, findings)
        print(f"baseline of {len(findings)} finding(s) -> {args.baseline}")
        return 0

    if args.baseline is not None and args.baseline.is_file():
        findings = filter_baselined(findings, load_baseline(args.baseline))

    if findings:
        print(_render(findings, args.format))
        print(
            f"\n{len(findings)} finding(s). Fix them, or suppress a "
            "deliberate one with `# repro: allow[RULE-ID] reason`.",
            file=sys.stderr,
        )
        return 1
    print("analysis clean: no findings")
    return 0
