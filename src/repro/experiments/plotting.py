"""Campaign plots: Figure-3 stacked bars and Figure-4/5 series charts.

Renders chart images straight from a campaign's JSON export
(:mod:`repro.experiments.export`) — no re-simulation, so plotting an old
campaign is free. Two chart kinds cover the paper's figures:

* **breakdown** (Figure 3): one stacked bar per trial label, segments in
  the paper's category order, with a 95%-CI error bar on the total;
* **series** (Figures 4/5): for sweep scenarios whose labels look like
  ``qi=15/scoop/real`` — one line per policy over the swept x value,
  markers with 95%-CI error bars.

Sweep campaigns whose trials carry data-survival metrics (the E14 churn
grid) additionally get a **completeness** series chart: retrieval
completeness vs the swept parameter, aggregated across seeds from the
per-trial survival breakdowns.

The renderer is pure Python emitting SVG text, so it works everywhere
the simulator does. PNG output rasterizes the SVG through ``cairosvg``
when that optional dependency is installed; without it, ``plot`` still
produces the SVGs and says which renders were skipped
(:func:`png_supported`).

Colors follow the entity, never the series' position in a particular
chart: every Figure-3 category and every policy has a fixed palette
slot, so the same policy wears the same hue in every chart. The palette
(a colorblind-validated categorical set) keeps adjacent-pair CVD
distance above the accessibility floor; the low-contrast slots are
relieved by direct value labels on the marks, and ``report`` renders the
same numbers as a table.
"""

from __future__ import annotations

import base64
import math
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from repro.experiments.campaign import sample_stats
from repro.experiments.reporting import CATEGORIES

# ----------------------------------------------------------------------
# Palette (light mode): fixed categorical slots, assigned per entity
# ----------------------------------------------------------------------

#: Categorical palette in validated order (adjacent-pair CVD ΔE ≥ 8).
PALETTE = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

#: Figure-3 message categories → fixed palette slots.
CATEGORY_COLORS: Dict[str, str] = {
    "data": PALETTE[0],
    "summary": PALETTE[1],
    "mapping": PALETTE[2],
    "query/reply": PALETTE[3],
}

#: Storage policies → fixed palette slots (stable across every chart;
#: plug-in policies get the remaining slots in first-seen order).
POLICY_COLORS: Dict[str, str] = {
    "scoop": PALETTE[0],
    "local": PALETTE[1],
    "base": PALETTE[2],
    "hash": PALETTE[3],
}

SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e8e7e3"
FONT = "system-ui, 'Segoe UI', 'Helvetica Neue', sans-serif"

#: Matches sweep labels: ``<param>=<x>/<series...>`` (e.g. ``n=64/scoop``).
_SERIES_LABEL = re.compile(r"^(?P<param>[^=/]+)=(?P<x>[^/]+)/(?P<series>.+)$")


def _entity_color(name: str, table: Dict[str, str], fallback: Dict[str, str]) -> str:
    """The entity's fixed color; unknown entities claim unused slots in
    first-seen order (recorded in ``fallback`` so the assignment is
    stable for the rest of the process)."""
    if name in table:
        return table[name]
    if name not in fallback:
        used = set(table.values()) | set(fallback.values())
        free = [c for c in PALETTE if c not in used]
        fallback[name] = free[0] if free else PALETTE[-1]
    return fallback[name]


_extra_category_colors: Dict[str, str] = {}
_extra_policy_colors: Dict[str, str] = {}


def category_color(category: str) -> str:
    return _entity_color(category, CATEGORY_COLORS, _extra_category_colors)


def policy_color(policy: str) -> str:
    return _entity_color(policy, POLICY_COLORS, _extra_policy_colors)


# ----------------------------------------------------------------------
# Tiny SVG builder
# ----------------------------------------------------------------------


class _Svg:
    """Accumulates SVG elements; pure text, no dependencies."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self.parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>',
        ]

    def rect(self, x, y, w, h, fill, rx: float = 0.0) -> None:
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'rx="{rx:g}" fill="{fill}"/>'
        )

    def line(self, x1, y1, x2, y2, stroke, width: float = 1.0) -> None:
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width:g}"/>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]], stroke) -> None:
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        )

    def circle(self, cx, cy, r, fill) -> None:
        self.parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{r:g}" fill="{fill}" '
            f'stroke="{SURFACE}" stroke-width="2"/>'
        )

    def text(
        self,
        x,
        y,
        content,
        size: int = 12,
        fill: str = TEXT_PRIMARY,
        anchor: str = "start",
        rotate: float = 0.0,
        weight: str = "normal",
    ) -> None:
        transform = (
            f' transform="rotate({rotate:g} {x:.1f} {y:.1f})"' if rotate else ""
        )
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-family="{FONT}" '
            f'font-size="{size}" fill="{fill}" text-anchor="{anchor}" '
            f'font-weight="{weight}"{transform}>{escape(str(content))}</text>'
        )

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"])


def _nice_ticks(top: float, n: int = 5) -> List[float]:
    """~n ticks from 0 to just past ``top``, at 1/2/5 × 10^k steps."""
    if top <= 0:
        return [0.0, 1.0]
    raw = top / n
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 5, 10):
        step = mult * magnitude
        if step * n >= top:
            break
    return [i * step for i in range(int(math.ceil(top / step)) + 1)]


def _fmt(value: float) -> str:
    if value >= 10000:
        return f"{value / 1000:.0f}k"
    if value == int(value):
        return f"{int(value)}"
    return f"{value:g}"


def _legend(svg: _Svg, entries: List[Tuple[str, str]], x: float, y: float) -> None:
    """One legend row of (name, color) swatches starting at (x, y)."""
    for name, color in entries:
        svg.rect(x, y - 9, 12, 12, color, rx=3)
        svg.text(x + 17, y + 1, name, size=12, fill=TEXT_SECONDARY)
        x += 17 + 7 * len(str(name)) + 22


# ----------------------------------------------------------------------
# Chart 1 — Figure-3 stacked bars
# ----------------------------------------------------------------------


def breakdown_svg(doc: Dict[str, object]) -> str:
    """Figure-3-style stacked bars: one bar per trial label, segments in
    category order, a 95%-CI whisker on the total, and the total as a
    direct label above each bar."""
    labels: List[Dict[str, object]] = list(doc.get("labels") or [])
    if not labels:
        raise ValueError(f"export {doc.get('name')!r} has no label aggregates")
    extra = sorted(
        {
            cat
            for entry in labels
            for cat in entry.get("breakdown", {})
            if cat not in CATEGORIES
        }
    )
    categories = [*CATEGORIES, *extra]

    margin_l, margin_r, margin_t, margin_b = 64, 16, 64, 96
    plot_w = max(420, 56 * len(labels))
    plot_h = 300
    svg = _Svg(margin_l + plot_w + margin_r, margin_t + plot_h + margin_b)

    tops = [
        entry["total"]["mean"] + entry["total"].get("ci95", 0.0) for entry in labels
    ]
    ticks = _nice_ticks(max(tops) * 1.08)
    y_max = ticks[-1]

    def y_of(value: float) -> float:
        return margin_t + plot_h - (value / y_max) * plot_h

    svg.text(
        margin_l,
        24,
        f"Campaign {doc.get('name', '?')} — messages by type",
        size=14,
        weight="bold",
    )
    _legend(
        svg,
        [(c, category_color(c)) for c in categories],
        margin_l,
        44,
    )
    for tick in ticks:
        svg.line(margin_l, y_of(tick), margin_l + plot_w, y_of(tick), GRID)
        svg.text(
            margin_l - 8,
            y_of(tick) + 4,
            _fmt(tick),
            size=11,
            fill=TEXT_SECONDARY,
            anchor="end",
        )

    slot = plot_w / len(labels)
    bar_w = min(40.0, slot * 0.62)
    gap = 2.0  # surface gap between stacked segments
    for i, entry in enumerate(labels):
        x = margin_l + slot * i + (slot - bar_w) / 2
        breakdown: Dict[str, Dict[str, float]] = entry.get("breakdown", {})
        stacked = 0.0
        for cat in categories:
            mean = float(breakdown.get(cat, {}).get("mean", 0.0))
            if mean <= 0:
                continue
            y_lo, y_hi = y_of(stacked), y_of(stacked + mean)
            height = max(1.0, y_lo - y_hi - (gap if stacked else 0.0))
            y_top = y_lo - (0.0 if not stacked else gap) - height
            svg.rect(x, y_top, bar_w, height, category_color(cat), rx=2)
            stacked += mean
        total = entry["total"]
        mean, ci = float(total["mean"]), float(total.get("ci95", 0.0))
        if ci > 0:
            # Few-seed CIs can dwarf the mean; whiskers clamp to the
            # plot area rather than spilling past the axes.
            lo, hi = max(0.0, mean - ci), min(y_max, mean + ci)
            cx = x + bar_w / 2
            svg.line(cx, y_of(lo), cx, y_of(hi), TEXT_PRIMARY, 1.5)
            svg.line(cx - 4, y_of(lo), cx + 4, y_of(lo), TEXT_PRIMARY, 1.5)
            svg.line(cx - 4, y_of(hi), cx + 4, y_of(hi), TEXT_PRIMARY, 1.5)
        svg.text(
            x + bar_w / 2,
            y_of(min(y_max, mean + ci)) - 6,
            _fmt(mean),
            size=11,
            fill=TEXT_PRIMARY,
            anchor="middle",
        )
        svg.text(
            x + bar_w / 2,
            margin_t + plot_h + 16,
            entry.get("label", ""),
            size=11,
            fill=TEXT_SECONDARY,
            anchor="end",
            rotate=-30.0,
        )
    svg.line(
        margin_l,
        margin_t + plot_h,
        margin_l + plot_w,
        margin_t + plot_h,
        TEXT_SECONDARY,
    )
    return svg.render()


# ----------------------------------------------------------------------
# Chart 2 — Figure-4/5 series lines
# ----------------------------------------------------------------------


def parse_series(
    doc: Dict[str, object],
    labels: Optional[List[Dict[str, object]]] = None,
) -> Optional[
    Tuple[str, Dict[str, List[Tuple[float, float, float]]], Dict[float, str]]
]:
    """Interpret a sweep campaign's labels as
    ``(param, {series: points}, x_names)``.

    Labels must all look like ``<param>=<x>/<series>`` with one shared
    param; points are ``(x, mean, ci95)`` sorted by x. Categorical
    sweeps (``topo=line/...``) chart x by first appearance, one shared
    index per raw value across all series, and ``x_names`` maps those
    indices back to the raw values for the axis (empty for numeric
    sweeps). Returns ``None`` when the labels don't form a sweep (e.g.
    ``fig3_middle``), in which case only the breakdown chart applies.
    ``labels`` overrides the document's aggregates (used to chart a
    different statistic, e.g. retrieval completeness, over the same
    sweep structure).
    """
    if labels is None:
        labels = list(doc.get("labels") or [])
    series: Dict[str, List[Tuple[float, float, float]]] = {}
    param: Optional[str] = None
    cat_index: Dict[str, int] = {}
    for entry in labels:
        match = _SERIES_LABEL.match(str(entry.get("label", "")))
        if match is None:
            return None
        if param is None:
            param = match.group("param")
        elif param != match.group("param"):
            return None
        raw = match.group("x")
        try:
            x = float(raw)
        except ValueError:
            x = float(cat_index.setdefault(raw, len(cat_index)))
        total = entry.get("total", {})
        series.setdefault(match.group("series"), []).append(
            (x, float(total.get("mean", 0.0)), float(total.get("ci95", 0.0)))
        )
    if param is None or not series:
        return None
    for points in series.values():
        points.sort(key=lambda p: p[0])
    x_names = {float(i): raw for raw, i in cat_index.items()}
    return param, series, x_names


def series_svg(
    doc: Dict[str, object],
    labels: Optional[List[Dict[str, object]]] = None,
    metric: str = "total messages",
) -> str:
    """Figure-4/5-style chart: ``metric`` vs the swept parameter, one
    line per policy with markers and 95%-CI whiskers. By default the
    campaign's total-message aggregates are charted; ``labels``
    substitutes another per-label statistic in the same shape."""
    parsed = parse_series(doc, labels=labels)
    if parsed is None:
        raise ValueError(
            f"export {doc.get('name')!r} is not a sweep campaign "
            "(labels are not 'param=x/series')"
        )
    param, series, x_names = parsed

    margin_l, margin_r, margin_t, margin_b = 64, 110, 64, 48
    plot_w, plot_h = 480, 300
    svg = _Svg(margin_l + plot_w + margin_r, margin_t + plot_h + margin_b)

    xs = sorted({x for pts in series.values() for x, _m, _c in pts})
    tops = [m + c for pts in series.values() for _x, m, c in pts]
    ticks = _nice_ticks(max(tops) * 1.08)
    y_max = ticks[-1]
    x_lo, x_hi = xs[0], xs[-1]
    span = (x_hi - x_lo) or 1.0

    def x_of(x: float) -> float:
        return margin_l + (x - x_lo) / span * plot_w

    def y_of(value: float) -> float:
        return margin_t + plot_h - (value / y_max) * plot_h

    svg.text(
        margin_l,
        24,
        f"Campaign {doc.get('name', '?')} — {metric} vs {param}",
        size=14,
        weight="bold",
    )
    names = sorted(series, key=lambda s: (s.split("/")[0] not in POLICY_COLORS, s))
    prefixes = [name.split("/")[0] for name in names]

    def color_for(name: str) -> str:
        # Color follows the entity: a series whose policy appears once in
        # this chart wears the policy's fixed hue; when one policy fields
        # several series (scaling's scoop/real vs scoop/random), each full
        # series name claims its own stable slot instead.
        prefix = name.split("/")[0]
        if prefixes.count(prefix) == 1 and prefix in POLICY_COLORS:
            return policy_color(prefix)
        return policy_color(name)

    _legend(svg, [(name, color_for(name)) for name in names], margin_l, 44)
    for tick in ticks:
        svg.line(margin_l, y_of(tick), margin_l + plot_w, y_of(tick), GRID)
        svg.text(
            margin_l - 8,
            y_of(tick) + 4,
            _fmt(tick),
            size=11,
            fill=TEXT_SECONDARY,
            anchor="end",
        )
    for x in xs:
        svg.text(
            x_of(x),
            margin_t + plot_h + 18,
            x_names.get(x, _fmt(x)),
            size=11,
            fill=TEXT_SECONDARY,
            anchor="middle",
        )
    svg.line(
        margin_l,
        margin_t + plot_h,
        margin_l + plot_w,
        margin_t + plot_h,
        TEXT_SECONDARY,
    )
    svg.text(
        margin_l + plot_w / 2,
        margin_t + plot_h + 38,
        param,
        size=12,
        fill=TEXT_SECONDARY,
        anchor="middle",
    )

    for name in names:
        color = color_for(name)
        points = series[name]
        svg.polyline([(x_of(x), y_of(m)) for x, m, _c in points], color)
        for x, m, ci in points:
            if ci > 0:
                lo, hi = max(0.0, m - ci), min(y_max, m + ci)
                svg.line(x_of(x), y_of(lo), x_of(x), y_of(hi), color, 1.5)
            svg.circle(x_of(x), y_of(m), 4, color)
        end_x, end_m, _ = points[-1]
        svg.text(x_of(end_x) + 10, y_of(end_m) + 4, name, size=12)
    return svg.render()


# ----------------------------------------------------------------------
# Chart 3 — retrieval completeness under churn (E14)
# ----------------------------------------------------------------------


def completeness_labels(
    doc: Dict[str, object],
) -> Optional[List[Dict[str, object]]]:
    """Per-label aggregates of retrieval completeness, computed from the
    export's per-trial survival breakdowns (mean and 95% CI across
    seeds, same shape as the document's ``labels`` entries). ``None``
    when no simulated trial carries survival data — exports written
    before the churn pipeline, or all-analytical campaigns."""
    by_label: Dict[str, List[float]] = {}
    for trial in doc.get("trials") or []:
        metrics = (trial.get("result") or {}).get("metrics") or {}
        survival = metrics.get("survival") or {}
        if "completeness" in survival:
            by_label.setdefault(str(trial.get("label")), []).append(
                float(survival["completeness"])
            )
    if not by_label:
        return None
    # Keep the document's label order so series charts stay comparable.
    ordered = [
        str(entry.get("label"))
        for entry in doc.get("labels") or []
        if str(entry.get("label")) in by_label
    ] or sorted(by_label)
    out: List[Dict[str, object]] = []
    for label in ordered:
        mean, _sd, ci95 = sample_stats(by_label[label])
        out.append({"label": label, "total": {"mean": mean, "ci95": ci95}})
    return out


def completeness_series_svg(doc: Dict[str, object]) -> str:
    """The E14 headline chart: retrieval completeness vs the swept
    parameter (churn rate), one line per policy."""
    labels = completeness_labels(doc)
    if labels is None:
        raise ValueError(
            f"export {doc.get('name')!r} carries no survival metrics "
            "(no simulated trial has a completeness breakdown)"
        )
    return series_svg(doc, labels=labels, metric="retrieval completeness")


def service_labels(
    doc: Dict[str, object], metric: str
) -> Optional[List[Dict[str, object]]]:
    """Per-label aggregates of one serving-layer metric (``latency_p95_s``,
    ``cache_hit_rate``, ``shed_rate``, ...), computed from the export's
    per-trial ``metrics.service`` scorecards — mean and 95% CI across
    seeds, same shape as the document's ``labels`` entries. ``None`` when
    no trial carries the metric (non-E16 campaigns)."""
    by_label: Dict[str, List[float]] = {}
    for trial in doc.get("trials") or []:
        metrics = (trial.get("result") or {}).get("metrics") or {}
        service = metrics.get("service") or {}
        if metric in service:
            by_label.setdefault(str(trial.get("label")), []).append(
                float(service[metric])
            )
    if not by_label:
        return None
    ordered = [
        str(entry.get("label"))
        for entry in doc.get("labels") or []
        if str(entry.get("label")) in by_label
    ] or sorted(by_label)
    out: List[Dict[str, object]] = []
    for label in ordered:
        mean, _sd, ci95 = sample_stats(by_label[label])
        out.append({"label": label, "total": {"mean": mean, "ci95": ci95}})
    return out


#: The E16 headline charts: (file-stem suffix, service metric, axis name).
SERVICE_CHARTS: Tuple[Tuple[str, str, str], ...] = (
    ("latency", "latency_p95_s", "p95 latency (simulated s)"),
    ("cache-hit", "cache_hit_rate", "cache hit rate"),
    ("shed", "shed_rate", "shed rate"),
)


# ----------------------------------------------------------------------
# Drivers: export document → image files
# ----------------------------------------------------------------------


def png_supported() -> bool:
    """PNG needs the optional ``cairosvg`` rasterizer; SVG never does."""
    try:
        import cairosvg  # noqa: F401

        return True
    except ImportError:
        return False


def _write_png(svg_text: str, path: Path) -> None:
    import cairosvg

    cairosvg.svg2png(bytestring=svg_text.encode("utf-8"), write_to=str(path))


def plot_campaign(
    doc: Dict[str, object],
    out_dir: Path,
    stem: Optional[str] = None,
    formats: Sequence[str] = ("svg",),
) -> List[Path]:
    """Render every chart that applies to ``doc``; returns files written.

    Always renders the Figure-3 breakdown chart; sweep campaigns (labels
    like ``n=64/scoop``) additionally get the Figure-4/5 series chart,
    plus the retrieval-completeness series when the trials carry
    survival metrics (E14) and the latency/cache-hit/shed series when
    they carry serving scorecards (E16).
    ``formats`` may include ``svg`` and ``png`` (PNG requires the
    optional ``cairosvg``; unavailable formats raise ``RuntimeError``).
    """
    if not formats:
        raise ValueError("no plot formats given; svg and/or png")
    unknown = [f for f in formats if f not in ("svg", "png")]
    if unknown:
        raise ValueError(f"unknown plot format(s) {unknown}; svg and png only")
    if "png" in formats and not png_supported():
        raise RuntimeError(
            "png output needs the optional cairosvg package; "
            "install it or use --format svg"
        )
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    base = stem if stem else str(doc.get("name", "campaign"))
    charts: List[Tuple[str, str]] = [("breakdown", breakdown_svg(doc))]
    if parse_series(doc) is not None:
        charts.append(("series", series_svg(doc)))
        completeness = completeness_labels(doc)
        if completeness is not None and parse_series(doc, completeness) is not None:
            chart = series_svg(doc, completeness, "retrieval completeness")
            charts.append(("completeness", chart))
        for suffix, metric, axis in SERVICE_CHARTS:
            labels = service_labels(doc, metric)
            if labels is not None and parse_series(doc, labels) is not None:
                charts.append((suffix, series_svg(doc, labels, axis)))
    written: List[Path] = []
    for kind, svg_text in charts:
        if "svg" in formats:
            path = out_dir / f"{base}-{kind}.svg"
            # SVG without an XML declaration is UTF-8 by definition; the
            # titles contain non-ASCII, so never trust the locale default.
            path.write_text(svg_text, encoding="utf-8")
            written.append(path)
        if "png" in formats:
            path = out_dir / f"{base}-{kind}.png"
            _write_png(svg_text, path)
            written.append(path)
    return written


def svg_to_data_uri(svg_text: str) -> str:
    """The chart as a ``data:`` URI (handy for embedding in HTML/markdown
    reports without writing files)."""
    payload = base64.b64encode(svg_text.encode("utf-8")).decode("ascii")
    return f"data:image/svg+xml;base64,{payload}"
