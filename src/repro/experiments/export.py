"""Canonical per-campaign JSON export: the plotting/CI interface.

One campaign run → one self-describing JSON document under
``benchmarks/results/campaigns/`` (``REPRO_EXPORT_DIR`` overrides),
containing

* per-label aggregates — mean / sample stdev / 95% confidence half-width
  for the total and for every Figure-3 category;
* every trial, losslessly: the full :class:`ExperimentResult` dict
  including its :class:`~repro.sim.metrics.TrialMetrics` breakdown
  (messages by type, energy by component, per-node load, planner
  counters, timing), the trial's cache key, and whether it was served
  from the cache;
* provenance — the code salt the keys were computed under, schema
  versions, seed list, and execution statistics.

The export is the machine-readable sibling of the text tables in
:mod:`repro.experiments.reporting`; ``python -m repro.experiments report``
renders a markdown figure table from it without re-running anything.
"""

from __future__ import annotations

import json
import os
import re
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.experiments.campaign import CampaignResult
from repro.experiments.runner import SPEC_SCHEMA_VERSION
from repro.experiments.salt import cache_salt

#: Version of the export document format.
EXPORT_SCHEMA_VERSION = 1

#: The ``kind`` tag every export document carries.
EXPORT_KIND = "repro-campaign"


def default_export_root() -> Path:
    """``$REPRO_EXPORT_DIR`` if set, else
    ``<repo>/benchmarks/results/campaigns`` (falling back to the current
    working directory outside a repo checkout, like the result cache)."""
    env = os.environ.get("REPRO_EXPORT_DIR")
    if env:
        return Path(env)
    repo = Path(__file__).resolve().parents[3]
    if (repo / "benchmarks").is_dir():
        return repo / "benchmarks" / "results" / "campaigns"
    return Path.cwd() / "benchmarks" / "results" / "campaigns"


def campaign_to_dict(
    result: CampaignResult,
    jobs: int = 1,
    elapsed_s: float = 0.0,
    scale: Optional[float] = None,
    generated_at: Optional[datetime] = None,
) -> Dict[str, object]:
    """The export document for one executed campaign, JSON-ready."""
    stamp = generated_at if generated_at is not None else datetime.now(timezone.utc)
    seeds = sorted({tr.trial.spec.seed for tr in result.trials})
    return {
        "schema": EXPORT_SCHEMA_VERSION,
        "kind": EXPORT_KIND,
        "name": result.name,
        "generated_at": stamp.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "spec_schema": SPEC_SCHEMA_VERSION,
        "cache_salt": cache_salt(),
        "seeds": seeds,
        "scale": scale,
        "execution": {
            "trials": len(result.trials),
            "executed": result.executed,
            "cached": result.cached,
            "jobs": jobs,
            "elapsed_s": elapsed_s,
        },
        "labels": [agg.to_dict() for agg in result.aggregates()],
        "trials": [
            {
                "label": tr.trial.label,
                "scenario": tr.trial.scenario,
                "seed": tr.trial.spec.seed,
                "spec_key": tr.trial.key,
                "analytical": tr.trial.analytical,
                "from_cache": tr.from_cache,
                "result": tr.result.to_dict(),
            }
            for tr in result.trials
        ],
    }


def export_campaign(
    result: CampaignResult,
    jobs: int = 1,
    elapsed_s: float = 0.0,
    scale: Optional[float] = None,
    out_dir: Optional[Path] = None,
    generated_at: Optional[datetime] = None,
) -> Path:
    """Write the campaign's JSON export; returns the file written.

    Files are named ``<campaign>-<UTC timestamp>.json`` so a directory
    listing sorts chronologically per scenario; a second export within
    the same second gets a ``.2``, ``.3``, ... disambiguator instead of
    overwriting the first.
    """
    root = Path(out_dir) if out_dir is not None else default_export_root()
    root.mkdir(parents=True, exist_ok=True)
    doc = campaign_to_dict(
        result,
        jobs=jobs,
        elapsed_s=elapsed_s,
        scale=scale,
        generated_at=generated_at,
    )
    stem = f"{result.name}-{doc['generated_at'].replace(':', '')}"
    path = root / f"{stem}.json"
    counter = 1
    while path.exists():
        counter += 1
        path = root / f"{stem}.{counter}.json"
    path.write_text(json.dumps(doc, sort_keys=True, indent=1))
    return path


def load_campaign_export(path: Path) -> Dict[str, object]:
    """Read and validate one export document."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("kind") != EXPORT_KIND:
        raise ValueError(f"{path} is not a campaign export")
    if doc.get("schema") != EXPORT_SCHEMA_VERSION:
        raise ValueError(
            f"{path} has export schema {doc.get('schema')!r}; "
            f"this version reads {EXPORT_SCHEMA_VERSION}"
        )
    return doc


def _export_order(path: Path) -> Tuple[float, str, int]:
    """Oldest-first sort key: (mtime, base name, disambiguator sequence).

    Same-second exports carry ``.2``/``.3`` disambiguators that sort
    *before* their base name lexicographically ('2' < 'j'), so the
    sequence number is compared explicitly: ``x.json`` is sequence 1,
    ``x.2.json`` sequence 2, and so on.
    """
    match = re.match(r"^(?P<base>.+?)(?:\.(?P<seq>\d+))?\.json$", path.name)
    if match is None:
        return (path.stat().st_mtime, path.name, 1)
    seq = int(match.group("seq")) if match.group("seq") else 1
    return (path.stat().st_mtime, match.group("base"), seq)


def list_exports(
    scenario: Optional[str] = None, root: Optional[Path] = None
) -> List[Path]:
    """Export files on disk, oldest first; optionally one scenario's.

    Ordered by modification time, then by name with the same-second
    ``.N`` disambiguator compared numerically (see :func:`_export_order`).
    """
    base = Path(root) if root is not None else default_export_root()
    if not base.is_dir():
        return []
    pattern = f"{scenario}-*.json" if scenario else "*.json"
    return sorted(base.glob(pattern), key=_export_order)


def latest_export(
    scenario: Optional[str] = None, root: Optional[Path] = None
) -> Optional[Path]:
    """The most recent export (of ``scenario``, when given), or None."""
    found = list_exports(scenario, root)
    return found[-1] if found else None
