"""Experiment harness: campaign engine, policy registry, runner, scenarios.

``python -m repro.experiments run <scenario> --jobs N --seeds K`` runs a
named scenario as a parallel, cached, multi-seed campaign; see
``python -m repro.experiments list`` and DESIGN.md for the scenario index.
"""

from repro.experiments.cache import ResultCache, default_cache_root
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    LabelAggregate,
    Trial,
    TrialResult,
    default_analytical,
    run_cached,
    run_campaign,
)
from repro.experiments.registry import (
    known_policies,
    policy_factory,
    register_policy,
    unregister_policy,
)
from repro.experiments.runner import (
    POLICIES,
    ExperimentResult,
    ExperimentSpec,
    build_motes,
    build_topology,
    run_experiment,
    run_hash_analytical,
    scale_spec,
    spec_key,
)
from repro.experiments.scenarios import (
    SCENARIO_ALIASES,
    SCENARIOS,
    scenario_names,
    scenario_trials,
)

__all__ = [
    "POLICIES",
    "SCENARIOS",
    "SCENARIO_ALIASES",
    "Campaign",
    "CampaignResult",
    "ExperimentResult",
    "ExperimentSpec",
    "LabelAggregate",
    "ResultCache",
    "Trial",
    "TrialResult",
    "build_motes",
    "build_topology",
    "default_analytical",
    "default_cache_root",
    "known_policies",
    "policy_factory",
    "register_policy",
    "run_cached",
    "run_campaign",
    "run_experiment",
    "run_hash_analytical",
    "scale_spec",
    "scenario_names",
    "scenario_trials",
    "spec_key",
    "unregister_policy",
]
