"""Experiment harness: runner, named scenarios, and report rendering."""

from repro.experiments.runner import (
    POLICIES,
    ExperimentResult,
    ExperimentSpec,
    build_topology,
    run_experiment,
    run_hash_analytical,
    scale_spec,
)

__all__ = [
    "POLICIES",
    "ExperimentResult",
    "ExperimentSpec",
    "build_topology",
    "run_experiment",
    "run_hash_analytical",
    "scale_spec",
]
