"""Campaign engine: trial grids, multi-seed replication, parallel runs.

A :class:`Campaign` is a batch of :class:`Trial`\\ s — scenario expansion ×
seeds — executed through one pipeline that (1) consults the persistent
:class:`~repro.experiments.cache.ResultCache` before simulating anything,
(2) optionally fans misses out over a ``ProcessPoolExecutor``, and (3)
aggregates per-label mean/stdev across seeds.

Determinism: every trial is fully specified by its spec (the RNG seed is a
spec field), and serial and parallel execution share one code path — the
worker serializes the spec with :meth:`ExperimentSpec.to_dict`,
reconstructs it, runs, and returns :meth:`ExperimentResult.to_dict` — so
a campaign run with ``jobs=N`` is bit-identical to ``jobs=1``.
"""

from __future__ import annotations

import math
import os
import statistics
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.experiments import registry
from repro.experiments.cache import ResultCache
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
    run_hash_analytical,
    spec_key,
)
from repro.experiments.scenarios import canonical_scenario_name, scenario_trials


def default_analytical(spec: ExperimentSpec) -> bool:
    """Whether this spec is evaluated analytically by default.

    The paper evaluates HASH analytically ("we evaluate the cost of this
    HASH approach analytically"); set ``REPRO_HASH_SIMULATED=1`` — or the
    spec's ``hash_simulated`` flag (the E15 grid does) — to run the
    simulated HASH extension instead.
    """
    return (
        spec.policy == "hash"
        and not spec.hash_simulated
        and not os.environ.get("REPRO_HASH_SIMULATED")
    )


@dataclass
class Trial:
    """One executable unit of a campaign: a spec plus how to evaluate it."""

    spec: ExperimentSpec
    #: Stable trial identity *within* the campaign; seeds sharing a label
    #: aggregate together.
    label: str = ""
    #: Scenario this trial came from ("" for ad-hoc campaigns).
    scenario: str = ""
    #: Evaluate with the analytical model instead of the simulator.
    analytical: bool = False

    def __post_init__(self) -> None:
        if not self.label:
            self.label = f"{self.spec.policy}/{self.spec.workload}"

    @property
    def key(self) -> str:
        """Canonical cache key of this trial."""
        return spec_key(self.spec, analytical=self.analytical)


@dataclass
class TrialResult:
    trial: Trial
    result: ExperimentResult
    #: True when served from the cache without executing a simulation.
    from_cache: bool = False


#: Two-sided 95% Student-t critical values by degrees of freedom (CRC
#: table); beyond the table the normal approximation 1.96 is used. Kept
#: inline so confidence intervals need no scipy dependency.
# fmt: off
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}
# fmt: on


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value for ``df`` degrees of freedom.

    Between table rows the value for the largest tabulated df **at or
    below** the requested one is used — rounding df down keeps the
    interval conservative (slightly wide), never anti-conservative.
    """
    if df < 1:
        return 0.0
    if df in _T95:
        return _T95[df]
    floor = max(entry for entry in _T95 if entry <= df)
    return _T95[floor]


def sample_stats(values: Sequence[float]) -> Tuple[float, float, float]:
    """(mean, sample stdev, 95% CI half-width) of ``values``.

    One sample has no spread estimate: stdev and CI are 0 (the figure
    tables then show a bare mean, as the single-seed campaigns always
    did).
    """
    n = len(values)
    mean = statistics.fmean(values)
    if n < 2:
        return mean, 0.0, 0.0
    sd = statistics.stdev(values)
    return mean, sd, t_critical_95(n - 1) * sd / math.sqrt(n)


@dataclass
class LabelAggregate:
    """Across-seed statistics for one trial label."""

    label: str
    n: int
    seeds: Tuple[int, ...]
    mean_total: float
    stdev_total: float
    mean_breakdown: Dict[str, float]
    #: 95% confidence half-width of the total (Student t; 0 for one seed).
    ci95_total: float = 0.0
    stdev_breakdown: Dict[str, float] = field(default_factory=dict)
    ci95_breakdown: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form used by the campaign export (grouped per
        statistic so plotting code reads ``total.mean``/``total.ci95``)."""
        return {
            "label": self.label,
            "n": self.n,
            "seeds": list(self.seeds),
            "total": {
                "mean": self.mean_total,
                "stdev": self.stdev_total,
                "ci95": self.ci95_total,
            },
            "breakdown": {
                cat: {
                    "mean": self.mean_breakdown[cat],
                    "stdev": self.stdev_breakdown.get(cat, 0.0),
                    "ci95": self.ci95_breakdown.get(cat, 0.0),
                }
                for cat in self.mean_breakdown
            },
        }


@dataclass
class CampaignResult:
    name: str
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def results(self) -> List[ExperimentResult]:
        return [t.result for t in self.trials]

    @property
    def executed(self) -> int:
        """Trials that actually ran a simulation/model this campaign."""
        return sum(1 for t in self.trials if not t.from_cache)

    @property
    def cached(self) -> int:
        return sum(1 for t in self.trials if t.from_cache)

    def by_label(self) -> Dict[str, List[TrialResult]]:
        """Trial results grouped by label, in first-seen order."""
        groups: Dict[str, List[TrialResult]] = {}
        for tr in self.trials:
            groups.setdefault(tr.trial.label, []).append(tr)
        return groups

    def aggregates(self) -> List[LabelAggregate]:
        """Per-label mean/stdev/95% CI across seeds (0 spread for one
        seed)."""
        out: List[LabelAggregate] = []
        for label, group in self.by_label().items():
            totals = [tr.result.total_messages for tr in group]
            categories: Dict[str, List[float]] = {}
            for tr in group:
                for cat, count in tr.result.breakdown.items():
                    categories.setdefault(cat, []).append(count)
            mean_total, stdev_total, ci95_total = sample_stats(totals)
            per_cat = {cat: sample_stats(vals) for cat, vals in categories.items()}
            out.append(
                LabelAggregate(
                    label=label,
                    n=len(group),
                    seeds=tuple(tr.trial.spec.seed for tr in group),
                    mean_total=mean_total,
                    stdev_total=stdev_total,
                    ci95_total=ci95_total,
                    mean_breakdown={cat: s[0] for cat, s in per_cat.items()},
                    stdev_breakdown={cat: s[1] for cat, s in per_cat.items()},
                    ci95_breakdown={cat: s[2] for cat, s in per_cat.items()},
                )
            )
        return out


@contextmanager
def _scale_override(scale: Optional[float]):
    """Temporarily pin ``REPRO_BENCH_SCALE`` (scenario expansion reads it).

    An explicit scale also suspends ``REPRO_FULL`` for the expansion —
    a deliberate CLI/API argument beats a lingering environment flag.
    """
    if scale is None:
        yield
        return
    saved = {
        name: os.environ.pop(name, None)
        for name in ("REPRO_BENCH_SCALE", "REPRO_FULL")
    }
    os.environ["REPRO_BENCH_SCALE"] = str(scale)
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@dataclass
class Campaign:
    """A named batch of trials, ready to run (and re-run, cached)."""

    name: str
    trials: List[Trial] = field(default_factory=list)

    @classmethod
    def from_scenario(
        cls,
        scenario: str,
        seeds: Sequence[int] = (1,),
        scale: Optional[float] = None,
    ) -> "Campaign":
        """Expand a named scenario × ``seeds`` into a trial grid.

        E/A aliases canonicalize here, so a campaign run as ``E13`` is
        named (and exported/reported/plotted as) ``scaling_xl``.
        ``scale`` overrides both ``REPRO_BENCH_SCALE`` and ``REPRO_FULL``
        for the expansion: an explicit argument beats ambient env flags.
        """
        scenario = canonical_scenario_name(scenario)
        trials: List[Trial] = []
        with _scale_override(scale):
            for seed in seeds:
                for label, spec in scenario_trials(scenario, seed=seed):
                    trials.append(
                        Trial(
                            spec=spec,
                            label=label,
                            scenario=scenario,
                            analytical=default_analytical(spec),
                        )
                    )
        return cls(name=scenario, trials=trials)

    @classmethod
    def from_specs(
        cls,
        name: str,
        specs: Iterable[Union[ExperimentSpec, Tuple[str, ExperimentSpec]]],
    ) -> "Campaign":
        """An ad-hoc campaign over explicit specs or ``(label, spec)`` pairs."""
        trials: List[Trial] = []
        for item in specs:
            if isinstance(item, ExperimentSpec):
                label, spec = "", item
            else:
                label, spec = item
            trials.append(
                Trial(spec=spec, label=label, analytical=default_analytical(spec))
            )
        return cls(name=name, trials=trials)


def _init_worker(plugins: Dict[str, "registry.PolicyFactory"]) -> None:
    """Re-register plug-in policies in a pool worker.

    Under spawn-based multiprocessing (macOS/Windows) a worker's registry
    holds only the built-in four; without this, a campaign over a
    plug-in policy would fail spec validation in the worker while
    succeeding serially. Requires plug-in factories to be picklable
    (module-level callables).
    """
    for name, factory in plugins.items():
        if not registry.is_registered(name):
            registry.register_policy(name, factory)


def _execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one trial from its serialized form (the process-pool worker).

    Serial execution calls this in-process so both modes share one code
    path: dict → spec → run → dict.
    """
    spec = ExperimentSpec.from_dict(payload["spec"])
    if payload["analytical"]:
        result = run_hash_analytical(spec)
    else:
        result = run_experiment(spec)
    return {"index": payload["index"], "result": result.to_dict()}


def run_cached(
    spec: ExperimentSpec,
    analytical: bool = False,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    """Run (or fetch) one trial through the persistent cache."""
    cache = cache if cache is not None else ResultCache()
    key = spec_key(spec, analytical=analytical)
    hit = cache.get(key)
    if hit is not None:
        return hit
    payload = _execute_payload(
        {"index": 0, "spec": spec.to_dict(), "analytical": analytical}
    )
    result = ExperimentResult.from_dict(payload["result"])
    cache.put(key, result)
    return result


def run_campaign(
    campaign: Campaign,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    refresh: bool = False,
) -> CampaignResult:
    """Execute every trial of ``campaign``; cache first, then simulate.

    ``jobs > 1`` fans cache misses out over a process pool. Results are
    deterministic and identical to a serial run regardless of ``jobs``.
    Completed trials are cached as they finish, so one failing trial
    never discards sibling results. Trials sharing one spec key
    (duplicate specs) simulate once; the
    extra copies are reported as cache hits. ``refresh`` re-executes
    trials even on a cache hit (and overwrites the cached entry);
    ``use_cache=False`` neither reads nor writes the cache.
    """
    if use_cache and cache is None:
        cache = ResultCache()
    trials = campaign.trials
    outcomes: List[Optional[TrialResult]] = [None] * len(trials)

    # Misses grouped by spec key, so duplicate specs execute once.
    pending_by_key: Dict[str, List[int]] = {}
    for i, trial in enumerate(trials):
        if use_cache and not refresh:
            hit = cache.get(trial.key)
            if hit is not None:
                outcomes[i] = TrialResult(trial, hit, from_cache=True)
                continue
        pending_by_key.setdefault(trial.key, []).append(i)

    payloads = [
        {
            "index": indices[0],
            "spec": trials[indices[0]].spec.to_dict(),
            "analytical": trials[indices[0]].analytical,
        }
        for indices in pending_by_key.values()
    ]

    def settle(item: Dict[str, object]) -> None:
        # Cache each trial the moment it completes, so a failure or
        # interruption later in the campaign never discards finished work.
        first = item["index"]
        result = ExperimentResult.from_dict(item["result"])
        if use_cache:
            cache.put(trials[first].key, result)
        for i in pending_by_key[trials[first].key]:
            outcomes[i] = TrialResult(trials[i], result, from_cache=i != first)

    if jobs > 1 and len(payloads) > 1:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(payloads)),
            initializer=_init_worker,
            initargs=(registry.plugin_policies(),),
        ) as pool:
            futures = [pool.submit(_execute_payload, p) for p in payloads]
            error: Optional[BaseException] = None
            for future in as_completed(futures):
                try:
                    settle(future.result())
                except BaseException as exc:  # settle everything that ran
                    if error is None:
                        error = exc
            if error is not None:
                raise error
    else:
        for payload in payloads:
            settle(_execute_payload(payload))

    return CampaignResult(name=campaign.name, trials=list(outcomes))
