"""Policy registry: storage-policy name → mote factory.

The experiment runner used to hard-code an if/elif chain over the four
paper policies; every new baseline or variant meant editing the runner.
Policies are now plug-ins: a factory registered under a name builds the
basestation and sensor motes for one trial, and :class:`ExperimentSpec`
validates its ``policy`` field against this registry, so external code
(tests, extensions, ablations) can add policies without touching the
runner:

    @register_policy("scoop-tuned")
    def _build(spec, net, workload):
        ...
        return base, nodes

A factory receives the full :class:`ExperimentSpec`, the assembled
:class:`~repro.sim.network.Network` (for ``sim``/``radio``/``tracker``/
``energy``) and the instantiated :class:`~repro.workloads.Workload`, and
returns ``(basestation, sensor_nodes)``. It must *not* call
``net.add_mote`` — the runner does that so every policy is wired
identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.baselines.hash_static import (
    HashBasestation,
    HashNode,
    build_hash_indexes,
)
from repro.baselines.local import LocalBasestation, LocalNode
from repro.baselines.send_base import SendToBaseBasestation, SendToBaseNode
from repro.core.basestation import Basestation
from repro.core.node import ScoopNode

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runner cycle
    from repro.experiments.runner import ExperimentSpec
    from repro.sim.mote import Mote  # noqa: F401 — quoted in PolicyFactory
    from repro.sim.network import Network
    from repro.workloads import Workload  # noqa: F401 — quoted in PolicyFactory

#: factory(spec, net, workload) -> (basestation, sensor nodes)
PolicyFactory = Callable[
    ["ExperimentSpec", "Network", "Workload"], Tuple["Mote", List["Mote"]]
]

_POLICIES: Dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: Optional[PolicyFactory] = None) -> Callable:
    """Register ``factory`` under ``name`` (also usable as a decorator)."""
    if not isinstance(name, str) or not name:
        raise ValueError(f"policy name must be a non-empty string, got {name!r}")

    def _register(fn: PolicyFactory) -> PolicyFactory:
        if name in _POLICIES:
            raise ValueError(f"policy {name!r} is already registered")
        _POLICIES[name] = fn
        return fn

    if factory is None:
        return _register
    return _register(factory)


def unregister_policy(name: str) -> None:
    """Remove a registered policy (primarily for tests and plug-ins)."""
    if name not in _POLICIES:
        raise KeyError(f"policy {name!r} is not registered")
    del _POLICIES[name]


def is_registered(name: str) -> bool:
    return name in _POLICIES


def known_policies() -> Tuple[str, ...]:
    """All registered policy names, sorted."""
    return tuple(sorted(_POLICIES))


def policy_factory(name: str) -> PolicyFactory:
    try:
        return _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; registered policies: {known_policies()}"
        ) from None


# ----------------------------------------------------------------------
# The paper's four storage policies (Section 6 table).
# ----------------------------------------------------------------------

def _common(spec: "ExperimentSpec", net: "Network") -> Dict[str, object]:
    return dict(config=spec.scoop, tracker=net.tracker, energy=net.energy)


def _sources(workload) -> Dict[str, object]:
    """Per-node sensor hookup: the legacy single-attribute source plus
    the (attribute-aware) multi source every workload exposes."""
    return dict(
        data_source=workload.as_data_source(), multi_source=workload.sample_attr
    )


@register_policy("scoop")
def _build_scoop(spec, net, workload):
    common = _common(spec, net)
    base = Basestation(net.sim, net.radio, **common)
    nodes = [
        ScoopNode(i, net.sim, net.radio, **_sources(workload), **common)
        for i in spec.scoop.sensor_ids
    ]
    return base, nodes


@register_policy("local")
def _build_local(spec, net, workload):
    common = _common(spec, net)
    base = LocalBasestation(net.sim, net.radio, **common)
    nodes = [
        LocalNode(i, net.sim, net.radio, **_sources(workload), **common)
        for i in spec.scoop.sensor_ids
    ]
    return base, nodes


@register_policy("base")
def _build_send_to_base(spec, net, workload):
    common = _common(spec, net)
    base = SendToBaseBasestation(net.sim, net.radio, **common)
    nodes = [
        SendToBaseNode(i, net.sim, net.radio, **_sources(workload), **common)
        for i in spec.scoop.sensor_ids
    ]
    return base, nodes


@register_policy("hash")
def _build_hash(spec, net, workload):
    common = _common(spec, net)
    indexes = build_hash_indexes(spec.scoop, salt=spec.seed)
    base = HashBasestation(net.sim, net.radio, hash_indexes=indexes, **common)
    nodes = [
        HashNode(
            i,
            net.sim,
            net.radio,
            hash_indexes=indexes,
            **_sources(workload),
            **common,
        )
        for i in spec.scoop.sensor_ids
    ]
    return base, nodes


#: Snapshot of the built-ins, taken once all four are registered above;
#: everything beyond this set is a plug-in (see :func:`plugin_policies`).
_DEFAULT_POLICIES = frozenset(_POLICIES)


def plugin_policies() -> Dict[str, PolicyFactory]:
    """Registered policies beyond the paper's built-in four.

    Parallel campaigns ship these to worker processes (whose registries
    start with only the built-ins under spawn-based multiprocessing), so
    plug-in factories must be module-level callables to run with
    ``jobs > 1`` on spawn platforms.
    """
    return {
        name: factory
        for name, factory in _POLICIES.items()
        if name not in _DEFAULT_POLICIES
    }
