"""Named experiment scenarios: one per figure/table of the paper.

Each scenario function returns the list of :class:`ExperimentSpec` trials
that regenerate the corresponding figure, at a time scale controlled by the
``REPRO_BENCH_SCALE`` environment variable (default 0.15 of the paper's
40-minute runs so the whole benchmark suite finishes in minutes; set
``REPRO_BENCH_SCALE=1`` or ``REPRO_FULL=1`` for paper-scale runs). Scaling
shrinks only the duration — all rates stay at the paper's values — so the
policy *ratios* the figures compare are preserved.

The experiment ids (E1..E9, E11..E15, A1, A2) are indexed in DESIGN.md;
E11..E15 go past the paper (topology profiles, a link-loss sweep,
64..256-node scaling under a widened query bitmap, node churn with
failure injection, and multi-attribute indexing with per-attribute
storage indexes sharing one dissemination epoch).
"""

from __future__ import annotations

import dataclasses
import difflib
import os
import sys
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.core.config import AttributeSpec, ScoopConfig, ValueDomain
from repro.experiments.runner import ExperimentSpec, scale_spec
from repro.workloads.queries import QueryPlanConfig

#: Value domain of the REAL light trace (paper: "V was at about 150").
REAL_DOMAIN = ValueDomain(0, 149)
#: Value domain of the synthetic sources (paper: "range [0,100]").
SYNTH_DOMAIN = ValueDomain(0, 100)


def bench_scale() -> float:
    """The time-scale factor benchmarks run at (env-controlled)."""
    if os.environ.get("REPRO_FULL"):
        return 1.0
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


def _config(domain: ValueDomain, **overrides) -> ScoopConfig:
    return ScoopConfig(domain=domain, **overrides)


def _spec(
    policy: str, workload: str, domain: ValueDomain, seed: int = 1, **kw
) -> ExperimentSpec:
    config_kw = {k: v for k, v in kw.items() if k in ScoopConfig.__dataclass_fields__}
    other_kw = {k: v for k, v in kw.items() if k not in config_kw}
    spec = ExperimentSpec(
        policy=policy,
        workload=workload,
        scoop=_config(domain, **config_kw),
        seed=seed,
        **other_kw,
    )
    return scale_spec(spec, bench_scale())


# ----------------------------------------------------------------------
# E1 — Figure 3 (left): testbed cost breakdown by message type
# ----------------------------------------------------------------------
def fig3_left(seed: int = 1) -> List[ExperimentSpec]:
    """scoop/unique, scoop/gaussian, local/gaussian, base/gaussian."""
    return [
        _spec("scoop", "unique", SYNTH_DOMAIN, seed),
        _spec("scoop", "gaussian", SYNTH_DOMAIN, seed),
        _spec("local", "gaussian", SYNTH_DOMAIN, seed),
        _spec("base", "gaussian", SYNTH_DOMAIN, seed),
    ]


# ----------------------------------------------------------------------
# E2 — Figure 3 (middle): SCOOP vs LOCAL vs HASH vs BASE on REAL
# ----------------------------------------------------------------------
def fig3_middle(seed: int = 1) -> List[ExperimentSpec]:
    return [
        _spec("scoop", "real", REAL_DOMAIN, seed),
        _spec("local", "real", REAL_DOMAIN, seed),
        _spec("hash", "real", REAL_DOMAIN, seed),
        _spec("base", "real", REAL_DOMAIN, seed),
    ]


# ----------------------------------------------------------------------
# E3 — Figure 3 (right): SCOOP across data sources
# ----------------------------------------------------------------------
def fig3_right(seed: int = 1) -> List[ExperimentSpec]:
    specs = []
    for workload in ("unique", "equal", "real", "gaussian", "random"):
        domain = REAL_DOMAIN if workload == "real" else SYNTH_DOMAIN
        specs.append(_spec("scoop", workload, domain, seed))
    return specs


# ----------------------------------------------------------------------
# E4 — Figure 4: cost vs percentage of nodes queried
# ----------------------------------------------------------------------
def fig4_selectivity(
    seed: int = 1, fractions: Sequence[float] = (0.05, 0.20, 0.40, 0.60, 0.80, 1.00)
) -> List[Tuple[float, List[ExperimentSpec]]]:
    """Node-list queries naming a growing fraction of the sensors."""
    out = []
    for frac in fractions:
        plan = QueryPlanConfig(kind="nodes", node_frac=frac)
        trio = []
        for policy in ("scoop", "local", "base"):
            spec = _spec(policy, "real", REAL_DOMAIN, seed)
            trio.append(dataclasses.replace(spec, query_plan=plan))
        out.append((frac, trio))
    return out


# ----------------------------------------------------------------------
# E5 — Figure 5: cost vs query interval
# ----------------------------------------------------------------------
def fig5_query_interval(
    seed: int = 1, intervals: Sequence[float] = (5.0, 10.0, 15.0, 30.0, 45.0)
) -> List[Tuple[float, List[ExperimentSpec]]]:
    out = []
    for interval in intervals:
        trio = []
        for policy in ("scoop", "local", "base"):
            spec = _spec(policy, "real", REAL_DOMAIN, seed, query_interval=interval)
            trio.append(spec)
        out.append((interval, trio))
    return out


# ----------------------------------------------------------------------
# E6 — loss rates (storage success / owner hit / query retrieval)
# ----------------------------------------------------------------------
def loss_rates(seed: int = 1) -> ExperimentSpec:
    return _spec("scoop", "real", REAL_DOMAIN, seed)


# ----------------------------------------------------------------------
# E7 — root-node load skew and battery lifetimes
# ----------------------------------------------------------------------
def root_skew(seed: int = 1) -> List[ExperimentSpec]:
    return [
        _spec("scoop", "real", REAL_DOMAIN, seed),
        _spec("base", "real", REAL_DOMAIN, seed),
        _spec("local", "real", REAL_DOMAIN, seed),
    ]


# ----------------------------------------------------------------------
# E8 — scaling with network size (REAL less sensitive, RANDOM more)
# ----------------------------------------------------------------------
def scaling(
    seed: int = 1, sizes: Sequence[int] = (25, 63, 100)
) -> List[Tuple[int, List[ExperimentSpec]]]:
    out = []
    for n in sizes:
        pair = [
            _spec("scoop", "real", REAL_DOMAIN, seed, n_nodes=n),
            _spec("scoop", "random", SYNTH_DOMAIN, seed, n_nodes=n),
        ]
        out.append((n, pair))
    return out


# ----------------------------------------------------------------------
# E9 — sample-interval sweep (differences wash out at low data rates)
# ----------------------------------------------------------------------
def sample_interval_sweep(
    seed: int = 1, intervals: Sequence[float] = (15.0, 30.0, 60.0, 120.0)
) -> List[Tuple[float, List[ExperimentSpec]]]:
    out = []
    for interval in intervals:
        specs = []
        for workload in ("unique", "gaussian", "random"):
            specs.append(
                _spec("scoop", workload, SYNTH_DOMAIN, seed, sample_interval=interval)
            )
        out.append((interval, specs))
    return out


# ----------------------------------------------------------------------
# A1 — ablation: owner sets and range placement (Section 4 extensions)
# ----------------------------------------------------------------------
def ablation_extensions(seed: int = 1) -> Dict[str, ExperimentSpec]:
    return {
        "single-owner": _spec("scoop", "gaussian", SYNTH_DOMAIN, seed),
        "owner-set-2": _spec(
            "scoop", "gaussian", SYNTH_DOMAIN, seed, max_owners_per_value=2
        ),
        "range-width-10": _spec(
            "scoop", "gaussian", SYNTH_DOMAIN, seed, range_placement_width=10
        ),
    }


# ----------------------------------------------------------------------
# A2 — ablation: statistics staleness (remap-rate sweep)
# ----------------------------------------------------------------------
def ablation_statistics(
    seed: int = 1, remap_intervals: Sequence[float] = (120.0, 240.0, 480.0)
) -> List[Tuple[float, ExperimentSpec]]:
    return [
        (interval, _spec("scoop", "real", REAL_DOMAIN, seed, remap_interval=interval))
        for interval in remap_intervals
    ]


# ----------------------------------------------------------------------
# SMOKE — a minutes-scale micro-grid for CI and engine tests
# ----------------------------------------------------------------------
def smoke(seed: int = 1) -> List[ExperimentSpec]:
    """Three policies on a 14-node network with short timers.

    Unlike the paper scenarios this ignores ``REPRO_BENCH_SCALE``: it is
    already as small as the topology generator reliably supports, and CI
    plus the campaign-engine tests rely on its few-second runtime.
    """
    config = dict(
        n_nodes=14,
        domain=ValueDomain(0, 20),
        sample_interval=5.0,
        query_interval=10.0,
        summary_interval=20.0,
        remap_interval=40.0,
        stabilization=60.0,
        duration=120.0,
        beacon_interval=5.0,
        query_reply_window=8.0,
    )
    return [
        ExperimentSpec(
            policy=policy,
            workload="gaussian",
            scoop=ScoopConfig(**config),
            seed=seed,
        )
        for policy in ("scoop", "local", "base")
    ]


# ----------------------------------------------------------------------
# Past-the-paper grids: topology profiles, loss sweep, XL scaling
# ----------------------------------------------------------------------

#: Per-link loss given to the lossless line/grid lattices so they sit in
#: the paper's loss regime ("25 to about 90 percent" across audible
#: pairs) instead of comparing ideal lattices against lossy testbeds.
LATTICE_LINK_LOSS = 0.3

#: Query-bitmap capacity of the XL scaling grid: double the paper's
#: 128-node implementation limit, so every query carries a 32-byte
#: bitmap (``ScoopConfig.query_bitmap_bytes``).
XL_NETWORK_CAPACITY = 256


def topology_profiles(
    seed: int = 1,
    n: int = 63,
    kinds: Sequence[str] = ("line", "grid", "geometric", "testbed"),
) -> List[Tuple[str, List[ExperimentSpec]]]:
    """SCOOP vs LOCAL across topology generators at the testbed size."""
    out = []
    for kind in kinds:
        link_loss = LATTICE_LINK_LOSS if kind in ("line", "grid") else 0.0
        pair = [
            _spec(
                policy,
                "real",
                REAL_DOMAIN,
                seed,
                n_nodes=n,
                topology_kind=kind,
                link_loss=link_loss,
            )
            for policy in ("scoop", "local")
        ]
        out.append((kind, pair))
    return out


def loss_sweep(
    seed: int = 1,
    losses: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
) -> List[Tuple[float, List[ExperimentSpec]]]:
    """SCOOP vs LOCAL as every testbed link degrades by 0..50% extra
    loss (:func:`repro.sim.topology.degrade`)."""
    out = []
    for extra in losses:
        pair = [
            _spec(policy, "real", REAL_DOMAIN, seed, link_loss=extra)
            for policy in ("scoop", "local")
        ]
        out.append((extra, pair))
    return out


#: E14 protocol timing: summaries/remaps run faster than the paper's
#: defaults and staleness is declared after two silent summary intervals,
#: so a node death is detected, evicted, and its range reassigned well
#: within even a down-scaled measured phase. Identical across the sweep —
#: trials differ only in churn rate.
CHURN_TIMING = dict(
    summary_interval=60.0,
    remap_interval=120.0,
    node_staleness_intervals=2.0,
)


def node_churn(
    seed: int = 1, rates: Sequence[float] = (0.0, 0.15, 0.3, 0.45)
) -> List[Tuple[float, List[ExperimentSpec]]]:
    """SCOOP vs LOCAL while 0..45% of the sensors die mid-run.

    Failure injection (:mod:`repro.sim.failure`) silences each victim's
    radio and orphans its flash at a seeded random time; the basestation's
    staleness eviction reassigns dead owners' ranges at the next remap.
    The retrieval-completeness series is the scenario's headline metric.
    """
    out = []
    for rate in rates:
        pair = [
            _spec(
                policy,
                "real",
                REAL_DOMAIN,
                seed,
                churn_rate=rate,
                **CHURN_TIMING,
            )
            for policy in ("scoop", "local")
        ]
        out.append((rate, pair))
    return out


#: E15 attribute palette: the motivating deployments' sensor board.
#: Attribute 0 keeps the synthetic [0, 100] domain (it *is* the legacy
#: attribute); the others get deliberately different domain widths so
#: per-attribute domains, histograms and indexes are genuinely exercised.
MULTI_ATTRIBUTES: Tuple[Tuple[str, ValueDomain], ...] = (
    ("temperature", SYNTH_DOMAIN),
    ("light", ValueDomain(0, 149)),
    ("humidity", ValueDomain(0, 80)),
    ("voltage", ValueDomain(0, 60)),
)


def multi_attribute_grid(
    seed: int = 1, ks: Sequence[int] = (1, 2, 4)
) -> List[Tuple[int, List[ExperimentSpec]]]:
    """SCOOP vs LOCAL vs HASH at k ∈ {1, 2, 4} concurrent attributes.

    Every trial samples all k attributes per tick (correlated gaussian
    streams) and issues one query per attribute per 15-second base
    interval — the per-attribute query rate is held constant, so a user
    monitoring k attributes costs LOCAL k× the query floods while
    SCOOP's summaries and mapping epochs are shared across attributes.
    """
    out = []
    for k in ks:
        attrs = tuple(
            AttributeSpec(name, domain) for name, domain in MULTI_ATTRIBUTES[:k]
        )
        plan = QueryPlanConfig(n_attributes=k)
        specs = []
        for policy in ("scoop", "local", "hash"):
            spec = _spec(
                policy,
                "gaussian",
                attrs[0].domain,
                seed,
                attributes=attrs,
                query_interval=15.0 / k,
                # simulate HASH here (not the paper's analytical model):
                # every E15 cell then carries per-attribute counters and
                # the oracle scorecard in its structured metrics.
                hash_simulated=True,
            )
            specs.append(dataclasses.replace(spec, query_plan=plan))
        out.append((k, specs))
    return out


def scaling_xl(
    seed: int = 1, sizes: Sequence[int] = (64, 128, 192, 256)
) -> List[Tuple[int, List[ExperimentSpec]]]:
    """SCOOP vs LOCAL at 64..256 nodes under a 256-node query bitmap.

    The whole series runs at ``XL_NETWORK_CAPACITY`` so trials differ
    only in population, not deployment capacity: every query is priced
    with the widened 32-byte bitmap at every size.
    """
    out = []
    for n in sizes:
        pair = [
            _spec(
                policy,
                "real",
                REAL_DOMAIN,
                seed,
                n_nodes=n,
                max_network_size=XL_NETWORK_CAPACITY,
            )
            for policy in ("scoop", "local")
        ]
        out.append((n, pair))
    return out


# ----------------------------------------------------------------------
# E16 — query service: offered-load sweep through the serving layer
# ----------------------------------------------------------------------

#: E16 protocol timing: a small resident network with brisk remaps (so
#: the epoch-keyed answer cache sees several invalidations per trial)
#: and a reply window shorter than the batch interval (so the serving
#: loop never runs the clock past a batch boundary). Identical across
#: the sweep — trials differ only in offered load.
SERVICE_TIMING = dict(
    n_nodes=24,
    sample_interval=10.0,
    summary_interval=60.0,
    remap_interval=180.0,
    query_interval=12.0,
    query_reply_window=8.0,
)


def query_service(
    seed: int = 1, loads: Sequence[float] = (0.05, 0.2, 0.6, 1.5)
) -> List[Tuple[float, List[ExperimentSpec]]]:
    """SCOOP vs LOCAL serving an external query stream at rising load.

    Each trial keeps one resident deployment behind the serving layer
    (:mod:`repro.service`): Poisson request arrivals at ``service_qps``
    are admitted against a bounded queue, coalesced per cache bucket,
    batched once per query interval, and answered from an epoch-keyed
    hot cache when possible. The scenario's headline series are the
    latency percentiles, cache hit rate and shed rate as offered load
    sweeps past the batch capacity.
    """
    out = []
    for qps in loads:
        pair = [
            _spec(
                policy,
                "gaussian",
                SYNTH_DOMAIN,
                seed,
                service_qps=qps,
                **SERVICE_TIMING,
            )
            for policy in ("scoop", "local")
        ]
        out.append((qps, pair))
    return out


# ----------------------------------------------------------------------
# Campaign-facing registry: scenario name -> labelled trial list
# ----------------------------------------------------------------------
#
# The figure functions above keep their paper-shaped return types (lists,
# (x, specs) series, dicts) for the benchmarks; the campaign engine needs
# one uniform shape. Each registered scenario is a builder
# ``f(seed) -> [(label, spec), ...]`` where the label identifies the trial
# *within* the scenario (seeds of the same label aggregate together); its
# docstring's first line is the scenario's description in ``python -m
# repro.experiments list``.

LabelledSpecs = List[Tuple[str, ExperimentSpec]]


@dataclasses.dataclass(frozen=True)
class ScenarioDef:
    """One registry entry: how to build a scenario, and what it shows."""

    name: str
    build: Callable[[int], LabelledSpecs]
    description: str
    #: DESIGN.md experiment id ("E2", "A1", ...), usable as a CLI alias.
    alias: str = ""


SCENARIOS: Dict[str, ScenarioDef] = {}

#: Experiment ids (DESIGN.md) as aliases for the scenario names (derived
#: from the registrations below, never hand-kept).
SCENARIO_ALIASES: Dict[str, str] = {}


def register_scenario(name: str, alias: str = "") -> Callable:
    """Register a scenario builder; its docstring's first line becomes
    the registry description (the CLI ``list`` output and CI's scenario
    matrix both read the registry, so a scenario cannot exist without a
    description or land unexercised)."""

    def _register(fn: Callable[[int], LabelledSpecs]) -> Callable:
        if name in SCENARIOS or name in SCENARIO_ALIASES:
            raise ValueError(f"scenario {name!r} is already registered")
        doc = (fn.__doc__ or "").strip()
        if not doc and sys.flags.optimize < 2:
            # Under -OO docstrings are stripped wholesale; everywhere
            # else a description is mandatory.
            raise ValueError(f"scenario {name!r} needs a one-line docstring")
        description = doc.splitlines()[0].strip() if doc else name
        SCENARIOS[name] = ScenarioDef(name, fn, description, alias)
        if alias:
            if alias in SCENARIO_ALIASES or alias in SCENARIOS:
                raise ValueError(f"scenario alias {alias!r} is already taken")
            SCENARIO_ALIASES[alias] = name
        return fn

    return _register


def _policy_labels(specs: Iterable[ExperimentSpec]) -> LabelledSpecs:
    return [(f"{s.policy}/{s.workload}", s) for s in specs]


def _series_labels(prefix: str, series, fmt: str = "{:g}") -> LabelledSpecs:
    out: LabelledSpecs = []
    for x, specs in series:
        for s in specs:
            out.append((f"{prefix}={fmt.format(x)}/{s.policy}/{s.workload}", s))
    return out


@register_scenario("fig3_left", alias="E1")
def _scn_fig3_left(seed: int) -> LabelledSpecs:
    """Figure 3 (left): testbed cost breakdown by message type."""
    return _policy_labels(fig3_left(seed))


@register_scenario("fig3_middle", alias="E2")
def _scn_fig3_middle(seed: int) -> LabelledSpecs:
    """Figure 3 (middle): SCOOP vs LOCAL vs HASH vs BASE on REAL."""
    return _policy_labels(fig3_middle(seed))


@register_scenario("fig3_right", alias="E3")
def _scn_fig3_right(seed: int) -> LabelledSpecs:
    """Figure 3 (right): SCOOP across the five data sources."""
    return _policy_labels(fig3_right(seed))


@register_scenario("fig4_selectivity", alias="E4")
def _scn_fig4(seed: int) -> LabelledSpecs:
    """Figure 4: cost vs percentage of nodes queried (node-list queries)."""
    return [
        (f"frac={frac:g}/{s.policy}", s)
        for frac, specs in fig4_selectivity(seed)
        for s in specs
    ]


@register_scenario("fig5_query_interval", alias="E5")
def _scn_fig5(seed: int) -> LabelledSpecs:
    """Figure 5: cost vs query interval."""
    return _series_labels("qi", fig5_query_interval(seed))


@register_scenario("loss_rates", alias="E6")
def _scn_loss_rates(seed: int) -> LabelledSpecs:
    """Section 6 text: storage success / owner hit / query retrieval rates."""
    spec = loss_rates(seed)
    return [(f"{spec.policy}/{spec.workload}", spec)]


@register_scenario("root_skew", alias="E7")
def _scn_root_skew(seed: int) -> LabelledSpecs:
    """Section 6 text: root-node load skew and battery lifetimes."""
    return _policy_labels(root_skew(seed))


@register_scenario("scaling", alias="E8")
def _scn_scaling(seed: int) -> LabelledSpecs:
    """Section 6 text: scaling to 100 nodes; RANDOM more size-sensitive."""
    return _series_labels("n", scaling(seed))


@register_scenario("sample_interval", alias="E9")
def _scn_sample_interval(seed: int) -> LabelledSpecs:
    """Section 6 text: per-source differences wash out at low data rates."""
    return _series_labels("si", sample_interval_sweep(seed))


@register_scenario("ablation_extensions", alias="A1")
def _scn_ablation_extensions(seed: int) -> LabelledSpecs:
    """Ablation: Section 4 extensions — owner sets, range placement."""
    return list(ablation_extensions(seed).items())


@register_scenario("ablation_statistics", alias="A2")
def _scn_ablation_statistics(seed: int) -> LabelledSpecs:
    """Ablation: remap-interval sweep — freshness vs mapping overhead."""
    return [
        (f"remap={interval:g}s", spec)
        for interval, spec in ablation_statistics(seed)
    ]


@register_scenario("topology_profiles", alias="E11")
def _scn_topology_profiles(seed: int) -> LabelledSpecs:
    """SCOOP vs LOCAL across line/grid/geometric/testbed topologies."""
    return [
        (f"topo={kind}/{s.policy}", s)
        for kind, specs in topology_profiles(seed)
        for s in specs
    ]


@register_scenario("loss_sweep", alias="E12")
def _scn_loss_sweep(seed: int) -> LabelledSpecs:
    """SCOOP vs LOCAL under 0..50% extra per-link loss on the testbed."""
    return [
        (f"loss={extra:g}/{s.policy}", s)
        for extra, specs in loss_sweep(seed)
        for s in specs
    ]


@register_scenario("scaling_xl", alias="E13")
def _scn_scaling_xl(seed: int) -> LabelledSpecs:
    """SCOOP vs LOCAL at 64..256 nodes with the widened 32-byte bitmap."""
    return [(f"n={n}/{s.policy}", s) for n, specs in scaling_xl(seed) for s in specs]


@register_scenario("node_churn", alias="E14")
def _scn_node_churn(seed: int) -> LabelledSpecs:
    """SCOOP vs LOCAL under 0..45% node failures; staleness-evicting remaps."""
    return [
        (f"churn={rate:g}/{s.policy}", s)
        for rate, specs in node_churn(seed)
        for s in specs
    ]


@register_scenario("multi_attribute", alias="E15")
def _scn_multi_attribute(seed: int) -> LabelledSpecs:
    """SCOOP vs LOCAL vs HASH at 1/2/4 concurrent attributes (E15)."""
    return [
        (f"k={k}/{s.policy}", s)
        for k, specs in multi_attribute_grid(seed)
        for s in specs
    ]


@register_scenario("query_service", alias="E16")
def _scn_query_service(seed: int) -> LabelledSpecs:
    """SCOOP vs LOCAL behind the query gateway at rising offered load."""
    return [
        (f"qps={qps:g}/{s.policy}", s)
        for qps, specs in query_service(seed)
        for s in specs
    ]


@register_scenario("smoke")
def _scn_smoke(seed: int) -> LabelledSpecs:
    """14-node micro-grid with short timers for CI and engine tests."""
    return _policy_labels(smoke(seed))


def scenario_names() -> Tuple[str, ...]:
    return tuple(SCENARIOS)


def canonical_scenario_name(name: str) -> str:
    """Resolve an E/A alias to its scenario name (identity otherwise)."""
    return SCENARIO_ALIASES.get(name, name)


def scenario_description(name: str) -> str:
    """One-line description of ``name`` (or an E/A alias), from the
    builder's docstring."""
    return SCENARIOS[canonical_scenario_name(name)].description


def unknown_scenario_error(name: str) -> ValueError:
    """The uniform unknown-scenario error every entry point raises:
    close-match suggestions over names *and* E/A aliases, plus the
    registry pointer."""
    candidates = list(SCENARIOS) + list(SCENARIO_ALIASES)
    close = difflib.get_close_matches(name, candidates, n=3, cutoff=0.5)
    hint = f" (did you mean {', '.join(repr(c) for c in close)}?)" if close else ""
    return ValueError(
        f"unknown scenario {name!r}{hint}; "
        "`python -m repro.experiments list` shows the registry"
    )


def scenario_trials(name: str, seed: int = 1) -> LabelledSpecs:
    """Expand scenario ``name`` (or an E/A alias) into labelled specs."""
    canonical = canonical_scenario_name(name)
    if canonical not in SCENARIOS:
        raise unknown_scenario_error(name)
    return SCENARIOS[canonical].build(seed)
