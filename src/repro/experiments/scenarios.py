"""Named experiment scenarios: one per figure/table of the paper.

Each scenario function returns the list of :class:`ExperimentSpec` trials
that regenerate the corresponding figure, at a time scale controlled by the
``REPRO_BENCH_SCALE`` environment variable (default 0.15 of the paper's
40-minute runs so the whole benchmark suite finishes in minutes; set
``REPRO_BENCH_SCALE=1`` or ``REPRO_FULL=1`` for paper-scale runs). Scaling
shrinks only the duration — all rates stay at the paper's values — so the
policy *ratios* the figures compare are preserved.

The experiment ids (E1..E9, A1, A2) are indexed in DESIGN.md.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.core.config import ScoopConfig, ValueDomain
from repro.experiments.runner import ExperimentSpec, scale_spec
from repro.workloads.queries import QueryPlanConfig

#: Value domain of the REAL light trace (paper: "V was at about 150").
REAL_DOMAIN = ValueDomain(0, 149)
#: Value domain of the synthetic sources (paper: "range [0,100]").
SYNTH_DOMAIN = ValueDomain(0, 100)


def bench_scale() -> float:
    """The time-scale factor benchmarks run at (env-controlled)."""
    if os.environ.get("REPRO_FULL"):
        return 1.0
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


def _config(domain: ValueDomain, **overrides) -> ScoopConfig:
    return ScoopConfig(domain=domain, **overrides)


def _spec(
    policy: str, workload: str, domain: ValueDomain, seed: int = 1, **kw
) -> ExperimentSpec:
    config_kw = {k: v for k, v in kw.items() if k in ScoopConfig.__dataclass_fields__}
    other_kw = {k: v for k, v in kw.items() if k not in config_kw}
    spec = ExperimentSpec(
        policy=policy,
        workload=workload,
        scoop=_config(domain, **config_kw),
        seed=seed,
        **other_kw,
    )
    return scale_spec(spec, bench_scale())


# ----------------------------------------------------------------------
# E1 — Figure 3 (left): testbed cost breakdown by message type
# ----------------------------------------------------------------------
def fig3_left(seed: int = 1) -> List[ExperimentSpec]:
    """scoop/unique, scoop/gaussian, local/gaussian, base/gaussian."""
    return [
        _spec("scoop", "unique", SYNTH_DOMAIN, seed),
        _spec("scoop", "gaussian", SYNTH_DOMAIN, seed),
        _spec("local", "gaussian", SYNTH_DOMAIN, seed),
        _spec("base", "gaussian", SYNTH_DOMAIN, seed),
    ]


# ----------------------------------------------------------------------
# E2 — Figure 3 (middle): SCOOP vs LOCAL vs HASH vs BASE on REAL
# ----------------------------------------------------------------------
def fig3_middle(seed: int = 1) -> List[ExperimentSpec]:
    return [
        _spec("scoop", "real", REAL_DOMAIN, seed),
        _spec("local", "real", REAL_DOMAIN, seed),
        _spec("hash", "real", REAL_DOMAIN, seed),
        _spec("base", "real", REAL_DOMAIN, seed),
    ]


# ----------------------------------------------------------------------
# E3 — Figure 3 (right): SCOOP across data sources
# ----------------------------------------------------------------------
def fig3_right(seed: int = 1) -> List[ExperimentSpec]:
    specs = []
    for workload in ("unique", "equal", "real", "gaussian", "random"):
        domain = REAL_DOMAIN if workload == "real" else SYNTH_DOMAIN
        specs.append(_spec("scoop", workload, domain, seed))
    return specs


# ----------------------------------------------------------------------
# E4 — Figure 4: cost vs percentage of nodes queried
# ----------------------------------------------------------------------
def fig4_selectivity(
    seed: int = 1, fractions: Sequence[float] = (0.05, 0.20, 0.40, 0.60, 0.80, 1.00)
) -> List[Tuple[float, List[ExperimentSpec]]]:
    """Node-list queries naming a growing fraction of the sensors."""
    out = []
    for frac in fractions:
        plan = QueryPlanConfig(kind="nodes", node_frac=frac)
        trio = []
        for policy in ("scoop", "local", "base"):
            spec = _spec(policy, "real", REAL_DOMAIN, seed)
            trio.append(dataclasses.replace(spec, query_plan=plan))
        out.append((frac, trio))
    return out


# ----------------------------------------------------------------------
# E5 — Figure 5: cost vs query interval
# ----------------------------------------------------------------------
def fig5_query_interval(
    seed: int = 1, intervals: Sequence[float] = (5.0, 10.0, 15.0, 30.0, 45.0)
) -> List[Tuple[float, List[ExperimentSpec]]]:
    out = []
    for interval in intervals:
        trio = []
        for policy in ("scoop", "local", "base"):
            spec = _spec(policy, "real", REAL_DOMAIN, seed, query_interval=interval)
            trio.append(spec)
        out.append((interval, trio))
    return out


# ----------------------------------------------------------------------
# E6 — loss rates (storage success / owner hit / query retrieval)
# ----------------------------------------------------------------------
def loss_rates(seed: int = 1) -> ExperimentSpec:
    return _spec("scoop", "real", REAL_DOMAIN, seed)


# ----------------------------------------------------------------------
# E7 — root-node load skew and battery lifetimes
# ----------------------------------------------------------------------
def root_skew(seed: int = 1) -> List[ExperimentSpec]:
    return [
        _spec("scoop", "real", REAL_DOMAIN, seed),
        _spec("base", "real", REAL_DOMAIN, seed),
        _spec("local", "real", REAL_DOMAIN, seed),
    ]


# ----------------------------------------------------------------------
# E8 — scaling with network size (REAL less sensitive, RANDOM more)
# ----------------------------------------------------------------------
def scaling(
    seed: int = 1, sizes: Sequence[int] = (25, 63, 100)
) -> List[Tuple[int, List[ExperimentSpec]]]:
    out = []
    for n in sizes:
        pair = [
            _spec("scoop", "real", REAL_DOMAIN, seed, n_nodes=n),
            _spec("scoop", "random", SYNTH_DOMAIN, seed, n_nodes=n),
        ]
        out.append((n, pair))
    return out


# ----------------------------------------------------------------------
# E9 — sample-interval sweep (differences wash out at low data rates)
# ----------------------------------------------------------------------
def sample_interval_sweep(
    seed: int = 1, intervals: Sequence[float] = (15.0, 30.0, 60.0, 120.0)
) -> List[Tuple[float, List[ExperimentSpec]]]:
    out = []
    for interval in intervals:
        specs = []
        for workload in ("unique", "gaussian", "random"):
            specs.append(
                _spec("scoop", workload, SYNTH_DOMAIN, seed, sample_interval=interval)
            )
        out.append((interval, specs))
    return out


# ----------------------------------------------------------------------
# A1 — ablation: owner sets and range placement (Section 4 extensions)
# ----------------------------------------------------------------------
def ablation_extensions(seed: int = 1) -> Dict[str, ExperimentSpec]:
    return {
        "single-owner": _spec("scoop", "gaussian", SYNTH_DOMAIN, seed),
        "owner-set-2": _spec(
            "scoop", "gaussian", SYNTH_DOMAIN, seed, max_owners_per_value=2
        ),
        "range-width-10": _spec(
            "scoop", "gaussian", SYNTH_DOMAIN, seed, range_placement_width=10
        ),
    }


# ----------------------------------------------------------------------
# A2 — ablation: statistics staleness (remap-rate sweep)
# ----------------------------------------------------------------------
def ablation_statistics(
    seed: int = 1, remap_intervals: Sequence[float] = (120.0, 240.0, 480.0)
) -> List[Tuple[float, ExperimentSpec]]:
    return [
        (interval, _spec("scoop", "real", REAL_DOMAIN, seed, remap_interval=interval))
        for interval in remap_intervals
    ]


# ----------------------------------------------------------------------
# SMOKE — a minutes-scale micro-grid for CI and engine tests
# ----------------------------------------------------------------------
def smoke(seed: int = 1) -> List[ExperimentSpec]:
    """Three policies on a 14-node network with short timers.

    Unlike the paper scenarios this ignores ``REPRO_BENCH_SCALE``: it is
    already as small as the topology generator reliably supports, and CI
    plus the campaign-engine tests rely on its few-second runtime.
    """
    config = dict(
        n_nodes=14,
        domain=ValueDomain(0, 20),
        sample_interval=5.0,
        query_interval=10.0,
        summary_interval=20.0,
        remap_interval=40.0,
        stabilization=60.0,
        duration=120.0,
        beacon_interval=5.0,
        query_reply_window=8.0,
    )
    return [
        ExperimentSpec(
            policy=policy,
            workload="gaussian",
            scoop=ScoopConfig(**config),
            seed=seed,
        )
        for policy in ("scoop", "local", "base")
    ]


# ----------------------------------------------------------------------
# Campaign-facing registry: scenario name -> labelled trial list
# ----------------------------------------------------------------------
#
# The figure functions above keep their paper-shaped return types (lists,
# (x, specs) series, dicts) for the benchmarks; the campaign engine needs
# one uniform shape. Each entry maps a scenario name to a builder
# ``f(seed) -> [(label, spec), ...]`` where the label identifies the trial
# *within* the scenario (seeds of the same label aggregate together).

LabelledSpecs = List[Tuple[str, ExperimentSpec]]


def _policy_labels(specs: Iterable[ExperimentSpec]) -> LabelledSpecs:
    return [(f"{s.policy}/{s.workload}", s) for s in specs]


def _series_labels(prefix: str, series, fmt: str = "{:g}") -> LabelledSpecs:
    out: LabelledSpecs = []
    for x, specs in series:
        for s in specs:
            out.append((f"{prefix}={fmt.format(x)}/{s.policy}/{s.workload}", s))
    return out


def _trials_fig4(seed: int) -> LabelledSpecs:
    return [
        (f"frac={frac:g}/{s.policy}", s)
        for frac, specs in fig4_selectivity(seed)
        for s in specs
    ]


def _trials_loss_rates(seed: int) -> LabelledSpecs:
    spec = loss_rates(seed)
    return [(f"{spec.policy}/{spec.workload}", spec)]


def _trials_ablation_extensions(seed: int) -> LabelledSpecs:
    return list(ablation_extensions(seed).items())


def _trials_ablation_statistics(seed: int) -> LabelledSpecs:
    return [
        (f"remap={interval:g}s", spec)
        for interval, spec in ablation_statistics(seed)
    ]


SCENARIOS: Dict[str, Callable[[int], LabelledSpecs]] = {
    "fig3_left": lambda seed: _policy_labels(fig3_left(seed)),
    "fig3_middle": lambda seed: _policy_labels(fig3_middle(seed)),
    "fig3_right": lambda seed: _policy_labels(fig3_right(seed)),
    "fig4_selectivity": _trials_fig4,
    "fig5_query_interval": lambda seed: _series_labels("qi", fig5_query_interval(seed)),
    "loss_rates": _trials_loss_rates,
    "root_skew": lambda seed: _policy_labels(root_skew(seed)),
    "scaling": lambda seed: _series_labels("n", scaling(seed)),
    "sample_interval": lambda seed: _series_labels("si", sample_interval_sweep(seed)),
    "ablation_extensions": _trials_ablation_extensions,
    "ablation_statistics": _trials_ablation_statistics,
    "smoke": lambda seed: _policy_labels(smoke(seed)),
}

#: Experiment ids (DESIGN.md) as aliases for the scenario names.
SCENARIO_ALIASES: Dict[str, str] = {
    "E1": "fig3_left",
    "E2": "fig3_middle",
    "E3": "fig3_right",
    "E4": "fig4_selectivity",
    "E5": "fig5_query_interval",
    "E6": "loss_rates",
    "E7": "root_skew",
    "E8": "scaling",
    "E9": "sample_interval",
    "A1": "ablation_extensions",
    "A2": "ablation_statistics",
}


def scenario_names() -> Tuple[str, ...]:
    return tuple(SCENARIOS)


def scenario_trials(name: str, seed: int = 1) -> LabelledSpecs:
    """Expand scenario ``name`` (or an E/A alias) into labelled specs."""
    canonical = SCENARIO_ALIASES.get(name, name)
    if canonical not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS) + sorted(SCENARIO_ALIASES))
        raise ValueError(f"unknown scenario {name!r}; one of: {known}")
    return SCENARIOS[canonical](seed)
