"""Named experiment scenarios: one per figure/table of the paper.

Each scenario function returns the list of :class:`ExperimentSpec` trials
that regenerate the corresponding figure, at a time scale controlled by the
``REPRO_BENCH_SCALE`` environment variable (default 0.25 of the paper's
40-minute runs so the whole benchmark suite finishes in minutes; set
``REPRO_BENCH_SCALE=1`` or ``REPRO_FULL=1`` for paper-scale runs). Scaling
shrinks only the duration — all rates stay at the paper's values — so the
policy *ratios* the figures compare are preserved.

The experiment ids (E1..E9, A1, A2) are indexed in DESIGN.md.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.config import ScoopConfig, ValueDomain
from repro.experiments.runner import ExperimentSpec, scale_spec
from repro.workloads.queries import QueryPlanConfig

#: Value domain of the REAL light trace (paper: "V was at about 150").
REAL_DOMAIN = ValueDomain(0, 149)
#: Value domain of the synthetic sources (paper: "range [0,100]").
SYNTH_DOMAIN = ValueDomain(0, 100)


def bench_scale() -> float:
    """The time-scale factor benchmarks run at (env-controlled)."""
    if os.environ.get("REPRO_FULL"):
        return 1.0
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


def _config(domain: ValueDomain, **overrides) -> ScoopConfig:
    return ScoopConfig(domain=domain, **overrides)


def _spec(policy: str, workload: str, domain: ValueDomain, seed: int = 1, **kw) -> ExperimentSpec:
    config_kw = {k: v for k, v in kw.items() if k in ScoopConfig.__dataclass_fields__}
    other_kw = {k: v for k, v in kw.items() if k not in config_kw}
    spec = ExperimentSpec(
        policy=policy,
        workload=workload,
        scoop=_config(domain, **config_kw),
        seed=seed,
        **other_kw,
    )
    return scale_spec(spec, bench_scale())


# ----------------------------------------------------------------------
# E1 — Figure 3 (left): testbed cost breakdown by message type
# ----------------------------------------------------------------------
def fig3_left(seed: int = 1) -> List[ExperimentSpec]:
    """scoop/unique, scoop/gaussian, local/gaussian, base/gaussian."""
    return [
        _spec("scoop", "unique", SYNTH_DOMAIN, seed),
        _spec("scoop", "gaussian", SYNTH_DOMAIN, seed),
        _spec("local", "gaussian", SYNTH_DOMAIN, seed),
        _spec("base", "gaussian", SYNTH_DOMAIN, seed),
    ]


# ----------------------------------------------------------------------
# E2 — Figure 3 (middle): SCOOP vs LOCAL vs HASH vs BASE on REAL
# ----------------------------------------------------------------------
def fig3_middle(seed: int = 1) -> List[ExperimentSpec]:
    return [
        _spec("scoop", "real", REAL_DOMAIN, seed),
        _spec("local", "real", REAL_DOMAIN, seed),
        _spec("hash", "real", REAL_DOMAIN, seed),
        _spec("base", "real", REAL_DOMAIN, seed),
    ]


# ----------------------------------------------------------------------
# E3 — Figure 3 (right): SCOOP across data sources
# ----------------------------------------------------------------------
def fig3_right(seed: int = 1) -> List[ExperimentSpec]:
    specs = []
    for workload in ("unique", "equal", "real", "gaussian", "random"):
        domain = REAL_DOMAIN if workload == "real" else SYNTH_DOMAIN
        specs.append(_spec("scoop", workload, domain, seed))
    return specs


# ----------------------------------------------------------------------
# E4 — Figure 4: cost vs percentage of nodes queried
# ----------------------------------------------------------------------
def fig4_selectivity(
    seed: int = 1, fractions: Sequence[float] = (0.05, 0.20, 0.40, 0.60, 0.80, 1.00)
) -> List[Tuple[float, List[ExperimentSpec]]]:
    """Node-list queries naming a growing fraction of the sensors."""
    out = []
    for frac in fractions:
        plan = QueryPlanConfig(kind="nodes", node_frac=frac)
        trio = []
        for policy in ("scoop", "local", "base"):
            spec = _spec(policy, "real", REAL_DOMAIN, seed)
            trio.append(dataclasses.replace(spec, query_plan=plan))
        out.append((frac, trio))
    return out


# ----------------------------------------------------------------------
# E5 — Figure 5: cost vs query interval
# ----------------------------------------------------------------------
def fig5_query_interval(
    seed: int = 1, intervals: Sequence[float] = (5.0, 10.0, 15.0, 30.0, 45.0)
) -> List[Tuple[float, List[ExperimentSpec]]]:
    out = []
    for interval in intervals:
        trio = []
        for policy in ("scoop", "local", "base"):
            spec = _spec(policy, "real", REAL_DOMAIN, seed, query_interval=interval)
            trio.append(spec)
        out.append((interval, trio))
    return out


# ----------------------------------------------------------------------
# E6 — loss rates (storage success / owner hit / query retrieval)
# ----------------------------------------------------------------------
def loss_rates(seed: int = 1) -> ExperimentSpec:
    return _spec("scoop", "real", REAL_DOMAIN, seed)


# ----------------------------------------------------------------------
# E7 — root-node load skew and battery lifetimes
# ----------------------------------------------------------------------
def root_skew(seed: int = 1) -> List[ExperimentSpec]:
    return [
        _spec("scoop", "real", REAL_DOMAIN, seed),
        _spec("base", "real", REAL_DOMAIN, seed),
        _spec("local", "real", REAL_DOMAIN, seed),
    ]


# ----------------------------------------------------------------------
# E8 — scaling with network size (REAL less sensitive, RANDOM more)
# ----------------------------------------------------------------------
def scaling(
    seed: int = 1, sizes: Sequence[int] = (25, 63, 100)
) -> List[Tuple[int, List[ExperimentSpec]]]:
    out = []
    for n in sizes:
        pair = [
            _spec("scoop", "real", REAL_DOMAIN, seed, n_nodes=n),
            _spec("scoop", "random", SYNTH_DOMAIN, seed, n_nodes=n),
        ]
        out.append((n, pair))
    return out


# ----------------------------------------------------------------------
# E9 — sample-interval sweep (differences wash out at low data rates)
# ----------------------------------------------------------------------
def sample_interval_sweep(
    seed: int = 1, intervals: Sequence[float] = (15.0, 30.0, 60.0, 120.0)
) -> List[Tuple[float, List[ExperimentSpec]]]:
    out = []
    for interval in intervals:
        specs = []
        for workload in ("unique", "gaussian", "random"):
            specs.append(
                _spec("scoop", workload, SYNTH_DOMAIN, seed, sample_interval=interval)
            )
        out.append((interval, specs))
    return out


# ----------------------------------------------------------------------
# A1 — ablation: owner sets and range placement (Section 4 extensions)
# ----------------------------------------------------------------------
def ablation_extensions(seed: int = 1) -> Dict[str, ExperimentSpec]:
    return {
        "single-owner": _spec("scoop", "gaussian", SYNTH_DOMAIN, seed),
        "owner-set-2": _spec(
            "scoop", "gaussian", SYNTH_DOMAIN, seed, max_owners_per_value=2
        ),
        "range-width-10": _spec(
            "scoop", "gaussian", SYNTH_DOMAIN, seed, range_placement_width=10
        ),
    }


# ----------------------------------------------------------------------
# A2 — ablation: statistics staleness (remap-rate sweep)
# ----------------------------------------------------------------------
def ablation_statistics(
    seed: int = 1, remap_intervals: Sequence[float] = (120.0, 240.0, 480.0)
) -> List[Tuple[float, ExperimentSpec]]:
    return [
        (interval, _spec("scoop", "real", REAL_DOMAIN, seed, remap_interval=interval))
        for interval in remap_intervals
    ]
