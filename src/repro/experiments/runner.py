"""End-to-end experiment runner: policy × workload × parameters → counts.

This is the reproduction's equivalent of the paper's testbed/TOSSIM driver:
it wires a topology, a storage policy (SCOOP, LOCAL, BASE, or simulated
HASH), a data workload and a query stream into one
:class:`~repro.sim.network.Network`, runs the paper's timeline (boot →
10-minute stabilization → 40-minute measured phase), and returns the
message census broken down into the paper's categories plus the delivery
and energy statistics the text reports.

The analytical HASH evaluation (the paper's own methodology for that
baseline) is exposed as :func:`run_hash_analytical`.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.hash_static import AnalyticalHashModel
from repro.core.basestation import Basestation
from repro.core.config import (
    ScoopConfig,
    canonical_key,
    dataclass_from_dict,
    dataclass_to_dict,
)
from repro.core.node import ScoopNode
from repro.core.query import QueryResult
from repro.experiments.registry import is_registered, known_policies, policy_factory
from repro.experiments.salt import cache_salt
from repro.sim.failure import FailureSchedule
from repro.sim.metrics import TrialMetrics
from repro.sim.network import Network
from repro.sim.topology import (
    Topology,
    degrade,
    indoor_testbed,
    line,
    near_square_grid,
    random_geometric,
)
from repro.experiments.oracle import score_trial
from repro.workloads import (
    WORKLOAD_NAMES,
    MultiAttributeWorkload,
    Workload,
    make_workload,
)
from repro.workloads.queries import QueryPlanConfig

#: The storage policies of the paper's experiments (Section 6 table). The
#: live set (including plug-in policies) is
#: :func:`repro.experiments.registry.known_policies`.
POLICIES = ("scoop", "local", "base", "hash")

#: Topology profiles an :class:`ExperimentSpec` can name (all built from
#: the generators in :mod:`repro.sim.topology`).
TOPOLOGY_KINDS = ("testbed", "geometric", "line", "grid")

#: Bumped whenever spec/result serialization changes shape, so stale
#: entries in the persistent result cache miss instead of deserializing
#: garbage. v2: results carry a structured :class:`TrialMetrics` record
#: and keys are salted with the source-tree hash (:mod:`.salt`). v3:
#: specs grew churn fields (E14), metrics grew the data-survival
#: breakdown, results grew ``retrieval_completeness``. v4: the
#: multi-attribute schema (E15) — configs carry an attribute registry,
#: query plans an attribute count, and metrics per-attribute counters
#: plus the query-oracle scorecard. v5: metrics carry a ``timing`` record
#: (simulator event counts/throughput) and the radio draws its randomness
#: from a dedicated batched stream, which changes trial trajectories. v6:
#: specs grew the serving-layer knobs (E16: ``service_qps`` and the
#: gateway limits) and metrics a ``service`` scorecard. v7: metrics
#: carry the per-shard serving breakdown (``service_shards``) that the
#: sharded multi-process gateway reports.
SPEC_SCHEMA_VERSION = 7


@dataclass
class ExperimentSpec:
    """Everything that defines one trial."""

    policy: str = "scoop"
    workload: str = "real"
    scoop: ScoopConfig = field(default_factory=ScoopConfig)
    query_plan: QueryPlanConfig = field(default_factory=QueryPlanConfig)
    seed: int = 0
    #: Topology profile: "testbed" (the 62+1 indoor layout), "geometric"
    #: (the simulated ~20%-degree profile), "line" (1-D chain) or "grid"
    #: (near-square lattice); or pass an explicit topology to
    #: run_experiment.
    topology_kind: str = "testbed"
    #: Additional independent per-frame loss applied to every audible
    #: link of the generated topology (the loss-sweep knob; see
    #: :func:`repro.sim.topology.degrade`). 0 = the generator's native
    #: loss regime — which is 0 for the lossless line/grid lattices.
    link_loss: float = 0.0
    #: Node churn (E14): fraction of the sensor population killed at
    #: seeded random times during the measured phase
    #: (:class:`repro.sim.failure.FailureSchedule`). 0 = no failure
    #: injection.
    churn_rate: float = 0.0
    #: Of the killed nodes, the fraction that cold-reboot after
    #: ``churn_downtime_frac`` of the measured duration (flash intact,
    #: RAM state lost).
    churn_revive_frac: float = 0.0
    #: Downtime of reviving nodes, as a fraction of the measured
    #: duration — relative, so time-scaled runs keep the same churn
    #: dynamics.
    churn_downtime_frac: float = 0.25
    #: Run the HASH policy through the full simulator instead of the
    #: paper's analytical model. The multi-attribute grid (E15) sets
    #: this so every cell carries the same structured metrics
    #: (per-attribute counters, oracle scorecard); the paper scenarios
    #: keep the analytical evaluation.
    hash_simulated: bool = False
    #: Serving load (E16): offered external query rate in requests per
    #: simulated second. 0 = a plain batch trial (the internal
    #: generator's query stream); > 0 replaces that stream with the
    #: deterministic load-test driver
    #: (:func:`repro.service.loadtest.drive_load`) and exports the
    #: serving scorecard through ``TrialMetrics.service``.
    service_qps: float = 0.0
    #: Admission-control bound: per-tenant queued requests beyond this
    #: are shed with an explicit status.
    service_queue_depth: int = 8
    #: Basestation queries issued per batch window at most.
    service_batch_capacity: int = 4
    #: Value-domain buckets for answer-cache keys and query coalescing
    #: (0 or 1 disables quantization — whole-domain queries).
    service_cache_buckets: int = 16

    def __post_init__(self) -> None:
        if not is_registered(self.policy):
            raise ValueError(
                f"unknown policy {self.policy!r}; one of {known_policies()}"
            )
        if self.workload not in WORKLOAD_NAMES:
            raise ValueError(
                f"unknown workload {self.workload!r}; one of {WORKLOAD_NAMES}"
            )
        if self.topology_kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.topology_kind!r}; "
                f"one of {TOPOLOGY_KINDS}"
            )
        if not 0.0 <= self.link_loss < 1.0:
            raise ValueError(f"link_loss must be in [0, 1), got {self.link_loss}")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ValueError(f"churn_rate must be in [0, 1], got {self.churn_rate}")
        if not 0.0 <= self.churn_revive_frac <= 1.0:
            raise ValueError(
                f"churn_revive_frac must be in [0, 1], got {self.churn_revive_frac}"
            )
        if not 0.0 < self.churn_downtime_frac <= 1.0:
            raise ValueError(
                f"churn_downtime_frac must be in (0, 1], got "
                f"{self.churn_downtime_frac}"
            )
        if self.service_qps < 0:
            raise ValueError(f"service_qps must be >= 0, got {self.service_qps}")
        if self.service_queue_depth < 1:
            raise ValueError(
                f"service_queue_depth must be >= 1, got {self.service_queue_depth}"
            )
        if self.service_batch_capacity < 1:
            raise ValueError(
                f"service_batch_capacity must be >= 1, "
                f"got {self.service_batch_capacity}"
            )
        if self.service_cache_buckets < 0:
            raise ValueError(
                f"service_cache_buckets must be >= 0, "
                f"got {self.service_cache_buckets}"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping; inverse of :meth:`from_dict`.

        This (not ``repr``/``asdict``) is the canonical serialization:
        it feeds :func:`spec_key` and the persistent result cache, and it
        is how specs cross process boundaries in parallel campaigns.
        Generic field enumeration, so future fields automatically enter
        the cache key.
        """
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentSpec":
        return dataclass_from_dict(
            cls,
            data,
            converters={
                "scoop": ScoopConfig.from_dict,
                "query_plan": QueryPlanConfig.from_dict,
            },
        )


def spec_key(spec: ExperimentSpec, analytical: bool = False) -> str:
    """Canonical SHA-256 key of one trial (spec + evaluation mode + code).

    Stable across processes and sessions — the key of the persistent
    result cache. ``analytical`` distinguishes the paper's analytical
    HASH evaluation from a simulated run of the same spec. The key also
    mixes in :func:`repro.experiments.salt.cache_salt` (a content hash of
    the ``repro`` source tree, ``REPRO_CACHE_SALT`` overrides), so editing
    simulator code self-invalidates every cached entry — ``clear-cache``
    is housekeeping, not correctness.
    """
    return canonical_key(
        {
            "schema": SPEC_SCHEMA_VERSION,
            "salt": cache_salt(),
            "analytical": bool(analytical),
            "spec": spec.to_dict(),
        }
    )


@dataclass
class ExperimentResult:
    """Measured outcome of one trial, in the paper's terms."""

    spec: ExperimentSpec
    #: Figure 3 categories: data / summary / mapping / "query/reply".
    breakdown: Dict[str, float]
    #: total messages sent (the paper's cost metric).
    total_messages: float
    #: E6 statistics.
    storage_success_rate: float = 0.0
    owner_hit_rate: float = 0.0
    query_reply_rate: float = 0.0
    #: E14 statistic: fraction of produced readings still retrievable at
    #: the end of the trial (readings orphaned on dead nodes' flash are
    #: not). Equals storage_success_rate when nothing fails.
    retrieval_completeness: float = 0.0
    #: E7 statistics (root = node 0).
    root_sent: int = 0
    root_received: int = 0
    mean_node_energy_j: float = 0.0
    root_energy_j: float = 0.0
    #: workload volume for sanity checks.
    readings_produced: int = 0
    queries_issued: int = 0
    #: SCOOP diagnostics.
    remaps_run: int = 0
    remaps_suppressed: int = 0
    indices_disseminated: int = 0
    mean_nodes_targeted: float = 0.0
    analytical: bool = False
    #: Structured per-trial telemetry (message/energy/load breakdowns).
    #: ``None`` for analytical evaluations, which have no simulator to
    #: meter.
    metrics: Optional[TrialMetrics] = None

    @property
    def policy(self) -> str:
        return self.spec.policy

    @property
    def workload(self) -> str:
        return self.spec.workload

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return dataclass_to_dict(self)

    def deterministic_dict(self) -> Dict[str, object]:
        """:meth:`to_dict` minus the wall-clock timing — every field that
        is a pure function of the spec. This is what serial-vs-parallel
        and cache-replay identity checks compare."""
        out = self.to_dict()
        if out.get("metrics"):
            metrics = dict(out["metrics"], wall_clock_s=0.0)
            # timing.events_processed is deterministic (kernel event count);
            # events_per_sec is wall-clock derived and must be dropped.
            timing = dict(metrics.get("timing") or {})
            timing.pop("events_per_sec", None)
            metrics["timing"] = timing
            out["metrics"] = metrics
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        return dataclass_from_dict(
            cls,
            data,
            converters={
                "spec": ExperimentSpec.from_dict,
                "breakdown": dict,
                "metrics": TrialMetrics.from_dict,
            },
        )


def scale_spec(spec: ExperimentSpec, factor: float) -> ExperimentSpec:
    """Shrink the experiment timeline by ``factor`` for quick runs.

    Durations shrink; rates (sample/query/summary/remap intervals) are kept
    so per-second dynamics are untouched — only fewer of everything
    happens. Message *ratios* between policies are preserved, which is what
    the figures compare.
    """
    if factor >= 0.999:
        return spec
    scoop = dataclasses.replace(
        spec.scoop,
        duration=max(300.0, spec.scoop.duration * factor),
        stabilization=max(240.0, spec.scoop.stabilization * factor),
    )
    return dataclasses.replace(spec, scoop=scoop)


def build_workload(spec: ExperimentSpec, topology: Topology) -> Workload:
    """The trial's data source: the named single-attribute family, or the
    correlated multi-attribute wrapper when the config registers several
    attributes (E15)."""
    config = spec.scoop
    if config.n_attributes > 1:
        return MultiAttributeWorkload(
            spec.workload,
            config.attribute_specs,
            config.n_nodes,
            seed=spec.seed,
            positions=topology.positions,
        )
    return make_workload(
        spec.workload,
        config.domain,
        config.n_nodes,
        seed=spec.seed,
        positions=topology.positions,
    )


def build_topology(spec: ExperimentSpec) -> Topology:
    n = spec.scoop.n_nodes
    if spec.topology_kind == "testbed":
        topo = indoor_testbed(n, seed=spec.seed + 7)
    elif spec.topology_kind == "geometric":
        topo = random_geometric(n, seed=spec.seed + 7)
    elif spec.topology_kind == "line":
        topo = line(n)
    elif spec.topology_kind == "grid":
        topo = near_square_grid(n)
    else:
        raise ValueError(f"unknown topology kind {spec.topology_kind!r}")
    return degrade(topo, spec.link_loss)


#: Kill times land in this fraction of the measured phase (after
#: stabilization): late enough that the network is doing real work, early
#: enough that staleness eviction and the next remap happen in-run.
CHURN_KILL_WINDOW = (0.10, 0.50)


def build_failure_schedule(spec: ExperimentSpec) -> Optional[FailureSchedule]:
    """The trial's churn schedule, or None when the spec injects none.

    Derived from the spec alone (the schedule RNG is seeded by
    ``spec.seed`` and never touches the simulation RNG), so it is
    identical in serial and pooled execution and cache keys stay honest.
    The window scales with the configured durations, so time-scaled runs
    keep the paper-relative churn dynamics.
    """
    if spec.churn_rate <= 0.0:
        return None
    config = spec.scoop
    lo, hi = CHURN_KILL_WINDOW
    return FailureSchedule.from_rate(
        rate=spec.churn_rate,
        nodes=list(config.sensor_ids),
        window=(
            config.stabilization + lo * config.duration,
            config.stabilization + hi * config.duration,
        ),
        seed=spec.seed,
        revive_frac=spec.churn_revive_frac,
        downtime=spec.churn_downtime_frac * config.duration,
    )


def build_motes(
    spec: ExperimentSpec, net: Network, workload: Workload
) -> Tuple[Basestation, List[ScoopNode]]:
    """Instantiate and wire the motes of ``spec.policy`` into ``net``.

    Dispatches through the policy registry, so plug-in policies
    (``register_policy``) run through the exact same pipeline as the
    paper's four.
    """
    base, nodes = policy_factory(spec.policy)(spec, net, workload)
    net.add_mote(base)
    for node in nodes:
        net.add_mote(node)
    return base, nodes


def run_experiment(
    spec: ExperimentSpec,
    topology: Optional[Topology] = None,
    on_query_result: Optional[Callable[[QueryResult], None]] = None,
) -> ExperimentResult:
    """Run one full trial and collect the paper's measurements.

    A thin batch driver over :class:`repro.service.deployment.Deployment`
    (imported lazily — the service package imports this module's
    builders): the facade runs the paper's phases in exactly the order
    this function used to inline, so trial trajectories are
    byte-identical to the pre-facade runner. Specs with
    ``service_qps > 0`` replace the internal query stream with the E16
    offered-load driver.
    """
    from repro.service.deployment import Deployment

    # Wall-clock capture of trial *execution* time — reported via
    # TrialMetrics.timing, never fed back into the simulation.
    # repro: allow[DET02] deliberate wall-clock capture of trial runtime
    started = time.perf_counter()
    config = spec.scoop
    deployment = Deployment.create(spec, topology=topology)

    # Phase 1: boot and stabilize the routing tree (paper: 10 minutes of
    # heartbeats before sampling starts).
    deployment.boot()

    # Phase 2: the measured workload.
    deployment.stabilize()
    if spec.service_qps > 0:
        from repro.service.loadtest import drive_load

        drive_load(deployment)
        deployment.run_until(config.stabilization + config.duration)
    else:
        deployment.start_query_stream(on_result=on_query_result)
        deployment.run_until(config.stabilization + config.duration)

    # Phase 3: drain — flush batches, let in-flight frames land.
    deployment.drain()

    # repro: allow[DET02] end of the same wall-clock capture; purely telemetry
    return deployment.collect(wall_clock_s=time.perf_counter() - started)


def _collect(
    spec: ExperimentSpec,
    net: Network,
    base: Basestation,
    queries_issued: int,
    wall_clock_s: float = 0.0,
    service: Optional[Dict[str, float]] = None,
    service_shards: Optional[Dict[str, Dict[str, float]]] = None,
) -> ExperimentResult:
    census = net.census
    tracker = net.tracker
    root = spec.scoop.basestation_id
    targeted = [len(q.nodes_targeted) for q in base.query_log]
    # Ground-truth oracle scorecard: exact per-query answer sets replayed
    # from the tracker, plus per-attribute planner/delivery counters.
    oracle, attributes = score_trial(base.query_log, tracker, spec.scoop)
    events = net.sim.events_executed
    timing = {
        "events_processed": float(events),
        "events_per_sec": (
            round(events / wall_clock_s, 1) if wall_clock_s > 0 else 0.0
        ),
    }
    metrics = TrialMetrics.collect(
        census,
        net.energy,
        root=root,
        planner=getattr(base, "planner_stats", None),
        sim_time_s=net.sim.now,
        wall_clock_s=wall_clock_s,
        tracker=tracker,
        attributes=attributes,
        oracle=oracle,
        service=service,
        service_shards=service_shards,
        timing=timing,
    )
    return ExperimentResult(
        spec=spec,
        breakdown=census.breakdown(),
        total_messages=census.total_sent(),
        storage_success_rate=tracker.storage_success_rate(),
        owner_hit_rate=tracker.owner_hit_rate(),
        query_reply_rate=tracker.query_reply_rate(),
        retrieval_completeness=tracker.retrieval_completeness(net.sim.now),
        root_sent=census.node_sent(root),
        root_received=census.node_received(root),
        mean_node_energy_j=net.energy.mean_node_j(exclude=(root,)),
        root_energy_j=net.energy.node_energy(root).total_j,
        readings_produced=len(tracker.readings),
        queries_issued=queries_issued,
        remaps_run=getattr(base, "remaps_run", 0),
        remaps_suppressed=getattr(base, "remaps_suppressed", 0),
        indices_disseminated=len(base.index_history),
        mean_nodes_targeted=(sum(targeted) / len(targeted)) if targeted else 0.0,
        metrics=metrics,
    )


def run_hash_analytical(
    spec: ExperimentSpec, topology: Optional[Topology] = None
) -> ExperimentResult:
    """The paper's analytical HASH evaluation over the same workload."""
    config = spec.scoop
    topo = topology if topology is not None else build_topology(spec)
    workload = build_workload(spec, topo)
    model = AnalyticalHashModel(topo, config, salt=spec.seed)
    estimate = model.estimate(
        workload, spec.query_plan, config.duration, seed=spec.seed
    )
    spec_out = dataclasses.replace(spec, policy="hash")
    n_queries = int(config.duration / config.query_interval)
    n_samples = (
        (config.n_nodes - 1)
        * config.n_attributes
        * int(config.duration / config.sample_interval)
    )
    return ExperimentResult(
        spec=spec_out,
        breakdown=estimate.breakdown(),
        total_messages=estimate.total,
        readings_produced=n_samples,
        queries_issued=n_queries,
        analytical=True,
    )
