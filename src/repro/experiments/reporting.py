"""Text rendering of experiment results in the paper's format.

The benchmarks print these tables so a run of ``pytest benchmarks/``
regenerates the same rows/series the paper's figures report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.runner import ExperimentResult

#: Figure 3's stacked-bar categories, in the paper's legend order.
CATEGORIES = ("data", "summary", "mapping", "query/reply")


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Align a list of rows under headers, monospace-table style."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def breakdown_row(result: ExperimentResult) -> List[object]:
    """One stacked-bar row: policy/workload plus per-category counts."""
    label = f"{result.policy}/{result.workload}"
    cells: List[object] = [label]
    for category in CATEGORIES:
        cells.append(int(result.breakdown.get(category, 0)))
    cells.append(int(result.total_messages))
    return cells


def breakdown_table(results: Sequence[ExperimentResult], title: str) -> str:
    headers = ["system/source", *CATEGORIES, "total"]
    return format_table(headers, [breakdown_row(r) for r in results], title=title)


def series_table(
    x_label: str,
    series: Dict[str, List[float]],
    x_values: Sequence[object],
    title: str,
    y_label: str = "messages",
) -> str:
    """A figure-4/5 style table: one row per x value, one column per policy."""
    headers = [x_label] + [f"{name} ({y_label})" for name in series]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [int(series[name][i]) for name in series])
    return format_table(headers, rows, title=title)


def campaign_table(aggregates, title: str) -> str:
    """Per-label campaign summary: seeds, mean±stdev total, category means.

    ``aggregates`` is the output of
    :meth:`repro.experiments.campaign.CampaignResult.aggregates`.
    """
    headers = ["trial", "seeds", "total (mean)", "total (sd)", *CATEGORIES]
    rows = []
    for agg in aggregates:
        rows.append(
            [
                agg.label,
                agg.n,
                f"{agg.mean_total:.0f}",
                f"{agg.stdev_total:.1f}",
                *[f"{agg.mean_breakdown.get(c, 0.0):.0f}" for c in CATEGORIES],
            ]
        )
    return format_table(headers, rows, title=title)


def rates_table(result: ExperimentResult, title: str) -> str:
    headers = ["metric", "measured", "paper"]
    rows = [
        ["data stored successfully", f"{result.storage_success_rate:.0%}", "~93%"],
        ["stored at mapped owner", f"{result.owner_hit_rate:.0%}", "~85%"],
        ["query results retrieved", f"{result.query_reply_rate:.0%}", "~78%"],
    ]
    return format_table(headers, rows, title=title)
