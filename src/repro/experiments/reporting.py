"""Text rendering of experiment results in the paper's format.

The benchmarks print these tables so a run of ``pytest benchmarks/``
regenerates the same rows/series the paper's figures report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.experiments.runner import ExperimentResult

#: Figure 3's stacked-bar categories, in the paper's legend order.
CATEGORIES = ("data", "summary", "mapping", "query/reply")


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Align a list of rows under headers, monospace-table style."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def breakdown_row(result: ExperimentResult) -> List[object]:
    """One stacked-bar row: policy/workload plus per-category counts."""
    label = f"{result.policy}/{result.workload}"
    cells: List[object] = [label]
    for category in CATEGORIES:
        cells.append(int(result.breakdown.get(category, 0)))
    cells.append(int(result.total_messages))
    return cells


def breakdown_table(results: Sequence[ExperimentResult], title: str) -> str:
    headers = ["system/source", *CATEGORIES, "total"]
    return format_table(headers, [breakdown_row(r) for r in results], title=title)


def series_table(
    x_label: str,
    series: Dict[str, List[float]],
    x_values: Sequence[object],
    title: str,
    y_label: str = "messages",
) -> str:
    """A figure-4/5 style table: one row per x value, one column per policy."""
    headers = [x_label] + [f"{name} ({y_label})" for name in series]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [int(series[name][i]) for name in series])
    return format_table(headers, rows, title=title)


def campaign_table(aggregates, title: str) -> str:
    """Per-label campaign summary: seeds, mean/sd/95% CI total, category
    means.

    ``aggregates`` is the output of
    :meth:`repro.experiments.campaign.CampaignResult.aggregates`.
    """
    headers = [
        "trial",
        "seeds",
        "total (mean)",
        "total (sd)",
        "total (ci95)",
        *CATEGORIES,
    ]
    rows = []
    for agg in aggregates:
        rows.append(
            [
                agg.label,
                agg.n,
                f"{agg.mean_total:.0f}",
                f"{agg.stdev_total:.1f}",
                f"{agg.ci95_total:.1f}",
                *[f"{agg.mean_breakdown.get(c, 0.0):.0f}" for c in CATEGORIES],
            ]
        )
    return format_table(headers, rows, title=title)


def plus_minus(mean: float, ci95: float) -> str:
    """``mean ± ci`` rendering; a bare mean when there is no spread
    estimate (single seed)."""
    if ci95 > 0:
        return f"{mean:.0f} ± {ci95:.0f}"
    return f"{mean:.0f}"


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """GitHub-flavored markdown table."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def figure_table_markdown(doc: Dict[str, object]) -> str:
    """The campaign's figure table in markdown, from an export document
    (:func:`repro.experiments.export.load_campaign_export`): per label,
    the across-seed total and per-category means with 95% confidence
    half-widths."""
    labels: List[Dict[str, object]] = doc.get("labels", [])
    categories: List[str] = [c for c in CATEGORIES]
    extra = sorted(
        {
            cat
            for entry in labels
            for cat in entry.get("breakdown", {})
            if cat not in CATEGORIES
        }
    )
    categories += extra
    headers = ["trial", "seeds", "total (messages)", *categories]
    rows = []
    for entry in labels:
        total = entry.get("total", {})
        breakdown = entry.get("breakdown", {})
        row: List[object] = [
            entry.get("label", ""),
            entry.get("n", 0),
            plus_minus(total.get("mean", 0.0), total.get("ci95", 0.0)),
        ]
        for cat in categories:
            stats = breakdown.get(cat)
            row.append(
                plus_minus(stats["mean"], stats.get("ci95", 0.0)) if stats else "—"
            )
        rows.append(row)
    title = (
        f"**Campaign `{doc.get('name', '?')}`** — seeds {doc.get('seeds', [])}, "
        f"generated {doc.get('generated_at', '?')} "
        f"(mean ± 95% CI across seeds)"
    )
    table = title + "\n\n" + markdown_table(headers, rows)
    service = _service_table(doc)
    if service:
        table += "\n\n" + service
    throughput = _throughput_line(doc)
    if throughput:
        table += "\n\n" + throughput
    return table


def _service_table(doc: Dict[str, object]) -> str:
    """Serving scorecard table for query-service campaigns (E16): per
    label, the across-seed mean offered/served rates, latency
    percentiles, cache hit rate and shed rate (from
    ``TrialMetrics.service``; empty string for non-serving campaigns)."""
    by_label: Dict[str, List[Dict[str, float]]] = {}
    for trial in doc.get("trials", []):
        metrics = (trial.get("result") or {}).get("metrics") or {}
        service = metrics.get("service") or {}
        if service:
            by_label.setdefault(str(trial.get("label")), []).append(service)
    if not by_label:
        return ""
    ordered = [
        str(entry.get("label"))
        for entry in doc.get("labels", [])
        if str(entry.get("label")) in by_label
    ] or sorted(by_label)

    def mean_of(snaps: List[Dict[str, float]], key: str) -> float:
        values = [float(s.get(key, 0.0)) for s in snaps]
        return sum(values) / len(values) if values else 0.0

    headers = [
        "trial",
        "qps offered",
        "qps served",
        "p50 (s)",
        "p95 (s)",
        "p99 (s)",
        "hit rate",
        "shed rate",
    ]
    rows = []
    for label in ordered:
        snaps = by_label[label]
        rows.append(
            [
                label,
                f"{mean_of(snaps, 'qps_offered'):.3f}",
                f"{mean_of(snaps, 'qps_served'):.3f}",
                f"{mean_of(snaps, 'latency_p50_s'):.2f}",
                f"{mean_of(snaps, 'latency_p95_s'):.2f}",
                f"{mean_of(snaps, 'latency_p99_s'):.2f}",
                f"{mean_of(snaps, 'cache_hit_rate'):.2f}",
                f"{mean_of(snaps, 'shed_rate'):.2f}",
            ]
        )
    return (
        "Serving scorecard (simulated-time latencies, mean across seeds):\n\n"
        + markdown_table(headers, rows)
    )


def _throughput_line(doc: Dict[str, object]) -> str:
    """Simulator throughput footer: kernel events executed and events/sec
    across the campaign's simulated trials (from ``TrialMetrics.timing``;
    analytical trials carry no simulator and are skipped)."""
    events = 0.0
    rates: List[float] = []
    for trial in doc.get("trials", []):
        metrics = (trial.get("result") or {}).get("metrics") or {}
        timing = metrics.get("timing") or {}
        if "events_processed" in timing:
            events += timing["events_processed"]
            rate = timing.get("events_per_sec", 0.0)
            if rate > 0:
                rates.append(rate)
    if events <= 0:
        return ""
    line = f"Simulator throughput: {events:,.0f} kernel events"
    if rates:
        line += f", mean {sum(rates) / len(rates):,.0f} events/sec per trial"
    return line


def rates_table(result: ExperimentResult, title: str) -> str:
    headers = ["metric", "measured", "paper"]
    rows = [
        ["data stored successfully", f"{result.storage_success_rate:.0%}", "~93%"],
        ["stored at mapped owner", f"{result.owner_hit_rate:.0%}", "~85%"],
        ["query results retrieved", f"{result.query_reply_rate:.0%}", "~78%"],
    ]
    return format_table(headers, rows, title=title)
