"""Code salt for cache keys: a content hash of the ``repro`` source tree.

The persistent result cache keys trials by their spec, which historically
ignored simulator *code* — after editing the simulator you had to remember
``clear-cache`` or keep reading stale results. :func:`cache_salt` closes
that hole: :func:`repro.experiments.runner.spec_key` hashes this salt into
every key, so editing any ``.py`` file under ``src/repro/`` changes every
key and the next run re-executes, while the old entries are simply
orphaned on disk (and swept by ``clear-cache``).

``REPRO_CACHE_SALT`` overrides the tree hash with a fixed string — useful
to keep a cache warm across code changes that are known not to affect
results (comment edits, reporting tweaks), or to pin keys in tests.
"""

from __future__ import annotations

import functools
import hashlib
import os
from pathlib import Path
from typing import Optional

#: Environment variable that replaces the computed source-tree hash.
SALT_ENV = "REPRO_CACHE_SALT"


def package_root() -> Path:
    """The ``repro`` package directory whose sources are hashed."""
    return Path(__file__).resolve().parents[1]


def source_tree_hash(root: Optional[Path] = None) -> str:
    """SHA-256 over the relative path + content of every ``.py`` under
    ``root`` (default: the installed ``repro`` package), sorted so the
    digest is independent of directory-walk order.

    Byte content is hashed, not mtimes, so rebuilding or re-checking-out
    identical sources keeps the same salt. An unreadable or missing tree
    (zipimport, stripped install) degrades to a constant, i.e. salting
    is disabled rather than erroring.
    """
    base = Path(root) if root is not None else package_root()
    if not base.is_dir():
        return "no-source-tree"
    digest = hashlib.sha256()
    try:
        for path in sorted(base.rglob("*.py")):
            digest.update(str(path.relative_to(base)).encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
    except OSError:
        return "no-source-tree"
    return digest.hexdigest()


@functools.lru_cache(maxsize=None)
def _tree_hash_cached() -> str:
    # One stat+read pass per process; sources do not change mid-run (and
    # if they did, a stale in-process salt is no worse than the pre-salt
    # behaviour).
    return source_tree_hash()


def cache_salt() -> str:
    """The salt mixed into every spec key: ``$REPRO_CACHE_SALT`` if set
    (any fixed string, the empty string included), else the memoized
    source-tree hash."""
    env = os.environ.get(SALT_ENV)
    if env is not None:
        return env
    return _tree_hash_cached()
