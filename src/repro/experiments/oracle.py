"""Ground-truth query oracle: exact answer sets, replayed outside the sim.

Every reading a trial produces is recorded by the
:class:`~repro.sim.metrics.DeliveryTracker` with its attribute, value,
producer and timestamps. Replaying that record against a query's
predicate — attribute, time range, and value range or node list — yields
the *exact* answer set, independent of everything the simulator's
delivery pipeline (routing, batching, loss, reply windows) did. That
gives two checkable guarantees per query:

* **precision**: every reading a policy returned must be one the network
  actually produced and that matches the predicate — a violation means
  the pipeline corrupted or mis-indexed data, and is always a bug;
* **recall**: the fraction of the *reachable* ground truth (stored
  somewhere by the time the reply window closed, and not orphaned on a
  dead node's flash) the policy actually returned — the paper's
  retrieval-rate story, measured against an oracle instead of ad-hoc
  per-test expectations.

The scorer runs on every simulated trial and rides the campaign export in
``TrialMetrics.oracle`` / ``TrialMetrics.attributes``; ``tests/oracle.py``
wraps the same functions as a pytest harness.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.config import ScoopConfig
from repro.core.query import Query, QueryResult
from repro.sim.metrics import DeliveryTracker, ReadingOutcome

#: Identity of one reading inside an attribute's stream.
ReadingKey = Tuple[int, float, int]  # (value, timestamp, producer)


def matches_query(outcome: ReadingOutcome, query: Query) -> bool:
    """Whether a produced reading satisfies ``query``'s predicate."""
    if outcome.attr != query.attr:
        return False
    t_lo, t_hi = query.time_range
    if not t_lo <= outcome.produced_at <= t_hi:
        return False
    if query.node_list is not None and outcome.producer not in query.node_list:
        return False
    if query.value_range is not None:
        v_lo, v_hi = query.value_range
        if not v_lo <= outcome.value <= v_hi:
            return False
    return True


def _candidates(
    tracker: DeliveryTracker, query: Query
) -> Iterable[ReadingOutcome]:
    """The readings a query's predicate could match — its attribute's
    bucket when the tracker has one (score_trial pre-buckets once so a
    trial's scoring pass is O(queries × per-attribute readings), not
    O(queries × all readings))."""
    by_attr = getattr(tracker, "_oracle_by_attr", None)
    if by_attr is not None:
        return by_attr.get(query.attr, ())
    return tracker.readings


def _bucket_by_attr(tracker: DeliveryTracker) -> None:
    """Memoize a per-attribute view of the tracker's readings."""
    by_attr: Dict[int, List[ReadingOutcome]] = {}
    for r in tracker.readings:
        by_attr.setdefault(r.attr, []).append(r)
    tracker._oracle_by_attr = by_attr


def produced_answer(tracker: DeliveryTracker, query: Query) -> Set[ReadingKey]:
    """Every produced reading matching ``query`` — the precision
    reference: nothing outside this set may ever be returned."""
    return {
        (r.value, r.produced_at, r.producer)
        for r in _candidates(tracker, query)
        if matches_query(r, query)
    }


def reachable_answer(
    tracker: DeliveryTracker,
    query: Query,
    stored_by: Optional[float] = None,
    at_time: Optional[float] = None,
) -> Set[ReadingKey]:
    """The recall denominator: matching readings a perfect executor could
    actually have fetched — stored somewhere by ``stored_by`` (a reading
    still sitting in a producer's batch buffer is unreachable) and, with
    ``at_time``, not orphaned on a node that is dark then (E14)."""
    out: Set[ReadingKey] = set()
    for r in _candidates(tracker, query):
        if not matches_query(r, query) or not r.stored:
            continue
        if stored_by is not None and r.stored_time > stored_by:
            continue
        if at_time is not None and tracker.node_down(r.stored_at, at_time):
            continue
        out.add((r.value, r.produced_at, r.producer))
    return out


def score_query(
    result: QueryResult,
    tracker: DeliveryTracker,
) -> Dict[str, float]:
    """Precision/recall of one closed query against the oracle."""
    query = result.query
    returned = {
        (value, timestamp, producer)
        for value, timestamp, producer in result.readings
    }
    # One pass over the query's candidate readings classifies both sets:
    # ``produced`` (the precision reference) and ``expected`` — what a
    # perfect executor could have fetched when the query went out:
    # readings stored somewhere by *issue* time (the end of the time
    # range) on a node alive then. A reading that landed at its owner
    # only after that node had already sent its reply was never
    # fetchable, and counting it would systematically understate every
    # policy's recall.
    issued = query.time_range[1]
    produced: Set[ReadingKey] = set()
    expected: Set[ReadingKey] = set()
    for r in _candidates(tracker, query):
        if not matches_query(r, query):
            continue
        key = (r.value, r.produced_at, r.producer)
        produced.add(key)
        if (
            r.stored
            and r.stored_time <= issued
            and not tracker.node_down(r.stored_at, issued)
        ):
            expected.add(key)
    violations = len(returned - produced)
    hits = len(returned & expected)
    return {
        "attr": float(query.attr),
        "expected": float(len(expected)),
        "returned": float(len(returned)),
        "hits": float(hits),
        "violations": float(violations),
        "recall": hits / len(expected) if expected else 1.0,
        "empty": float(not expected),
    }


def score_trial(
    query_log: Iterable[QueryResult],
    tracker: DeliveryTracker,
    config: ScoopConfig,
) -> Tuple[Dict[str, float], Dict[str, Dict[str, float]]]:
    """Oracle scorecard of a whole trial, plus per-attribute counters.

    Returns ``(oracle, attributes)`` in the shapes
    :class:`~repro.sim.metrics.TrialMetrics` carries: ``oracle`` has the
    trial-wide recall/precision aggregate, ``attributes`` one ``"a<id>"``
    row per registered attribute (readings produced/stored, queries
    issued, per-attribute recall).
    """
    _bucket_by_attr(tracker)
    scores: List[Dict[str, float]] = [
        score_query(result, tracker)
        for result in query_log
        if result.closed
    ]
    scored = [s for s in scores if not s["empty"]]
    recalls = [s["recall"] for s in scored]
    expected_total = sum(s["expected"] for s in scores)
    hits_total = sum(s["hits"] for s in scores)
    oracle: Dict[str, float] = {
        "queries_scored": float(len(scored)),
        "queries_empty": float(len(scores) - len(scored)),
        "recall_mean": sum(recalls) / len(recalls) if recalls else 1.0,
        "recall_min": min(recalls) if recalls else 1.0,
        #: tuple-weighted recall over the whole stream — the stable
        #: statistic (a per-query mean lets 1-of-2-reading queries
        #: dominate at small scales).
        "recall_weighted": (
            hits_total / expected_total if expected_total else 1.0
        ),
        "precision_violations": sum(s["violations"] for s in scores),
        "readings_expected": expected_total,
        "readings_returned": sum(s["returned"] for s in scores),
    }

    attributes: Dict[str, Dict[str, float]] = {}
    for attr in config.attribute_ids:
        produced = tracker._oracle_by_attr.get(attr, [])
        attr_scored = [s for s in scored if int(s["attr"]) == attr]
        attr_recalls = [s["recall"] for s in attr_scored]
        attr_expected = sum(s["expected"] for s in attr_scored)
        attr_hits = sum(s["hits"] for s in attr_scored)
        attributes[f"a{attr}"] = {
            "readings_produced": float(len(produced)),
            "readings_stored": float(sum(1 for r in produced if r.stored)),
            "queries_scored": float(len(attr_scored)),
            "recall_mean": (
                sum(attr_recalls) / len(attr_recalls) if attr_recalls else 1.0
            ),
            "recall_weighted": (
                attr_hits / attr_expected if attr_expected else 1.0
            ),
            "precision_violations": sum(
                s["violations"] for s in scores if int(s["attr"]) == attr
            ),
        }
    return oracle, attributes
