"""Campaign CLI: run the paper's experiment grids from the command line.

Usage:
    python -m repro.experiments run <scenario>|all [--jobs N] [--seeds K]
                                    [--base-seed B] [--scale S]
                                    [--cache-dir DIR] [--no-cache] [--refresh]
                                    [--export] [--export-dir DIR]
                                    [--profile [FILE]]
    python -m repro.experiments report [<scenario>|<export.json>]
                                    [--export-dir DIR]
    python -m repro.experiments plot [<scenario>|<export.json>]
                                    [--export-dir DIR] [--output DIR]
                                    [--format svg|png|svg,png]
    python -m repro.experiments serve <scenario> [--tenants N] [--workers W]
                                    [--port P] [--host H] [--duration S]
                                    [--scale S] [--base-seed B] [--jsonl]
                                    [--loadtest [FILE]] [--clients N]
                                    [--requests N]
                                    [--export] [--export-dir DIR]
    python -m repro.experiments list
    python -m repro.experiments clear-cache [--cache-dir DIR]

Scenarios are the named grids of ``scenarios.py`` (E/A experiment ids from
DESIGN.md work as aliases; ``list`` prints the registry). ``--seeds K``
replicates every trial over K seeds and reports mean/stdev/95% CI per
trial label; ``--jobs N`` fans the runs out over N worker processes —
results are identical to a serial run. Completed trials land in the
persistent result cache (keys salted with a source-tree hash, so code
edits self-invalidate), so re-running a campaign is free. ``--export``
writes the campaign's canonical JSON document under
``benchmarks/results/campaigns/``; ``report`` renders the markdown figure
table and ``plot`` the Figure-3/4/5-style charts of the latest (or a
given) export — neither re-runs anything. ``serve`` boots a scenario's
spec as resident deployments (one per tenant), shards them across
``--workers`` worker processes, and answers framed-protocol queries over
TCP (E16's serving layer; clients connect with
``repro.service.ScoopClient``). ``--jsonl`` keeps the deprecated
single-process JSON-lines transport; ``--loadtest`` drives the bound
server from ``--clients`` real concurrent connections and reports the
run as JSON — the nightly real-socket E16 job.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.experiments.cache import ResultCache, default_cache_root
from repro.experiments.campaign import Campaign, run_campaign
from repro.experiments.export import (
    default_export_root,
    export_campaign,
    latest_export,
    load_campaign_export,
)
from repro.experiments.plotting import plot_campaign
from repro.experiments.reporting import campaign_table, figure_table_markdown
from repro.experiments.scenarios import (
    SCENARIO_ALIASES,
    SCENARIOS,
    bench_scale,
    canonical_scenario_name,
    scenario_names,
    scenario_trials,
    unknown_scenario_error,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run paper experiment scenarios as cached, parallel campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario (or 'all') as a campaign")
    run.add_argument("scenario", help="scenario name, E/A experiment id, or 'all'")
    run.add_argument("--jobs", type=int, default=1, help="worker processes")
    run.add_argument("--seeds", type=int, default=1, help="seeds per trial")
    run.add_argument("--base-seed", type=int, default=1, help="first seed")
    run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="time-scale factor (overrides REPRO_BENCH_SCALE and REPRO_FULL; "
        "default: REPRO_BENCH_SCALE)",
    )
    run.add_argument("--cache-dir", default=None, help="result cache directory")
    run.add_argument(
        "--no-cache", action="store_true", help="neither read nor write the cache"
    )
    run.add_argument(
        "--refresh", action="store_true", help="re-run trials even on cache hits"
    )
    run.add_argument(
        "--export",
        action="store_true",
        help="write the campaign's JSON export (aggregates with 95%% CI "
        "plus every trial's metric breakdowns)",
    )
    run.add_argument(
        "--export-dir",
        default=None,
        help="export directory (default: benchmarks/results/campaigns, "
        "or REPRO_EXPORT_DIR)",
    )
    run.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="profile the trial runs with cProfile and print the top 25 "
        "functions by cumulative time; with FILE, also dump pstats binary "
        "data there (for snakeviz/pstats). Profiles the parent process "
        "only — use --jobs 1 for complete coverage.",
    )

    report = sub.add_parser(
        "report", help="render the markdown figure table of a campaign export"
    )
    report.add_argument(
        "target",
        nargs="?",
        default=None,
        help="scenario name or export file path (default: latest export)",
    )
    report.add_argument("--export-dir", default=None, help="export directory to search")

    plot = sub.add_parser(
        "plot",
        help="render Figure-3/4/5-style charts (SVG/PNG) from a campaign export",
    )
    plot.add_argument(
        "target",
        nargs="?",
        default=None,
        help="scenario name or export file path (default: latest export)",
    )
    plot.add_argument("--export-dir", default=None, help="export directory to search")
    plot.add_argument(
        "--output",
        "--out-dir",
        dest="out_dir",
        default=None,
        help="image output directory (default: <export dir>/plots)",
    )
    plot.add_argument(
        "--format",
        default="svg",
        help="comma-separated image formats: svg (always available) "
        "and/or png (needs the optional cairosvg)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve a scenario's deployments over TCP (framed protocol, "
        "sharded across worker processes)",
    )
    serve.add_argument(
        "scenario",
        help="scenario name or E/A experiment id; its first SCOOP trial's "
        "spec becomes the resident deployment",
    )
    serve.add_argument(
        "--tenants", type=int, default=1, help="resident deployments (one per tenant)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes the tenants are sharded across (framed "
        "protocol mode; ignored with --jsonl)",
    )
    serve.add_argument(
        "--jsonl",
        action="store_true",
        help="serve the deprecated single-process JSON-lines protocol "
        "instead of the framed one",
    )
    serve.add_argument(
        "--loadtest",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="after binding, drive the server from --clients real "
        "concurrent connections, write the JSON report to FILE "
        "('-' = stdout), then exit",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=2,
        help="concurrent loadtest connections (with --loadtest)",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=40,
        help="requests per loadtest client (with --loadtest)",
    )
    serve.add_argument(
        "--chaos-kill-worker",
        action="store_true",
        help="fault injection (with --loadtest): SIGKILL one shard worker "
        "after ~1/3 of the load has settled; the supervisor respawns it "
        "and clients retry the 'retry'-coded failures, so the run must "
        "still complete with zero lost answers",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7016, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many wall-clock seconds, then print stats and "
        "exit (default: until Ctrl-C)",
    )
    serve.add_argument(
        "--scale",
        type=float,
        default=None,
        help="time-scale factor for the deployment spec (overrides "
        "REPRO_BENCH_SCALE and REPRO_FULL)",
    )
    serve.add_argument("--base-seed", type=int, default=1, help="first tenant's seed")
    serve.add_argument(
        "--export",
        action="store_true",
        help="write the per-tenant serving stats snapshot as JSON on shutdown",
    )
    serve.add_argument(
        "--export-dir",
        default=None,
        help="export directory (default: benchmarks/results/campaigns, "
        "or REPRO_EXPORT_DIR)",
    )

    sub.add_parser("list", help="list scenarios and their trial grids")

    clear = sub.add_parser("clear-cache", help="delete all cached results")
    clear.add_argument("--cache-dir", default=None, help="result cache directory")
    return parser


def _cmd_list() -> int:
    print(f"scenarios (trial counts at scale {bench_scale():g}, one seed):")
    width = max(len(name) for name in scenario_names()) + 6
    for name in scenario_names():
        scenario = SCENARIOS[name]
        alias = f" [{scenario.alias}]" if scenario.alias else ""
        head = f"{name}{alias}".ljust(width)
        trials = len(scenario_trials(name))
        print(f"  {head} {trials:3d} trials  {scenario.description}")
    print(f"\nresult cache: {default_cache_root()}")
    print(f"campaign exports: {default_export_root()}")
    return 0


def _resolve_export(
    target: Optional[str], export_dir: Optional[str]
) -> Tuple[Optional[Path], Optional[str]]:
    """Resolve report/plot's target into an export file.

    Returns ``(path, None)`` on success or ``(None, error message)``; the
    message names the directory searched, and suggests ``list`` when the
    target isn't a registered scenario either.
    """
    root = Path(export_dir) if export_dir else None
    if target and (target.endswith(".json") or Path(target).is_file()):
        path = Path(target)
        if not path.is_file():
            return None, f"export file {path} does not exist"
        return path, None
    scenario = SCENARIO_ALIASES.get(target, target) if target else None
    path = latest_export(scenario, root=root)
    if path is None:
        where = root if root is not None else default_export_root()
        what = f"scenario {target!r}" if target else "any campaign"
        hint = (
            "; run the scenario with --export first"
            if scenario is None or scenario in SCENARIOS
            else f"; {unknown_scenario_error(target)}"
        )
        return None, f"no export for {what} under {where}{hint}"
    return path, None


def _cmd_run(args: argparse.Namespace) -> int:
    if args.scenario == "all":
        names = [n for n in scenario_names() if n != "smoke"]
    else:
        names = [args.scenario]
    seeds = range(args.base_seed, args.base_seed + args.seeds)
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()

    profiler = None
    if args.profile is not None:
        import cProfile

        if args.jobs > 1:
            print(
                "warning: --profile covers the parent process only; "
                "worker-process trials will not appear (use --jobs 1)",
                file=sys.stderr,
            )
        profiler = cProfile.Profile()

    status = 0
    for name in names:
        try:
            campaign = Campaign.from_scenario(name, seeds=seeds, scale=args.scale)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        started = time.perf_counter()
        try:
            if profiler is not None:
                profiler.enable()
            try:
                out = run_campaign(
                    campaign,
                    jobs=args.jobs,
                    cache=cache,
                    use_cache=not args.no_cache,
                    refresh=args.refresh,
                )
            finally:
                if profiler is not None:
                    profiler.disable()
        except Exception as exc:  # a failed trial fails the campaign
            print(f"error: campaign {name!r} failed: {exc}", file=sys.stderr)
            status = 1
            continue
        elapsed = time.perf_counter() - started
        print(
            campaign_table(
                out.aggregates(),
                f"campaign {name}: seeds {list(seeds)}, jobs {args.jobs}",
            )
        )
        print(
            f"{len(out.trials)} trials: {out.executed} executed, "
            f"{out.cached} cache hits, {elapsed:.1f}s"
        )
        if args.export:
            path = export_campaign(
                out,
                jobs=args.jobs,
                elapsed_s=elapsed,
                scale=args.scale,
                out_dir=Path(args.export_dir) if args.export_dir else None,
            )
            print(f"export: {path}")
        print()

    if profiler is not None:
        _print_profile(profiler, args.profile)
    return status


def _print_profile(profiler, destination: str) -> None:
    """Render the run's cProfile data: top 25 by cumulative time to stdout,
    plus a binary pstats dump when ``destination`` names a file ('-' means
    print only)."""
    import pstats

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    # Dump before printing: the binary data survives even when stdout is
    # a pipe that gets closed mid-print.
    if destination != "-":
        stats.dump_stats(destination)
    print("profile (top 25 by cumulative time):")
    stats.print_stats(25)
    if destination != "-":
        print(f"profile data written to {destination}")


def _cmd_report(args: argparse.Namespace) -> int:
    path, error = _resolve_export(args.target, args.export_dir)
    if path is None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        doc = load_campaign_export(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(figure_table_markdown(doc))
    execution = doc.get("execution", {})
    print(
        f"\n{execution.get('trials', '?')} trials "
        f"({execution.get('executed', '?')} executed, "
        f"{execution.get('cached', '?')} cached) — {path}"
    )
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    path, error = _resolve_export(args.target, args.export_dir)
    if path is None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        doc = load_campaign_export(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out_dir:
        out_dir = Path(args.out_dir)
    else:
        out_dir = path.parent / "plots"
    formats = [f.strip() for f in args.format.split(",") if f.strip()]
    try:
        written = plot_campaign(doc, out_dir, stem=path.stem, formats=formats)
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for image in written:
        print(f"plot: {image}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.experiments.campaign import _scale_override
    from repro.service import (
        PROTOCOL_VERSION,
        QueryGateway,
        ScoopServer,
        ShardedGateway,
        serve_gateway,
    )

    name = canonical_scenario_name(args.scenario)
    if name not in SCENARIOS:
        print(f"error: {unknown_scenario_error(args.scenario)}", file=sys.stderr)
        return 2
    if args.tenants < 1:
        print(f"error: need at least one tenant, got {args.tenants}", file=sys.stderr)
        return 2
    if args.workers < 1:
        print(f"error: need at least one worker, got {args.workers}", file=sys.stderr)
        return 2
    if args.jsonl and args.loadtest is not None:
        print(
            "error: --loadtest drives the framed protocol; it cannot be "
            "combined with --jsonl",
            file=sys.stderr,
        )
        return 2
    if args.chaos_kill_worker and (args.loadtest is None or args.jsonl):
        print(
            "error: --chaos-kill-worker needs the sharded framed server "
            "under --loadtest (no --jsonl)",
            file=sys.stderr,
        )
        return 2
    with _scale_override(args.scale):
        trials = scenario_trials(name, seed=args.base_seed)
    label, spec = next(
        ((lbl, s) for lbl, s in trials if s.policy == "scoop"), trials[0]
    )
    report_holder: dict = {}

    async def _serve() -> dict:
        if args.jsonl:
            print(
                f"booting {args.tenants} tenant(s) of {name} ({label}) "
                "in-process — each runs its warm-up to completion..."
            )
            gateway = QueryGateway.from_spec(
                spec,
                tenants=args.tenants,
                base_seed=args.base_seed,
                progress=lambda tenant: print(f"  {tenant}: deployment live"),
            )
            await gateway.start()
            jsonl_server = await serve_gateway(
                gateway, host=args.host, port=args.port
            )
            bound = jsonl_server.sockets[0].getsockname()
            print(
                f"serving on {bound[0]}:{bound[1]} — JSON lines "
                "(deprecated; prefer repro.service.ScoopClient), e.g. "
                '{"op": "query", "tenant": "tenant0", "attr": 0, "lo": 10, "hi": 30}'
            )
            server_close = jsonl_server.close
            server_wait = jsonl_server.wait_closed
            server = None
        else:
            gateway = ShardedGateway(
                spec,
                tenants=args.tenants,
                workers=args.workers,
                base_seed=args.base_seed,
            )
            await gateway.start()
            server = ScoopServer(gateway, host=args.host, port=args.port)
            await server.start()
            print(
                f"serving on {server.host}:{server.port} — framed protocol "
                f"v{PROTOCOL_VERSION}, {gateway.workers} worker(s); connect "
                "with repro.service.ScoopClient"
            )
            print(
                f"booting {args.tenants} tenant(s) of {name} ({label}) "
                "across the shard pool (client hellos block until ready)..."
            )
            await gateway.wait_ready()
            print(f"all shards ready: tenants {gateway.tenants}")
            server_close = server.close
            server_wait = None
        try:
            if args.loadtest is not None:
                from repro.service.loadtest import drive_socket_load

                dial = "127.0.0.1" if args.host == "0.0.0.0" else args.host
                port = server.port
                chaos = None
                retries = None
                if args.chaos_kill_worker:
                    def chaos() -> object:
                        killed = gateway.chaos_kill_worker()
                        print(f"chaos: killed worker of {killed}")
                        return killed

                    # Enough retry budget to ride out a full worker
                    # reboot (deployment boot + stabilization).
                    retries = 30
                report = await asyncio.get_running_loop().run_in_executor(
                    None,
                    lambda: drive_socket_load(
                        dial,
                        port,
                        clients=args.clients,
                        requests=args.requests,
                        seed=args.base_seed,
                        retries=retries,
                        chaos=chaos,
                    ),
                )
                report["scenario"] = name
                report["label"] = label
                report_holder["report"] = report
            elif args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()  # until Ctrl-C
        finally:
            result = server_close()
            if asyncio.iscoroutine(result):
                await result
            if server_wait is not None:
                await server_wait()
        stats = await gateway.service_stats()
        await gateway.close()
        return stats.to_wire()

    try:
        stats = asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0
    if report_holder:
        report = report_holder["report"]
        counts = report["counts"]
        print(
            f"loadtest: {args.clients} client(s) x {args.requests} requests "
            f"-> {counts['ok']} ok, {counts['shed']} shed, "
            f"{counts['failed']} failed, {counts.get('retried', 0)} retried, "
            f"{report['qps']:.1f} req/s "
            f"over {report['elapsed_s']:.2f}s"
        )
        chaos_record = report.get("chaos", {})
        if chaos_record.get("fired"):
            restarts = sum(
                shard.get("restarts", 0)
                for shard in report["stats"].get("shards", {}).values()
            )
            print(
                f"chaos: killed {chaos_record.get('killed')}, "
                f"{restarts:.0f} restart(s) recorded"
            )
        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.loadtest == "-":
            print(payload)
        else:
            Path(args.loadtest).write_text(payload)
            print(f"loadtest report: {args.loadtest}")
    tenants_stats = stats.get("tenants", {})
    for tenant in sorted(tenants_stats):
        snap = tenants_stats[tenant]
        print(
            f"{tenant}: {snap['requests_offered']:.0f} offered, "
            f"{snap['requests_served']:.0f} served, "
            f"{snap['requests_shed']:.0f} shed, "
            f"hit rate {snap['cache_hit_rate']:.2f}, "
            f"p95 latency {snap['latency_p95_s']:.2f}s (simulated)"
        )
    for shard in sorted(stats.get("shards", {})):
        snap = stats["shards"][shard]
        print(
            f"{shard}: {snap['tenants']:.0f} tenant(s), "
            f"{snap['requests_served']:.0f} served, "
            f"{snap['requests_shed']:.0f} shed, "
            f"queue depth {snap['queue_depth']:.0f}"
        )
    if args.export:
        out_dir = Path(args.export_dir) if args.export_dir else default_export_root()
        out_dir.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S")
        path = out_dir / f"{name}_serve_{stamp}.json"
        path.write_text(
            json.dumps(
                {"scenario": name, "label": label, **stats}, indent=2
            )
        )
        print(f"export: {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "plot":
        return _cmd_plot(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "clear-cache":
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    return _cmd_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
