"""Persistent on-disk experiment-result cache.

Experiments are deterministic in their spec, so a result computed once is
valid forever (for a given code schema). The cache stores one JSON file
per canonical spec key (:func:`repro.experiments.runner.spec_key`) under
``benchmarks/results/cache/`` and layers an in-process dict on top, so

- repeated specs within one pytest session hit memory,
- repeated specs across sessions / CLI runs hit disk,
- parallel campaign workers in other processes see completed entries.

Invalidation: entries key on ``SPEC_SCHEMA_VERSION`` plus the full spec
content, so changing any parameter (including time scale) is a miss;
changing the serialization schema orphans old entries, which are ignored.
Keys also mix in a code salt — a content hash of the ``repro`` source
tree (:mod:`repro.experiments.salt`, ``REPRO_CACHE_SALT`` overrides) — so
editing simulator code self-invalidates every entry. ``clear-cache`` is
now housekeeping (it sweeps orphaned files), not a correctness step.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, Optional

from repro.experiments.runner import ExperimentResult

#: Format version of the cache files themselves.
CACHE_SCHEMA_VERSION = 1


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``<repo>/benchmarks/results/cache``.

    When the package is installed outside a repo checkout (no
    ``benchmarks/`` directory next to ``src/``), fall back to the current
    working directory rather than a path inside the Python prefix.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    repo = Path(__file__).resolve().parents[3]
    if (repo / "benchmarks").is_dir():
        return repo / "benchmarks" / "results" / "cache"
    return Path.cwd() / "benchmarks" / "results" / "cache"


class ResultCache:
    """Memory-over-disk cache of :class:`ExperimentResult` by spec key."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self._memory: Dict[str, ExperimentResult] = {}
        self._warned_unwritable = False

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def get(self, key: str) -> Optional[ExperimentResult]:
        """The cached result for ``key``, or None on miss/stale entry."""
        if key in self._memory:
            return self._memory[key]
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                return None
            result = ExperimentResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, corrupt, or written by an incompatible version:
            # treat as a miss and recompute.
            return None
        self._memory[key] = result
        return result

    def put(self, key: str, result: ExperimentResult) -> None:
        """Store ``result`` in memory and durably on disk.

        An unwritable cache directory degrades to memory-only (with one
        warning) instead of raising: a campaign must never discard
        minutes of computed results over a persistence failure.
        """
        self._memory[key] = result
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "result": result.to_dict(),
        }
        tmp = self.root / f"{key}.{os.getpid()}.tmp"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            # Atomic publish: concurrent writers (parallel campaigns,
            # parallel pytest sessions) race benignly — last rename wins
            # with identical content, and readers never see a
            # half-written file.
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
            os.replace(tmp, self._path(key))
        except OSError as exc:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            if not self._warned_unwritable:
                self._warned_unwritable = True
                warnings.warn(
                    f"result cache at {self.root} is not writable ({exc}); "
                    "results are kept in memory only for this process",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def clear(self) -> int:
        """Drop memory and delete all disk entries; returns entries removed."""
        self._memory.clear()
        removed = 0
        if self.root.is_dir():
            # *.tmp sweeps up leftovers from writers killed mid-publish.
            for pattern in ("*.json", "*.tmp"):
                for path in self.root.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def disk_entries(self) -> int:
        """Number of cache files currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
