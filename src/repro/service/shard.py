"""Sharded serving: tenants placed across a pool of worker processes.

PR 7's gateway kept every tenant in one Python process; one busy tenant
starved the rest of the interpreter. :class:`ShardedGateway` places
tenants round-robin onto ``workers`` long-lived worker processes — the
same deterministic-seed and spec-serialization machinery the campaign
pool uses (specs cross the process boundary as
:meth:`ExperimentSpec.to_dict` payloads, plug-in policies re-register in
each worker) — so tenant deployments boot and serve concurrently.

Each worker owns its tenants outright: their resident deployments and
:class:`~repro.service.gateway.TenantService` state never leave the
process, and a tenant's trajectory depends only on its own ordered
request stream. That is the sharding invariant the determinism tests
pin: for a fixed client program, per-tenant answers are identical at
``--workers 1`` and ``--workers 4``.

The parent ↔ worker protocol is deliberately lockstep (one command in
flight per shard, over one :func:`multiprocessing.Pipe`): the parent
pump task batches concurrently arriving requests per shard, ships one
``batch`` command, and awaits the answers — so worker replies can never
interleave and the pipe needs no framing of its own. Shards are
independent; concurrency comes from running one pump per shard.

Workers announce ``ready`` after their deployments finish boot +
stabilization; :attr:`ShardedGateway.ready` gates the server's HELLO
handshake so first queries can never race warmup.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.api import (
    MalformedRequestError,
    QueryAnswer,
    QueryRequest,
    ServiceFault,
    ServiceStats,
    ServiceUnavailableError,
    aggregate_shard_stats,
    error_to_exception,
    ServiceError,
)

#: Start method for shard workers. ``spawn`` everywhere: identical
#: behavior across platforms and safe regardless of parent threads
#: (the asyncio server runs executor threads; forking those is UB).
_START_METHOD = "spawn"


def shard_name(index: int) -> str:
    return f"shard{index}"


def plan_placement(
    tenants: Sequence[str], workers: int
) -> List[List[str]]:
    """Round-robin tenant → shard placement (shard i hosts tenants
    i, i+W, i+2W, ...). Deterministic in the tenant order alone, so a
    fixed tenant list always yields the same placement."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    assignments: List[List[str]] = [[] for _ in range(min(workers, len(tenants)))]
    for i, tenant in enumerate(tenants):
        assignments[i % len(assignments)].append(tenant)
    return assignments


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _shard_worker_main(
    conn,
    shard: str,
    tenant_payloads: List[Tuple[str, Dict[str, object]]],
    plugins: Dict[str, object],
) -> None:
    """One shard worker: boot the assigned tenants, announce readiness,
    then serve lockstep commands until ``close``.

    Commands (parent → worker):
      ``("batch", [(req_id, tenant, attr, lo, hi), ...])`` →
      ``("answers", [(req_id, kind, payload)], shard_stats)`` with
      ``kind`` of ``ok``/``shed`` (payload = answer wire dict) or
      ``error`` (payload = (code, message));
      ``("stats",)`` → ``("stats", {tenant: scorecard}, shard_stats)``;
      ``("close",)`` → worker exits.

    Any exception outside per-request handling is reported as
    ``("fatal", repr)`` before the worker dies — the parent converts
    in-flight requests into :class:`ServiceUnavailableError`.
    """
    try:
        from repro.experiments import registry
        from repro.experiments.runner import ExperimentSpec
        from repro.service.deployment import Deployment
        from repro.service.gateway import TenantService

        # Same plug-in re-registration as the campaign pool's workers:
        # under spawn the child registry holds only the built-ins.
        for name, factory in plugins.items():
            if not registry.is_registered(name):
                registry.register_policy(name, factory)

        services: Dict[str, TenantService] = {}
        for tenant, spec_dict in tenant_payloads:
            spec = ExperimentSpec.from_dict(spec_dict)
            deployment = Deployment.create(spec)
            deployment.boot()
            deployment.stabilize()
            services[tenant] = TenantService(tenant, deployment)
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        try:
            conn.send(("boot_error", shard, f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return

    conn.send(("ready", shard, sorted(services), os.getpid()))

    def snapshots() -> Dict[str, Dict[str, float]]:
        return {name: svc.snapshot() for name, svc in services.items()}

    def shard_stats() -> Dict[str, float]:
        return aggregate_shard_stats(snapshots(), worker_pid=os.getpid())

    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "close":
                conn.send(("closed", shard))
                return
            if op == "stats":
                conn.send(("stats", snapshots(), shard_stats()))
                continue
            if op != "batch":
                conn.send(("fatal", f"unknown shard command {op!r}"))
                return
            requests = command[1]
            tickets: List[Tuple[int, object]] = []  # (req_id, ticket|fault)
            touched: Dict[str, TenantService] = {}
            for req_id, tenant, attr, lo, hi in requests:
                service = services.get(tenant)
                if service is None:
                    tickets.append(
                        (req_id, ("malformed", f"unknown tenant {tenant!r}"))
                    )
                    continue
                try:
                    ticket = service.submit(attr, lo, hi)
                except ValueError as exc:
                    tickets.append((req_id, ("malformed", str(exc))))
                    continue
                tickets.append((req_id, ticket))
                touched[tenant] = service
            # Drain every touched tenant's backlog: batch capacity may
            # need several windows for a burst.
            for service in touched.values():
                while service.backlog:
                    service.process_batch()
            answers = []
            for req_id, outcome in tickets:
                if isinstance(outcome, tuple):
                    answers.append((req_id, "error", outcome))
                else:
                    answer = QueryAnswer.from_ticket(outcome, shard=shard)
                    answers.append((req_id, answer.status, answer.to_wire()))
            conn.send(("answers", answers, shard_stats()))
    except (EOFError, KeyboardInterrupt):
        return
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent-side gateway
# ----------------------------------------------------------------------
class _Shard:
    """Parent-side handle of one worker: process, pipe, request queue."""

    def __init__(self, name: str, process, conn, tenants: List[str]):
        self.name = name
        self.process = process
        self.conn = conn
        self.tenants = tenants
        self.queue: "asyncio.Queue" = asyncio.Queue()
        self.ready = asyncio.Event()
        self.failed: Optional[str] = None
        self.pump: Optional[asyncio.Task] = None
        #: latest scorecards off the worker (refreshed by every reply).
        self.stats: Dict[str, float] = {}
        self.tenant_stats: Dict[str, Dict[str, float]] = {}
        self.metrics_tick = 0


class ShardedGateway:
    """Tenants sharded across worker processes, one asyncio front.

    The duck-type contract shared with the in-process
    :class:`~repro.service.gateway.QueryGateway` (what
    :class:`~repro.service.server.ScoopServer` serves):
    ``tenants`` / ``workers``, ``ready`` (asyncio event),
    ``await answer(request) -> QueryAnswer`` (raising
    :class:`~repro.service.api.ServiceFault` subclasses),
    ``await service_stats() -> ServiceStats``, ``metrics_snapshots()``,
    ``await close()``.
    """

    def __init__(
        self,
        spec,
        tenants: int = 1,
        workers: int = 1,
        base_seed: Optional[int] = None,
        batch_delay: float = 0.0,
    ):
        if tenants < 1:
            raise ValueError(f"need at least one tenant, got {tenants}")
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.spec = spec
        self.batch_delay = batch_delay
        seed0 = spec.seed if base_seed is None else base_seed
        names = [f"tenant{i}" for i in range(tenants)]
        #: tenant -> spec payload (the campaign pool's serialization).
        self._payloads = {
            name: dataclasses.replace(spec, seed=seed0 + i).to_dict()
            for i, name in enumerate(names)
        }
        self._assignments = plan_placement(names, workers)
        self._shards: Dict[str, _Shard] = {}
        self._shard_of: Dict[str, str] = {}
        self.ready = asyncio.Event()
        self._closed = False
        self._boot_error: Optional[str] = None

    # -- lifecycle -----------------------------------------------------
    @property
    def tenants(self) -> List[str]:
        return sorted(self._shard_of)

    @property
    def workers(self) -> int:
        return len(self._assignments)

    def shard_of(self, tenant: str) -> str:
        return self._shard_of[tenant]

    async def start(self) -> None:
        """Spawn the worker pool and the per-shard pump tasks.

        Returns immediately — workers boot their deployments in the
        background and report ``ready`` over their pipes;
        :meth:`wait_ready` (or the HELLO handshake) blocks on that.
        """
        from repro.experiments import registry

        ctx = multiprocessing.get_context(_START_METHOD)
        plugins = registry.plugin_policies()
        for i, tenant_names in enumerate(self._assignments):
            name = shard_name(i)
            parent_conn, child_conn = ctx.Pipe()
            payload = [(t, self._payloads[t]) for t in tenant_names]
            process = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, name, payload, plugins),
                name=f"scoop-{name}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            shard = _Shard(name, process, parent_conn, tenant_names)
            self._shards[name] = shard
            for tenant in tenant_names:
                self._shard_of[tenant] = name
        for shard in self._shards.values():
            shard.pump = asyncio.create_task(
                self._pump(shard), name=f"pump-{shard.name}"
            )

    async def wait_ready(self, timeout: Optional[float] = None) -> None:
        """Block until every shard reports ready (or one fails to boot)."""
        await asyncio.wait_for(self.ready.wait(), timeout)
        if self._boot_error is not None:
            raise ServiceUnavailableError(self._boot_error)

    async def _recv(self, shard: _Shard):
        return await asyncio.get_running_loop().run_in_executor(
            None, shard.conn.recv
        )

    async def _pump(self, shard: _Shard) -> None:
        """One shard's lockstep driver: readiness first, then batches."""
        try:
            message = await self._recv(shard)
        except (EOFError, OSError):
            message = ("boot_error", shard.name, "worker pipe closed during boot")
        if message[0] == "ready":
            shard.ready.set()
            if all(s.ready.is_set() for s in self._shards.values()):
                self.ready.set()
        else:
            shard.failed = message[-1]
            self._boot_error = f"{shard.name} failed to boot: {message[-1]}"
            self.ready.set()  # wake waiters so they can see the failure
            return
        while not self._closed:
            item = await shard.queue.get()
            if item is None:
                break
            batch = [item]
            if self.batch_delay > 0:
                # Let concurrently arriving requests join this batch.
                await asyncio.sleep(self.batch_delay)
            while not shard.queue.empty():
                extra = shard.queue.get_nowait()
                if extra is None:
                    self._closed = True
                    break
                batch.append(extra)
            queries = [entry for entry in batch if entry[0] == "req"]
            probes = [entry for entry in batch if entry[0] == "stats"]
            try:
                if queries:
                    requests = [
                        (i, r.tenant, r.attr, r.lo, r.hi)
                        for i, (_kind, _future, r) in enumerate(queries)
                    ]
                    shard.conn.send(("batch", requests))
                    reply = await self._recv(shard)
                    self._settle_batch(shard, queries, reply)
                    if shard.failed is not None:
                        self._fail_probes(probes, shard.failed)
                        return
                if probes:
                    shard.conn.send(("stats",))
                    reply = await self._recv(shard)
                    if reply[0] == "fatal":
                        shard.failed = reply[1]
                        self._fail_probes(probes, shard.failed)
                        return
                    _op, tenant_stats, shard_stats = reply
                    shard.tenant_stats = tenant_stats
                    shard.stats = shard_stats
                    shard.metrics_tick += 1
                    for _kind, future in probes:
                        if not future.done():
                            future.set_result((tenant_stats, shard_stats))
            except (EOFError, OSError, BrokenPipeError) as exc:
                shard.failed = f"worker pipe failed: {exc}"
                for entry in batch:
                    future = entry[1]
                    if not future.done():
                        future.set_exception(
                            ServiceUnavailableError(shard.failed)
                        )
                return

    def _settle_batch(self, shard: _Shard, queries, reply) -> None:
        """Resolve one lockstep batch's futures from the worker reply."""
        if reply[0] == "fatal":
            shard.failed = reply[1]
            for _kind, future, _request in queries:
                if not future.done():
                    future.set_exception(ServiceUnavailableError(reply[1]))
            return
        _op, answers, shard_stats = reply
        shard.stats = shard_stats
        shard.metrics_tick += 1
        by_id = {req_id: (kind, payload) for req_id, kind, payload in answers}
        for i, (_kind, future, request) in enumerate(queries):
            if future.done():
                continue
            kind, payload = by_id.get(
                i, ("error", ("unavailable", "no answer from shard"))
            )
            if kind == "error":
                code, message = payload
                future.set_exception(
                    error_to_exception(
                        ServiceError(code=code, message=message, seq=request.seq)
                    )
                )
            else:
                future.set_result(QueryAnswer.from_wire(payload))

    @staticmethod
    def _fail_probes(probes, message: str) -> None:
        for _kind, future in probes:
            if not future.done():
                future.set_exception(ServiceUnavailableError(message))

    # -- serving -------------------------------------------------------
    async def answer(self, request: QueryRequest) -> QueryAnswer:
        """Route one request to its tenant's shard and await the answer.

        Raises the typed faults: :class:`MalformedRequestError` for
        unknown tenants / invalid ranges, :class:`ShedError` via the
        shard's admission control, :class:`ServiceUnavailableError` when
        the shard is gone. Called before the shard is ready, it waits —
        the HELLO handshake normally makes that impossible.
        """
        if self._closed:
            raise ServiceUnavailableError("gateway is closed", seq=request.seq)
        shard_id = self._shard_of.get(request.tenant)
        if shard_id is None:
            raise MalformedRequestError(
                f"unknown tenant {request.tenant!r}; one of {self.tenants}",
                seq=request.seq,
            )
        shard = self._shards[shard_id]
        await shard.ready.wait()
        if shard.failed is not None:
            raise ServiceUnavailableError(shard.failed, seq=request.seq)
        future = asyncio.get_running_loop().create_future()
        shard.queue.put_nowait(("req", future, request))
        try:
            answer = await future
        except ServiceFault as fault:
            if fault.seq == 0:
                fault.seq = request.seq
            raise
        if answer.seq != request.seq:
            answer = dataclasses.replace(answer, seq=request.seq)
        return answer

    # -- telemetry -----------------------------------------------------
    async def service_stats(self) -> ServiceStats:
        """Poll every live shard for fresh scorecards (rides the same
        lockstep pump as queries, so it can never interleave a batch)."""
        loop = asyncio.get_running_loop()
        futures: Dict[str, "asyncio.Future"] = {}
        for shard in self._shards.values():
            if shard.failed is not None:
                continue
            await shard.ready.wait()
            if shard.failed is not None:
                continue
            future = loop.create_future()
            shard.queue.put_nowait(("stats", future))
            futures[shard.name] = future
        tenants: Dict[str, Dict[str, float]] = {}
        shards: Dict[str, Dict[str, float]] = {}
        for name, future in futures.items():
            try:
                tenant_stats, shard_stats = await future
            except ServiceFault:
                continue
            tenants.update(tenant_stats)
            shards[name] = dict(shard_stats)
        return ServiceStats(tenants=tenants, shards=shards)

    def metrics_snapshots(self) -> Dict[str, Dict[str, object]]:
        """Latest per-shard scorecards (refreshed by every batch reply)."""
        return {
            name: {
                "tick": shard.metrics_tick,
                "stats": dict(shard.stats),
                "tenants": {k: dict(v) for k, v in shard.tenant_stats.items()},
            }
            for name, shard in self._shards.items()
        }

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self._shards.values():
            shard.queue.put_nowait(None)
        for shard in self._shards.values():
            if shard.pump is not None:
                shard.pump.cancel()
        await asyncio.gather(
            *(s.pump for s in self._shards.values() if s.pump is not None),
            return_exceptions=True,
        )
        loop = asyncio.get_running_loop()
        for shard in self._shards.values():
            try:
                shard.conn.send(("close",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        for shard in self._shards.values():
            await loop.run_in_executor(None, shard.process.join, 5.0)
            if shard.process.is_alive():
                shard.process.terminate()
                await loop.run_in_executor(None, shard.process.join, 5.0)
            shard.conn.close()
