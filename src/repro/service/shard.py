"""Sharded serving: tenants placed across a supervised pool of workers.

PR 7's gateway kept every tenant in one Python process; one busy tenant
starved the rest of the interpreter. :class:`ShardedGateway` places
tenants round-robin onto ``workers`` long-lived worker processes — the
same deterministic-seed and spec-serialization machinery the campaign
pool uses (specs cross the process boundary as
:meth:`ExperimentSpec.to_dict` payloads, plug-in policies re-register in
each worker) — so tenant deployments boot and serve concurrently.

Each worker owns its tenants outright: their resident deployments and
:class:`~repro.service.gateway.TenantService` state never leave the
process, and a tenant's trajectory depends only on its own ordered
request stream. That is the sharding invariant the determinism tests
pin: for a fixed client program, per-tenant answers are identical at
``--workers 1`` and ``--workers 4`` (when no faults are injected).

The parent ↔ worker protocol is deliberately lockstep (one command in
flight per shard, over one :func:`multiprocessing.Pipe`): the parent
pump task batches concurrently arriving requests per shard, ships one
``batch`` command, and awaits the answers — so worker replies can never
interleave and the pipe needs no framing of its own. Shards are
independent; concurrency comes from running one pump per shard.

Workers announce ``ready`` after their deployments finish boot +
stabilization; :attr:`ShardedGateway.ready` gates the server's HELLO
handshake so first queries can never race warmup.

Supervision
-----------

Each shard is driven by a supervisor task walking this state machine::

    booting ──► ready ──► restarting ──► ready        (respawn succeeded)
       │          │            │
       │          │            └──► replaced          (budget exhausted,
       │          │                                    tenants adopted by
       │          │                                    surviving shards)
       └──────────┴───────────────► failed            (deterministic boot
                                                       error, or nowhere
                                                       left to re-place)

Worker death is detected three ways: pipe EOF mid-exchange, a ``fatal``
reply, and a periodic liveness probe on ``process.is_alive()`` (which
catches a worker dying while its pump is idle). On death the supervisor
fails every in-flight and queued request with the *retryable*
:class:`~repro.service.api.ShardRestartingError` (wire code ``retry``,
honored by the clients' capped retry policy), respawns the worker with
bounded exponential backoff (:class:`BackoffPolicy`), and re-creates its
tenants from the stored spec payloads via the same deterministic seed
ladder. When the respawn budget runs out, the dead shard's tenants are
*re-placed*: surviving workers ``adopt`` them (booting fresh deployments
from the same specs) and the routing table flips — the service degrades
instead of dying. Per-shard ``restarts`` / ``replacements`` /
``last_exit`` counters surface in ``ServiceStats.shards`` and the
METRICS push.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.service.api import (
    MalformedRequestError,
    QueryAnswer,
    QueryRequest,
    ServiceError,
    ServiceFault,
    ServiceStats,
    ServiceUnavailableError,
    ShardRestartingError,
    aggregate_shard_stats,
    error_to_exception,
)

#: Start method for shard workers. ``spawn`` everywhere: identical
#: behavior across platforms and safe regardless of parent threads
#: (the asyncio server runs executor threads; forking those is UB).
_START_METHOD = "spawn"

#: How often (seconds) the liveness watcher polls ``process.is_alive()``
#: — the detector for workers that die while their pump is idle.
LIVENESS_INTERVAL = 0.25

# Shard lifecycle states (see the module docstring's state machine).
BOOTING = "booting"
READY = "ready"
RESTARTING = "restarting"
REPLACING = "replacing"
REPLACED = "replaced"
FAILED = "failed"

#: States in which a shard accepts new requests onto its queue.
_SERVING_STATES = (READY,)
#: Transient states: requests fail with the retryable ``retry`` code.
_RETRYABLE_STATES = (RESTARTING, REPLACING)
#: Terminal states: the shard will never serve again.
_TERMINAL_STATES = (REPLACED, FAILED)


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff for worker respawns.

    ``delay(attempt)`` is ``min(cap_s, base_s * 2**attempt)`` for the
    0-based respawn attempt; ``budget`` is how many respawns a shard is
    granted before its tenants are re-placed. Pure math — the fake-clock
    unit tests drive it directly.
    """

    base_s: float = 0.25
    cap_s: float = 5.0
    budget: int = 3

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.cap_s < 0:
            raise ValueError(f"backoff delays must be >= 0, got {self}")
        if self.budget < 0:
            raise ValueError(f"respawn budget must be >= 0, got {self.budget}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before 0-based respawn ``attempt``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.cap_s, self.base_s * (2.0**attempt))

    def delays(self) -> List[float]:
        """The full delay schedule, one entry per budgeted respawn."""
        return [self.delay(i) for i in range(self.budget)]


def shard_name(index: int) -> str:
    return f"shard{index}"


def plan_placement(
    tenants: Sequence[str], workers: int
) -> List[List[str]]:
    """Round-robin tenant → shard placement (shard i hosts tenants
    i, i+W, i+2W, ...). Deterministic in the tenant order alone, so a
    fixed tenant list always yields the same placement."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    assignments: List[List[str]] = [[] for _ in range(min(workers, len(tenants)))]
    for i, tenant in enumerate(tenants):
        assignments[i % len(assignments)].append(tenant)
    return assignments


def plan_replacement(
    tenants: Sequence[str], survivors: Sequence[str]
) -> Dict[str, List[str]]:
    """Round-robin a dead shard's tenants over the surviving shards.

    Deterministic in the (ordered) tenant and survivor lists, mirroring
    :func:`plan_placement`. Returns ``{survivor: [tenant, ...]}`` with
    only non-empty assignments.
    """
    if not survivors:
        raise ValueError("no surviving shards to re-place onto")
    plan: Dict[str, List[str]] = {}
    for i, tenant in enumerate(tenants):
        plan.setdefault(survivors[i % len(survivors)], []).append(tenant)
    return plan


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _boot_tenants(
    tenant_payloads: Sequence[Tuple[str, Dict[str, object]]],
):
    """Boot + stabilize one deployment per payload; returns the
    ``{tenant: TenantService}`` dict (shared by initial boot and
    re-placement adoption)."""
    from repro.experiments.runner import ExperimentSpec
    from repro.service.deployment import Deployment
    from repro.service.gateway import TenantService

    services = {}
    for tenant, spec_dict in tenant_payloads:
        spec = ExperimentSpec.from_dict(spec_dict)
        deployment = Deployment.create(spec)
        deployment.boot()
        deployment.stabilize()
        services[tenant] = TenantService(tenant, deployment)
    return services


def _shard_worker_main(
    conn,
    shard: str,
    tenant_payloads: List[Tuple[str, Dict[str, object]]],
    plugins: Dict[str, object],
) -> None:
    """One shard worker: boot the assigned tenants, announce readiness,
    then serve lockstep commands until ``close``.

    Commands (parent → worker):
      ``("batch", [(req_id, tenant, attr, lo, hi), ...])`` →
      ``("answers", [(req_id, kind, payload)], shard_stats)`` with
      ``kind`` of ``ok``/``shed`` (payload = answer wire dict) or
      ``error`` (payload = (code, message));
      ``("stats",)`` → ``("stats", {tenant: scorecard}, shard_stats)``;
      ``("adopt", [(tenant, spec_dict), ...])`` → boot the re-placed
      tenants and reply ``("adopted", [tenant, ...], shard_stats)``
      (``("adopt_error", message)`` on a boot failure — the worker
      survives, only the adoption fails);
      ``("close",)`` → worker exits.

    Any exception outside per-request handling is reported as
    ``("fatal", repr)`` before the worker dies — the parent converts
    in-flight requests into the retryable
    :class:`~repro.service.api.ShardRestartingError` and respawns.
    """
    try:
        from repro.experiments import registry

        # Same plug-in re-registration as the campaign pool's workers:
        # under spawn the child registry holds only the built-ins.
        for name, factory in plugins.items():
            if not registry.is_registered(name):
                registry.register_policy(name, factory)

        services = _boot_tenants(tenant_payloads)
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        try:
            conn.send(("boot_error", shard, f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return

    conn.send(("ready", shard, sorted(services), os.getpid()))

    def snapshots() -> Dict[str, Dict[str, float]]:
        return {name: svc.snapshot() for name, svc in services.items()}

    def shard_stats() -> Dict[str, float]:
        return aggregate_shard_stats(snapshots(), worker_pid=os.getpid())

    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "close":
                conn.send(("closed", shard))
                return
            if op == "stats":
                conn.send(("stats", snapshots(), shard_stats()))
                continue
            if op == "adopt":
                try:
                    adopted = _boot_tenants(command[1])
                except Exception as exc:  # noqa: BLE001 — adoption-scoped
                    conn.send(
                        ("adopt_error", f"{type(exc).__name__}: {exc}")
                    )
                    continue
                services.update(adopted)
                conn.send(("adopted", sorted(adopted), shard_stats()))
                continue
            if op != "batch":
                conn.send(("fatal", f"unknown shard command {op!r}"))
                return
            requests = command[1]
            tickets: List[Tuple[int, object]] = []  # (req_id, ticket|fault)
            touched = {}
            for req_id, tenant, attr, lo, hi in requests:
                service = services.get(tenant)
                if service is None:
                    tickets.append(
                        (req_id, ("malformed", f"unknown tenant {tenant!r}"))
                    )
                    continue
                try:
                    ticket = service.submit(attr, lo, hi)
                except ValueError as exc:
                    tickets.append((req_id, ("malformed", str(exc))))
                    continue
                tickets.append((req_id, ticket))
                touched[tenant] = service
            # Drain every touched tenant's backlog: batch capacity may
            # need several windows for a burst.
            for service in touched.values():
                while service.backlog:
                    service.process_batch()
            answers = []
            for req_id, outcome in tickets:
                if isinstance(outcome, tuple):
                    answers.append((req_id, "error", outcome))
                else:
                    answer = QueryAnswer.from_ticket(outcome, shard=shard)
                    answers.append((req_id, answer.status, answer.to_wire()))
            conn.send(("answers", answers, shard_stats()))
    except (EOFError, KeyboardInterrupt):
        return
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent-side gateway
# ----------------------------------------------------------------------
class _Shard:
    """Parent-side handle of one worker: process, pipe, request queue,
    and the supervision bookkeeping (state, restart counters)."""

    def __init__(self, name: str, tenants: List[str]):
        self.name = name
        self.process = None
        self.conn = None
        self.tenants = list(tenants)
        self.queue: "asyncio.Queue" = asyncio.Queue()
        #: set once the *first* boot concludes (ready or terminal) —
        #: waiters wake and read :attr:`state` for the outcome.
        self.ready = asyncio.Event()
        self.state = BOOTING
        self.failed: Optional[str] = None
        self.supervisor: Optional[asyncio.Task] = None
        #: entries shipped to (or being assembled for) the worker; the
        #: supervisor fails these typed when the worker dies mid-batch.
        self.inflight: List[tuple] = []
        #: latest scorecards off the worker (refreshed by every reply).
        self.stats: Dict[str, float] = {}
        self.tenant_stats: Dict[str, Dict[str, float]] = {}
        self.metrics_tick = 0
        # -- supervision counters (surfaced in ServiceStats.shards) ----
        self.restarts = 0
        self.replacements = 0
        self.last_exit: Optional[int] = None
        self.respawns_used = 0


class ShardedGateway:
    """Tenants sharded across supervised worker processes, one asyncio
    front.

    The duck-type contract shared with the in-process
    :class:`~repro.service.gateway.QueryGateway` (what
    :class:`~repro.service.server.ScoopServer` serves):
    ``tenants`` / ``workers``, ``ready`` (asyncio event),
    ``await answer(request) -> QueryAnswer`` (raising
    :class:`~repro.service.api.ServiceFault` subclasses),
    ``await service_stats() -> ServiceStats``, ``metrics_snapshots()``,
    ``await close()``.
    """

    def __init__(
        self,
        spec,
        tenants: int = 1,
        workers: int = 1,
        base_seed: Optional[int] = None,
        batch_delay: float = 0.0,
        backoff: Optional[BackoffPolicy] = None,
        liveness_interval: float = LIVENESS_INTERVAL,
    ):
        if tenants < 1:
            raise ValueError(f"need at least one tenant, got {tenants}")
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.spec = spec
        self.batch_delay = batch_delay
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.liveness_interval = liveness_interval
        seed0 = spec.seed if base_seed is None else base_seed
        names = [f"tenant{i}" for i in range(tenants)]
        #: tenant -> spec payload (the campaign pool's serialization).
        #: Retained for the worker's whole life: respawn and re-placement
        #: both re-create tenants from these via the same seed ladder.
        self._payloads = {
            name: dataclasses.replace(spec, seed=seed0 + i).to_dict()
            for i, name in enumerate(names)
        }
        self._assignments = plan_placement(names, workers)
        self._shards: Dict[str, _Shard] = {}
        self._shard_of: Dict[str, str] = {}
        self.ready = asyncio.Event()
        self._closed = False
        self._boot_error: Optional[str] = None
        self._plugins: Dict[str, object] = {}
        #: injectable for the fake-clock supervisor tests.
        self._sleep = asyncio.sleep

    # -- lifecycle -----------------------------------------------------
    @property
    def tenants(self) -> List[str]:
        return sorted(self._shard_of)

    @property
    def workers(self) -> int:
        return len(self._assignments)

    def shard_of(self, tenant: str) -> str:
        return self._shard_of[tenant]

    def shard_states(self) -> Dict[str, str]:
        """Current supervision state per shard (diagnostics, tests)."""
        return {name: shard.state for name, shard in self._shards.items()}

    async def start(self) -> None:
        """Spawn the worker pool and the per-shard supervisor tasks.

        Returns immediately — workers boot their deployments in the
        background and report ``ready`` over their pipes;
        :meth:`wait_ready` (or the HELLO handshake) blocks on that.
        """
        from repro.experiments import registry

        self._plugins = registry.plugin_policies()
        for i, tenant_names in enumerate(self._assignments):
            shard = _Shard(shard_name(i), tenant_names)
            self._spawn(shard)
            self._shards[shard.name] = shard
            for tenant in tenant_names:
                self._shard_of[tenant] = shard.name
        for shard in self._shards.values():
            shard.supervisor = asyncio.create_task(
                self._supervise(shard), name=f"supervise-{shard.name}"
            )

    def _spawn(self, shard: _Shard) -> None:
        """(Re)spawn one shard's worker process over a fresh pipe; its
        tenants are re-created from the stored spec payloads."""
        ctx = multiprocessing.get_context(_START_METHOD)
        parent_conn, child_conn = ctx.Pipe()
        payload = [(t, self._payloads[t]) for t in shard.tenants]
        process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, shard.name, payload, self._plugins),
            name=f"scoop-{shard.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn

    async def wait_ready(self, timeout: Optional[float] = None) -> None:
        """Block until every shard's boot concludes (or one fails).

        Every failure mode surfaces as
        :class:`~repro.service.api.ServiceUnavailableError` — including
        the timeout itself, so callers handle one exception family.
        """
        try:
            await asyncio.wait_for(self.ready.wait(), timeout)
        except asyncio.TimeoutError:
            raise ServiceUnavailableError(
                f"shards not ready within {timeout}s"
            ) from None
        if self._boot_error is not None:
            raise ServiceUnavailableError(self._boot_error)

    async def _recv(self, shard: _Shard):
        return await asyncio.get_running_loop().run_in_executor(
            None, shard.conn.recv
        )

    # -- supervision ---------------------------------------------------
    def _maybe_ready(self) -> None:
        """Flip the gateway-level ready event once every shard's boot
        has concluded — successfully or terminally."""
        if all(
            s.state == READY or s.state in _TERMINAL_STATES
            for s in self._shards.values()
        ):
            self.ready.set()

    def _death_exception(self, shard: _Shard) -> ServiceFault:
        """The typed fault a request on ``shard`` fails with right now:
        retryable while the shard is coming back, terminal otherwise."""
        if shard.state in _RETRYABLE_STATES:
            return ShardRestartingError(
                f"{shard.name} is {shard.state}: "
                f"{shard.failed or 'worker died'}; retry shortly"
            )
        return ServiceUnavailableError(
            shard.failed or f"{shard.name} is {shard.state}"
        )

    def _fail_entry(self, entry, exc: ServiceFault) -> None:
        """Settle one queue/in-flight entry with ``exc`` (typed)."""
        if entry is None or entry[0] == "dead":
            return
        future = entry[1]
        if not future.done():
            future.set_exception(exc)

    def _fail_inflight(self, shard: _Shard) -> None:
        for entry in shard.inflight:
            self._fail_entry(entry, self._death_exception(shard))
        shard.inflight = []

    def _drain_queue(self, shard: _Shard) -> None:
        """Fail-fast every request sitting in the shard's queue — a
        queued future must never be left to hang until client timeout."""
        while not shard.queue.empty():
            entry = shard.queue.get_nowait()
            if entry is None:
                self._closed = True
                continue
            self._fail_entry(entry, self._death_exception(shard))

    async def _watch(self, shard: _Shard) -> None:
        """Liveness probe: catches a worker dying while the pump is idle
        (no exchange in flight means no EOF to observe) by waking the
        pump with a ``dead`` sentinel."""
        process = shard.process
        while True:
            await self._sleep(self.liveness_interval)
            if not process.is_alive():
                shard.queue.put_nowait(
                    ("dead", f"worker exited (exitcode {process.exitcode})")
                )
                return

    async def _run_worker(self, shard: _Shard):
        """Drive one worker incarnation: pump plus liveness watcher.

        Returns ``None`` on clean close, ``("boot_error", msg)`` when
        the worker *reported* a boot exception (deterministic — not
        respawned), or ``("died", msg)`` on process death.
        """
        watcher = asyncio.create_task(
            self._watch(shard), name=f"watch-{shard.name}"
        )
        try:
            return await self._pump(shard)
        finally:
            watcher.cancel()
            try:
                await watcher
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass

    async def _supervise(self, shard: _Shard) -> None:
        """One shard's supervisor: run the worker, and on death respawn
        with bounded backoff or re-place the tenants when the respawn
        budget is spent (see the module docstring's state machine)."""
        while True:
            outcome = await self._run_worker(shard)
            if outcome is None or self._closed:
                return
            kind, reason = outcome
            shard.failed = reason
            if kind == "boot_error":
                # The worker itself reported the exception: the spec is
                # broken, every respawn would fail identically.
                self._mark_failed(shard, reason)
                self._boot_error = f"{shard.name} failed to boot: {reason}"
                self.ready.set()  # wake waiters so they can see the failure
                await self._reap(shard)
                return await self._drain_until_closed(shard)
            if shard.respawns_used >= self.backoff.budget:
                await self._replace(shard)
                return await self._drain_until_closed(shard)
            shard.state = RESTARTING
            self._fail_inflight(shard)
            self._drain_queue(shard)
            delay = self.backoff.delay(shard.respawns_used)
            shard.respawns_used += 1
            shard.restarts += 1
            await self._reap(shard)
            await self._sleep(delay)
            if self._closed:
                return
            self._spawn(shard)

    async def _reap(self, shard: _Shard) -> None:
        """Collect the dead worker (no zombies), record its exit code,
        and retire its pipe."""
        loop = asyncio.get_running_loop()
        process = shard.process
        if process is None:
            return
        await loop.run_in_executor(None, process.join, 2.0)
        if process.is_alive():
            process.kill()
            await loop.run_in_executor(None, process.join, 2.0)
        # Only trustworthy after the join: reading it at EOF time races
        # the kernel actually retiring the child (and reads 0/None).
        shard.last_exit = process.exitcode
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass

    def _mark_failed(self, shard: _Shard, reason: str) -> None:
        shard.state = FAILED
        shard.failed = reason
        shard.ready.set()  # waiters wake and observe the terminal state
        self._maybe_ready()

    async def _replace(self, shard: _Shard) -> None:
        """Respawn budget exhausted: re-place the shard's tenants across
        the surviving shards so the service degrades instead of dying."""
        shard.state = REPLACING
        self._fail_inflight(shard)
        self._drain_queue(shard)
        await self._reap(shard)
        survivors = [
            s.name
            for s in self._shards.values()
            if s is not shard and s.state not in _TERMINAL_STATES
        ]
        if not survivors:
            self._mark_failed(
                shard,
                f"{shard.name} worker died {shard.respawns_used + 1} times "
                "and no shard survives to adopt its tenants",
            )
            return
        plan = plan_replacement(shard.tenants, sorted(survivors))
        for survivor_name in sorted(plan):
            survivor = self._shards[survivor_name]
            tenants = plan[survivor_name]
            payload = [(t, self._payloads[t]) for t in tenants]
            future = asyncio.get_running_loop().create_future()
            survivor.queue.put_nowait(("adopt", future, payload))
            try:
                await future
            except ServiceFault:
                # The adopting shard failed too; its own supervisor owns
                # that. These tenants stay on the dead shard and fail
                # unavailable — the rest still re-place.
                continue
            survivor.tenants.extend(tenants)
            survivor.replacements += len(tenants)
            for tenant in tenants:
                self._shard_of[tenant] = survivor_name
        shard.state = REPLACED
        shard.failed = (
            f"{shard.name} exhausted its respawn budget "
            f"({self.backoff.budget}); tenants re-placed onto "
            f"{sorted(plan)}"
        )
        shard.ready.set()
        self._maybe_ready()
        # Requests that raced the re-placement still fail retryable —
        # on retry the routing table sends them to the adopter.
        self._drain_queue(shard)

    async def _drain_until_closed(self, shard: _Shard) -> None:
        """Terminal-state drainer: anything that still lands on this
        shard's queue (an enqueue racing the state flip) fails typed
        instead of hanging."""
        while not self._closed:
            entry = await shard.queue.get()
            if entry is None:
                return
            self._fail_entry(entry, self._death_exception(shard))

    def chaos_kill_worker(self, shard: Optional[str] = None) -> Optional[str]:
        """Fault injection: SIGKILL one live worker process.

        Kills the named shard's worker, or the first ready one in shard
        order. Returns the shard name killed (``None`` if no worker was
        live). Thread-safe — the loadtest driver calls this from a
        client thread mid-load.
        """
        names = [shard] if shard is not None else sorted(self._shards)
        for name in names:
            candidate = self._shards.get(name)
            if candidate is None or candidate.process is None:
                continue
            if candidate.state == READY and candidate.process.is_alive():
                candidate.process.kill()
                return name
        return None

    # -- pump ----------------------------------------------------------
    async def _pump(self, shard: _Shard):
        """One worker incarnation's lockstep driver: readiness first,
        then batches. Returns ``None`` on clean close or a
        ``(kind, reason)`` death outcome for the supervisor."""
        try:
            message = await self._recv(shard)
        except (EOFError, OSError):
            return ("died", "worker pipe closed during boot")
        if message[0] != "ready":
            return ("boot_error", str(message[-1]))
        shard.state = READY
        shard.failed = None
        shard.ready.set()
        self._maybe_ready()
        while not self._closed:
            item = await shard.queue.get()
            if item is None:
                return None
            if item[0] == "dead":
                return ("died", item[1])
            batch = [item]
            # The live list doubles as the in-flight record: whatever is
            # in it when the worker dies gets failed by the supervisor.
            shard.inflight = batch
            if self.batch_delay > 0:
                # Let concurrently arriving requests join this batch.
                await asyncio.sleep(self.batch_delay)
            while not shard.queue.empty():
                extra = shard.queue.get_nowait()
                if extra is None:
                    self._closed = True
                    break
                if extra[0] == "dead":
                    return ("died", extra[1])
                batch.append(extra)
            queries = [entry for entry in batch if entry[0] == "req"]
            probes = [entry for entry in batch if entry[0] == "stats"]
            adoptions = [entry for entry in batch if entry[0] == "adopt"]
            try:
                if queries:
                    requests = [
                        (i, r.tenant, r.attr, r.lo, r.hi)
                        for i, (_kind, _future, r) in enumerate(queries)
                    ]
                    shard.conn.send(("batch", requests))
                    reply = await self._recv(shard)
                    if reply[0] == "fatal":
                        return ("died", f"worker fatal: {reply[1]}")
                    self._settle_batch(shard, queries, reply)
                if probes:
                    shard.conn.send(("stats",))
                    reply = await self._recv(shard)
                    if reply[0] == "fatal":
                        return ("died", f"worker fatal: {reply[1]}")
                    _op, tenant_stats, shard_stats = reply
                    shard.tenant_stats = tenant_stats
                    shard.stats = shard_stats
                    shard.metrics_tick += 1
                    for _kind, future in probes:
                        if not future.done():
                            future.set_result((tenant_stats, shard_stats))
                for _kind, future, payload in adoptions:
                    shard.conn.send(("adopt", payload))
                    reply = await self._recv(shard)
                    if reply[0] == "fatal":
                        return ("died", f"worker fatal: {reply[1]}")
                    if reply[0] == "adopt_error":
                        if not future.done():
                            future.set_exception(
                                ServiceUnavailableError(
                                    f"adoption failed on {shard.name}: "
                                    f"{reply[1]}"
                                )
                            )
                        continue
                    _op, adopted, shard_stats = reply
                    shard.stats = shard_stats
                    if not future.done():
                        future.set_result(list(adopted))
                shard.inflight = []
            except (EOFError, OSError, BrokenPipeError) as exc:
                return ("died", f"worker pipe failed: {exc}")
        return None

    def _settle_batch(self, shard: _Shard, queries, reply) -> None:
        """Resolve one lockstep batch's futures from the worker reply."""
        _op, answers, shard_stats = reply
        shard.stats = shard_stats
        shard.metrics_tick += 1
        by_id = {req_id: (kind, payload) for req_id, kind, payload in answers}
        for i, (_kind, future, request) in enumerate(queries):
            if future.done():
                continue
            kind, payload = by_id.get(
                i, ("error", ("unavailable", "no answer from shard"))
            )
            if kind == "error":
                code, message = payload
                future.set_exception(
                    error_to_exception(
                        ServiceError(code=code, message=message, seq=request.seq)
                    )
                )
            else:
                future.set_result(QueryAnswer.from_wire(payload))

    # -- serving -------------------------------------------------------
    async def answer(self, request: QueryRequest) -> QueryAnswer:
        """Route one request to its tenant's shard and await the answer.

        Raises the typed faults: :class:`MalformedRequestError` for
        unknown tenants / invalid ranges, :class:`ShedError` via the
        shard's admission control,
        :class:`~repro.service.api.ShardRestartingError` (retryable)
        while the shard's worker is being respawned or its tenants
        re-placed, and :class:`ServiceUnavailableError` when the shard
        is terminally gone. Called before the shard is ready, it waits —
        the HELLO handshake normally makes that impossible.
        """
        if self._closed:
            raise ServiceUnavailableError("gateway is closed", seq=request.seq)
        shard: Optional[_Shard] = None
        shard_id: Optional[str] = None
        # Re-resolve after the ready wait: a re-placement may have moved
        # the tenant to an adopting shard while we were parked.
        for _ in range(len(self._shards) + 1):
            shard_id = self._shard_of.get(request.tenant)
            if shard_id is None:
                raise MalformedRequestError(
                    f"unknown tenant {request.tenant!r}; one of {self.tenants}",
                    seq=request.seq,
                )
            shard = self._shards[shard_id]
            await shard.ready.wait()
            if self._shard_of.get(request.tenant) == shard_id:
                break
        assert shard is not None
        if shard.state in _RETRYABLE_STATES:
            raise ShardRestartingError(
                f"{shard_id} is {shard.state}: "
                f"{shard.failed or 'worker died'}; retry shortly",
                seq=request.seq,
            )
        if shard.state != READY:
            raise ServiceUnavailableError(
                shard.failed or f"{shard_id} is {shard.state}",
                seq=request.seq,
            )
        future = asyncio.get_running_loop().create_future()
        shard.queue.put_nowait(("req", future, request))
        try:
            answer = await future
        except ServiceFault as fault:
            if fault.seq == 0:
                fault.seq = request.seq
            raise
        if answer.seq != request.seq:
            answer = dataclasses.replace(answer, seq=request.seq)
        return answer

    # -- telemetry -----------------------------------------------------
    def _supervision_stats(self, shard: _Shard) -> Dict[str, float]:
        """The parent-side supervision counters overlaid onto every
        shard scorecard (workers report them as 0 — they cannot know)."""
        return {
            "restarts": float(shard.restarts),
            "replacements": float(shard.replacements),
            "last_exit": float(
                shard.last_exit if shard.last_exit is not None else 0
            ),
        }

    async def service_stats(self) -> ServiceStats:
        """Poll every ready shard for fresh scorecards (rides the same
        lockstep pump as queries, so it can never interleave a batch);
        shards mid-restart or retired contribute their last known
        scorecard plus the supervision counters."""
        loop = asyncio.get_running_loop()
        futures: Dict[str, "asyncio.Future"] = {}
        for shard in self._shards.values():
            if shard.state != READY:
                continue
            future = loop.create_future()
            shard.queue.put_nowait(("stats", future))
            futures[shard.name] = future
        tenants: Dict[str, Dict[str, float]] = {}
        shards: Dict[str, Dict[str, float]] = {}
        for name, future in futures.items():
            shard = self._shards[name]
            try:
                tenant_stats, shard_stats = await future
            except ServiceFault:
                # Died mid-probe: fall back to the cached scorecard.
                tenant_stats, shard_stats = shard.tenant_stats, shard.stats
            tenants.update(tenant_stats)
            shards[name] = {**shard_stats, **self._supervision_stats(shard)}
        for name, shard in self._shards.items():
            if name not in shards:
                # Not probed (restarting / replaced / failed): cached
                # scorecard + supervision counters, no tenant overlay
                # (their tenants may live on an adopting shard now).
                shards[name] = {
                    **shard.stats,
                    **self._supervision_stats(shard),
                }
        return ServiceStats(tenants=tenants, shards=shards)

    def metrics_snapshots(self) -> Dict[str, Dict[str, object]]:
        """Latest per-shard scorecards (refreshed by every batch reply),
        with the supervision counters overlaid."""
        return {
            name: {
                "tick": shard.metrics_tick,
                "stats": {
                    **dict(shard.stats),
                    **self._supervision_stats(shard),
                },
                "tenants": {k: dict(v) for k, v in shard.tenant_stats.items()},
            }
            for name, shard in self._shards.items()
        }

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self._shards.values():
            shard.queue.put_nowait(None)
        supervisors = [
            s.supervisor for s in self._shards.values() if s.supervisor is not None
        ]
        for task in supervisors:
            task.cancel()
        await asyncio.gather(*supervisors, return_exceptions=True)
        loop = asyncio.get_running_loop()
        for shard in self._shards.values():
            try:
                shard.conn.send(("close",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        for shard in self._shards.values():
            process = shard.process
            if process is None:
                continue
            await loop.run_in_executor(None, process.join, 5.0)
            if process.is_alive():
                process.terminate()
                await loop.run_in_executor(None, process.join, 5.0)
            if process.is_alive():
                # A worker wedged in uninterruptible boot work can
                # survive terminate(); SIGKILL is the last word — a
                # closed gateway must never leave a live child behind.
                process.kill()
                await loop.run_in_executor(None, process.join, 5.0)
            try:
                shard.conn.close()
            except OSError:
                pass
            # Nothing may be left hanging on a closed gateway.
            closed_exc: Callable[[], ServiceFault] = lambda: (
                ServiceUnavailableError("gateway is closed")
            )
            for entry in shard.inflight:
                self._fail_entry(entry, closed_exc())
            shard.inflight = []
            while not shard.queue.empty():
                entry = shard.queue.get_nowait()
                if entry is not None:
                    self._fail_entry(entry, closed_exc())
