"""The query gateway: admission control, batching, epoch-keyed caching.

Three layers, separable so the serving logic stays testable without an
event loop:

* :class:`AnswerCache` — an LRU of recent query answers keyed on
  ``(attr, range bucket, index epoch)``. Requested ranges are quantized
  to bucket-aligned ranges (the underlying query is issued at bucket
  granularity and per-request answers are filtered back down, so
  answers stay exact), which lets nearby requests share one radio
  query. The epoch in the key is the basestation's remap epoch: the
  moment a remap disseminates new indexes every cached answer
  self-invalidates — the same trick as the source-salted result cache.
* :class:`TenantService` — the synchronous serving core around one
  resident :class:`~repro.service.deployment.Deployment`: per-tenant
  admission control (a bounded queue; requests beyond it are shed with
  an explicit status, never silently dropped), per-window batching
  (queued misses coalesce by cache bucket and at most
  ``batch_capacity`` basestation queries go out per batch), and the
  latency/staleness/shed accounting exported as service metrics.
* :class:`QueryGateway` — the asyncio front: one ``TenantService`` per
  tenant, a worker task per tenant draining its queue, and a JSON-lines
  TCP protocol (:func:`serve_gateway`) for external clients.

All serving metrics are *simulated-time* quantities (arrival-to-answer
latency on the deployment clock, answer staleness, shed counts), so a
load test's metrics are a pure function of the spec — they ride the
campaign pipeline's determinism checks like every other metric.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import math
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import ValueDomain
from repro.core.messages import WireReading
from repro.experiments.runner import ExperimentSpec
from repro.service.api import (
    MalformedRequestError,
    QueryAnswer,
    QueryRequest,
    ServiceStats,
    ServiceUnavailableError,
    aggregate_shard_stats,
    decode_jsonl_request,
    encode_jsonl_answer,
    encode_jsonl_error,
)


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass
class ServiceLimits:
    """Per-tenant serving knobs (defaults mirror the spec fields)."""

    #: admission-control bound: queued (unanswered) requests beyond this
    #: are shed with an explicit status.
    queue_depth: int = 8
    #: basestation queries issued per batch window at most; queued
    #: requests beyond it wait for the next window.
    batch_capacity: int = 4
    #: buckets the value domain is quantized into for cache keys and
    #: query coalescing (0 or 1 disables quantization).
    cache_buckets: int = 16
    #: answer-cache entry bound (LRU beyond it).
    cache_capacity: int = 256

    @classmethod
    def from_spec(cls, spec: ExperimentSpec) -> "ServiceLimits":
        return cls(
            queue_depth=spec.service_queue_depth,
            batch_capacity=spec.service_batch_capacity,
            cache_buckets=spec.service_cache_buckets,
        )


@dataclass
class CacheEntry:
    """One cached bucket answer."""

    readings: List[WireReading]
    #: simulated time the answer was assembled (staleness baseline).
    stored_at: float
    #: remap epoch the answer was computed under.
    epoch: int


class AnswerCache:
    """LRU answer cache keyed ``(attr, bucket_lo, bucket_hi, epoch)``."""

    def __init__(self, buckets: int = 16, capacity: int = 256):
        self.buckets = buckets
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int, int, int], CacheEntry]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def bucket_range(
        self, domain: ValueDomain, lo: int, hi: int
    ) -> Tuple[int, int]:
        """Quantize ``[lo, hi]`` outward to bucket-aligned bounds.

        The widened range is what actually gets queried (and cached);
        answers are filtered back to the requested sub-range, so caching
        never changes what a client receives.
        """
        if self.buckets <= 1:
            return domain.lo, domain.hi
        width = max(1, -(-domain.size // self.buckets))
        blo = domain.lo + ((lo - domain.lo) // width) * width
        bhi = domain.lo + ((hi - domain.lo) // width) * width + width - 1
        return blo, min(domain.hi, bhi)

    def get(
        self, attr: int, blo: int, bhi: int, epoch: int
    ) -> Optional[CacheEntry]:
        entry = self._entries.get((attr, blo, bhi, epoch))
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end((attr, blo, bhi, epoch))
        self.hits += 1
        return entry

    def put(
        self,
        attr: int,
        blo: int,
        bhi: int,
        epoch: int,
        readings: List[WireReading],
        stored_at: float,
    ) -> CacheEntry:
        entry = CacheEntry(list(readings), stored_at, epoch)
        self._entries[(attr, blo, bhi, epoch)] = entry
        self._entries.move_to_end((attr, blo, bhi, epoch))
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry


@dataclass
class ServiceTicket:
    """One client request's fate, in the clients' own terms."""

    seq: int
    tenant: str
    attr: int
    lo: int
    hi: int
    #: simulated arrival time (latency baseline).
    arrival: float
    status: str = "pending"  # pending -> ok, or shed
    readings: List[WireReading] = field(default_factory=list)
    latency_s: float = 0.0
    cache_hit: bool = False
    #: age of the served answer at serving time (0 for fresh answers).
    staleness_s: float = 0.0
    #: remap epoch the answer was computed under (-1 until answered).
    epoch: int = -1
    #: bucket-aligned range actually queried (set once admitted).
    bucket: Optional[Tuple[int, int]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready wire form (the TCP protocol's response body)."""
        return {
            "status": self.status,
            "tenant": self.tenant,
            "seq": self.seq,
            "attr": self.attr,
            "lo": self.lo,
            "hi": self.hi,
            "latency_s": round(self.latency_s, 6),
            "cache_hit": self.cache_hit,
            "staleness_s": round(self.staleness_s, 6),
            "epoch": self.epoch,
            "n_readings": len(self.readings),
            "readings": [list(r) for r in self.readings[:50]],
        }


class TenantService:
    """The synchronous serving core around one resident deployment.

    ``submit`` admits (or sheds, or answers from cache) one request;
    ``process_batch`` drains up to ``batch_capacity`` coalesced bucket
    queries through the deployment and advances the kernel through one
    reply window. Single-threaded by design: the asyncio gateway calls
    both from one event loop, the batch load driver from a plain loop.
    """

    def __init__(
        self,
        name: str,
        deployment,
        limits: Optional[ServiceLimits] = None,
    ):
        self.name = name
        self.deployment = deployment
        self.limits = limits or ServiceLimits.from_spec(deployment.spec)
        self.cache = AnswerCache(
            buckets=self.limits.cache_buckets,
            capacity=self.limits.cache_capacity,
        )
        self._queue: List[ServiceTicket] = []
        self._seq = 0
        self.offered = 0
        self.served = 0
        self.shed = 0
        self.cache_hits = 0
        self.queries_issued = 0
        self.coalesced = 0
        self.batches = 0
        self.latencies: List[float] = []
        self.staleness: List[float] = []
        self.epochs_seen: Set[int] = set()

    @property
    def backlog(self) -> int:
        """Admitted requests still waiting for a batch window."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        attr: int = 0,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
        arrival: Optional[float] = None,
    ) -> ServiceTicket:
        """Admit one request: answer it from cache, queue it for the
        next batch, or shed it.

        Malformed requests (unregistered attribute, out-of-domain or
        empty range) raise ``ValueError`` — rejection is an error the
        client hears about, shedding is an overload signal; the two are
        never conflated. ``arrival`` backdates the request (the load
        driver stamps precomputed arrival times that may fall inside a
        reply-window advance); it is clamped to the deployment clock.
        """
        dep = self.deployment
        domain = dep.config.domain_of(attr)  # unknown attr raises here
        lo = domain.lo if lo is None else int(lo)
        hi = domain.hi if hi is None else int(hi)
        if hi < lo or lo not in domain or hi not in domain:
            raise ValueError(
                f"malformed request: value range [{lo}, {hi}] outside "
                f"attribute {attr}'s domain [{domain.lo}, {domain.hi}]"
            )
        now = dep.now
        if arrival is None or arrival > now:
            arrival = now
        self._seq += 1
        self.offered += 1
        ticket = ServiceTicket(
            seq=self._seq,
            tenant=self.name,
            attr=attr,
            lo=lo,
            hi=hi,
            arrival=arrival,
        )
        blo, bhi = self.cache.bucket_range(domain, lo, hi)
        ticket.bucket = (blo, bhi)
        entry = self.cache.get(attr, blo, bhi, dep.index_epoch)
        if entry is not None:
            self._answer(ticket, entry, cache_hit=True)
            return ticket
        if len(self._queue) >= self.limits.queue_depth:
            ticket.status = "shed"
            self.shed += 1
            return ticket
        self._queue.append(ticket)
        return ticket

    # ------------------------------------------------------------------
    # Batch processing
    # ------------------------------------------------------------------
    def process_batch(self) -> List[ServiceTicket]:
        """Serve queued requests: coalesce by bucket, issue up to
        ``batch_capacity`` basestation queries, advance the kernel one
        reply window, answer everything those queries cover."""
        if not self._queue:
            return []
        dep = self.deployment
        groups: "OrderedDict[Tuple[int, Tuple[int, int]], List[ServiceTicket]]" = (
            OrderedDict()
        )
        for ticket in self._queue:
            groups.setdefault((ticket.attr, ticket.bucket), []).append(ticket)
        taken = list(groups.items())[: self.limits.batch_capacity]
        epoch = dep.index_epoch
        issued = []
        for (attr, (blo, bhi)), tickets in taken:
            result = dep.query(attr=attr, lo=blo, hi=bhi, wait=False)
            issued.append(((attr, blo, bhi), result, tickets))
        self.batches += 1
        self.queries_issued += len(issued)
        dep.advance(dep.config.query_reply_window)
        answered: List[ServiceTicket] = []
        for (attr, blo, bhi), result, tickets in issued:
            entry = self.cache.put(
                attr, blo, bhi, epoch, result.readings, stored_at=dep.now
            )
            self.coalesced += len(tickets) - 1
            for ticket in tickets:
                self._answer(ticket, entry, cache_hit=False)
                answered.append(ticket)
        served = {id(t) for t in answered}
        self._queue = [t for t in self._queue if id(t) not in served]
        return answered

    def _answer(
        self, ticket: ServiceTicket, entry: CacheEntry, cache_hit: bool
    ) -> None:
        now = self.deployment.now
        ticket.readings = [
            r for r in entry.readings if ticket.lo <= r[0] <= ticket.hi
        ]
        ticket.status = "ok"
        ticket.cache_hit = cache_hit
        ticket.latency_s = max(0.0, now - ticket.arrival)
        ticket.staleness_s = max(0.0, now - entry.stored_at)
        ticket.epoch = entry.epoch
        self.served += 1
        if cache_hit:
            self.cache_hits += 1
        self.latencies.append(ticket.latency_s)
        self.staleness.append(ticket.staleness_s)
        self.epochs_seen.add(entry.epoch)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """The serving scorecard, JSON-ready (string keys, float values)
        — what ``TrialMetrics.service`` carries for E16 trials."""
        served = self.served
        return {
            "requests_offered": float(self.offered),
            "requests_served": float(served),
            "requests_shed": float(self.shed),
            "shed_rate": self.shed / self.offered if self.offered else 0.0,
            "cache_hits": float(self.cache_hits),
            "cache_hit_rate": self.cache_hits / served if served else 0.0,
            "queries_issued": float(self.queries_issued),
            "coalesced": float(self.coalesced),
            "batches": float(self.batches),
            "backlog": float(len(self._queue)),
            "latency_mean_s": (
                sum(self.latencies) / len(self.latencies) if self.latencies else 0.0
            ),
            "latency_p50_s": percentile(self.latencies, 0.50),
            "latency_p95_s": percentile(self.latencies, 0.95),
            "latency_p99_s": percentile(self.latencies, 0.99),
            "staleness_mean_s": (
                sum(self.staleness) / len(self.staleness) if self.staleness else 0.0
            ),
            "staleness_p95_s": percentile(self.staleness, 0.95),
            "epochs_seen": float(len(self.epochs_seen)),
        }


class QueryGateway:
    """Asyncio front: one resident deployment per tenant, one worker
    task per tenant batching its queue, futures bridging client
    coroutines to batch completions."""

    def __init__(
        self,
        services: Dict[str, TenantService],
        batch_delay: float = 0.02,
    ):
        if not services:
            raise ValueError("gateway needs at least one tenant service")
        self._services = dict(services)
        #: wall-clock coalescing delay before a worker drains its queue
        #: (0 = process as soon as woken; tests use 0 for determinism).
        self.batch_delay = batch_delay
        self._events: Dict[str, asyncio.Event] = {}
        self._futures: Dict[str, Dict[int, asyncio.Future]] = {
            name: {} for name in self._services
        }
        self._workers: List[asyncio.Task] = []
        self._closed = False
        #: readiness barrier (shares the ShardedGateway duck type). The
        #: in-process gateway boots its deployments in ``from_spec``, so
        #: ``start()`` flips it immediately.
        self.ready = asyncio.Event()
        self._metrics_tick = 0

    @classmethod
    def from_spec(
        cls,
        spec: ExperimentSpec,
        tenants: int = 1,
        base_seed: Optional[int] = None,
        batch_delay: float = 0.02,
        progress=None,
    ) -> "QueryGateway":
        """Boot ``tenants`` resident deployments of ``spec`` (seeds
        ``base_seed, base_seed+1, ...``) and wrap each in a tenant
        service. Booting runs each deployment's warm-up to completion,
        so construction takes real time — ``progress`` (a callable
        taking the tenant name) reports each one coming up."""
        from repro.service.deployment import Deployment

        if tenants < 1:
            raise ValueError(f"need at least one tenant, got {tenants}")
        seed0 = spec.seed if base_seed is None else base_seed
        services: Dict[str, TenantService] = {}
        for i in range(tenants):
            name = f"tenant{i}"
            dep = Deployment.create(dataclasses.replace(spec, seed=seed0 + i))
            dep.boot()
            dep.stabilize()
            services[name] = TenantService(name, dep)
            if progress is not None:
                progress(name)
        return cls(services, batch_delay=batch_delay)

    @property
    def tenants(self) -> List[str]:
        return sorted(self._services)

    @property
    def workers(self) -> int:
        """Worker-process count — 1 by definition for in-process mode."""
        return 1

    def service(self, tenant: str) -> TenantService:
        try:
            return self._services[tenant]
        except KeyError:
            raise ValueError(
                f"unknown tenant {tenant!r}; one of {self.tenants}"
            ) from None

    async def start(self) -> None:
        """Spawn one worker task per tenant."""
        for name in self._services:
            self._events[name] = asyncio.Event()
            self._workers.append(
                asyncio.create_task(self._worker(name), name=f"gateway-{name}")
            )
        self.ready.set()

    async def _worker(self, name: str) -> None:
        service = self._services[name]
        event = self._events[name]
        futures = self._futures[name]
        while not self._closed:
            await event.wait()
            event.clear()
            if self._closed:
                return
            if self.batch_delay > 0:
                # Let concurrently arriving requests join this batch.
                await asyncio.sleep(self.batch_delay)
            for ticket in service.process_batch():
                future = futures.pop(ticket.seq, None)
                if future is not None and not future.done():
                    future.set_result(ticket)
            if service.backlog:
                # More queued than one batch's capacity: keep draining.
                event.set()

    async def query(
        self,
        tenant: str,
        attr: int = 0,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ) -> ServiceTicket:
        """Submit one request and await its ticket (immediately for
        cache hits and sheds, after a batch window otherwise)."""
        if self._closed:
            raise RuntimeError("gateway is closed")
        service = self.service(tenant)
        ticket = service.submit(attr, lo, hi)
        if ticket.status != "pending":
            return ticket
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[tenant][ticket.seq] = future
        self._events[tenant].set()
        return await future

    async def answer(self, request: QueryRequest) -> QueryAnswer:
        """The public typed entry point (shares the ShardedGateway duck
        type): one :class:`~repro.service.api.QueryRequest` in, one
        :class:`~repro.service.api.QueryAnswer` out, typed faults for
        everything that is not an answer."""
        try:
            ticket = await self.query(
                request.tenant, request.attr, request.lo, request.hi
            )
        except RuntimeError as exc:
            raise ServiceUnavailableError(str(exc), seq=request.seq) from None
        except ValueError as exc:
            raise MalformedRequestError(str(exc), seq=request.seq) from None
        answer = QueryAnswer.from_ticket(ticket, shard="shard0")
        if answer.seq != request.seq:
            # The connection-scoped seq is what clients correlate on.
            answer = dataclasses.replace(answer, seq=request.seq)
        return answer

    def stats(self) -> Dict[str, Dict[str, float]]:
        return {name: svc.snapshot() for name, svc in self._services.items()}

    async def service_stats(self) -> ServiceStats:
        """Typed stats: every tenant scorecard plus the single-shard
        aggregate (in-process mode is the one-shard special case)."""
        tenants = self.stats()
        return ServiceStats(
            tenants=tenants,
            shards={
                "shard0": aggregate_shard_stats(tenants, worker_pid=os.getpid())
            },
        )

    def metrics_snapshots(self) -> Dict[str, Dict[str, object]]:
        """Live telemetry in the per-shard shape the metrics stream
        pushes (one synthetic ``shard0`` for in-process mode)."""
        self._metrics_tick += 1
        tenants = self.stats()
        return {
            "shard0": {
                "tick": self._metrics_tick,
                "stats": aggregate_shard_stats(tenants, worker_pid=os.getpid()),
                "tenants": tenants,
            }
        }

    async def close(self) -> None:
        self._closed = True
        for event in self._events.values():
            event.set()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        for futures in self._futures.values():
            for future in futures.values():
                if not future.done():
                    future.cancel()
            futures.clear()


async def serve_gateway(
    gateway: QueryGateway, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Expose a gateway over TCP as the *deprecated* JSON-lines protocol.

    One request object per line; responses are one JSON object per line,
    byte-identical to the PR-7 wire format (pinned by a golden-bytes
    test). The transport is now just a codec
    (:func:`repro.service.api.encode_jsonl_answer` et al.) over the same
    typed :class:`~repro.service.api.QueryRequest` /
    :class:`~repro.service.api.QueryAnswer` the framed protocol speaks —
    new clients should use :class:`~repro.service.client.ScoopClient`
    against :class:`~repro.service.server.ScoopServer` instead.

    Ops: ``{"op": "query", "tenant": ..., "attr": 0, "lo": ..., "hi": ...}``
    (tenant defaults to ``tenant0``), ``{"op": "stats"}``,
    ``{"op": "ping"}``. Malformed requests get ``{"status": "error"}``
    with a message — the connection stays open.
    """

    async def handle(reader, writer):
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                op, request = decode_jsonl_request(line)
                if op == "ping":
                    payload = (
                        json.dumps(
                            {
                                "status": "ok",
                                "op": "ping",
                                "tenants": gateway.tenants,
                            }
                        )
                        + "\n"
                    ).encode("utf-8")
                elif op == "stats":
                    payload = (
                        json.dumps({"status": "ok", "stats": gateway.stats()})
                        + "\n"
                    ).encode("utf-8")
                else:
                    # The legacy protocol reports the tenant-scoped seq,
                    # so answers go through the ticket, not answer().
                    ticket = await gateway.query(
                        request.tenant, request.attr, request.lo, request.hi
                    )
                    payload = encode_jsonl_answer(
                        QueryAnswer.from_ticket(ticket, shard="shard0")
                    )
            except (
                MalformedRequestError,
                ValueError,
                TypeError,
                KeyError,
            ) as exc:
                payload = encode_jsonl_error(str(exc))
            writer.write(payload)
            await writer.drain()
        writer.close()

    return await asyncio.start_server(handle, host, port)
