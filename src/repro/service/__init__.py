"""Scoop as a service: resident deployments and the query gateway.

:class:`~repro.service.deployment.Deployment` is the canonical way to
wire and run a Scoop network — the batch runner
(:func:`repro.experiments.runner.run_experiment`) is a thin driver over
it, and the asyncio gateway (:mod:`repro.service.gateway`) keeps one
resident per tenant and multiplexes concurrent client query streams with
admission control and an epoch-keyed answer cache.
"""

from repro.service.deployment import Deployment
from repro.service.gateway import (
    AnswerCache,
    QueryGateway,
    ServiceLimits,
    ServiceTicket,
    TenantService,
    serve_gateway,
)
from repro.service.loadtest import build_arrivals, drive_load

__all__ = [
    "AnswerCache",
    "Deployment",
    "QueryGateway",
    "ServiceLimits",
    "ServiceTicket",
    "TenantService",
    "build_arrivals",
    "drive_load",
    "serve_gateway",
]
