"""Scoop as a service: resident deployments, shards, protocol, clients.

:class:`~repro.service.deployment.Deployment` is the canonical way to
wire and run a Scoop network — the batch runner
(:func:`repro.experiments.runner.run_experiment`) is a thin driver over
it. On top of it sit two serving modes behind one duck-type contract:

* in-process — :class:`~repro.service.gateway.QueryGateway`, one
  resident deployment per tenant in this interpreter (bit-identical to
  the batch path; what the oracle and cache-replay gates pin);
* sharded — :class:`~repro.service.shard.ShardedGateway`, tenants placed
  across a pool of worker processes.

Either gateway is served over TCP by
:class:`~repro.service.server.ScoopServer` speaking the framed protocol
of :mod:`repro.service.protocol`, and the supported client entry points
are :class:`~repro.service.client.ScoopClient` /
:class:`~repro.service.client.AsyncScoopClient`. The only types crossing
that boundary are the frozen dataclasses of :mod:`repro.service.api`
(:class:`~repro.service.api.QueryRequest`,
:class:`~repro.service.api.QueryAnswer`, ...) and its typed exceptions.
"""

from repro.service.api import (
    PROTOCOL_VERSION,
    MalformedRequestError,
    ProtocolError,
    ProtocolVersionError,
    QueryAnswer,
    QueryRequest,
    ServiceError,
    ServiceFault,
    ServiceStats,
    ServiceUnavailableError,
    ShardRestartingError,
    ShedError,
)
from repro.service.client import AsyncScoopClient, ScoopClient
from repro.service.deployment import Deployment
from repro.service.gateway import QueryGateway, ServiceLimits, serve_gateway
from repro.service.loadtest import (
    answers_digest,
    build_arrivals,
    build_client_program,
    drive_load,
    drive_socket_load,
)
from repro.service.server import ScoopServer, serve_framed
from repro.service.shard import BackoffPolicy, ShardedGateway

# ServiceTicket / TenantService / AnswerCache are deliberately NOT
# re-exported: they are gateway internals, and a test
# (tests/unit/test_api_boundary.py) fails any outside import of them.

__all__ = [
    "PROTOCOL_VERSION",
    "AsyncScoopClient",
    "BackoffPolicy",
    "Deployment",
    "MalformedRequestError",
    "ProtocolError",
    "ProtocolVersionError",
    "QueryAnswer",
    "QueryGateway",
    "QueryRequest",
    "ScoopClient",
    "ScoopServer",
    "ServiceError",
    "ServiceFault",
    "ServiceLimits",
    "ServiceStats",
    "ServiceUnavailableError",
    "ShardRestartingError",
    "ShardedGateway",
    "ShedError",
    "answers_digest",
    "build_arrivals",
    "build_client_program",
    "drive_load",
    "drive_socket_load",
    "serve_framed",
    "serve_gateway",
]
