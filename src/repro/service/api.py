"""The public, versioned service API: the only types that cross the wire.

Every request/response that leaves the serving layer is one of the
frozen dataclasses here — :class:`QueryRequest` in, :class:`QueryAnswer`
(or :class:`ServiceError`) out, :class:`ServiceStats` for telemetry.
Raw gateway dicts and :class:`~repro.service.gateway.ServiceTicket`\\ s
never escape ``repro.service``; a grep-enforced test
(``tests/unit/test_api_boundary.py``) keeps it that way.

Two codecs serialize the same types:

* the framed binary protocol (:mod:`repro.service.protocol`) — the
  supported transport, spoken by :class:`~repro.service.client.ScoopClient`;
* the legacy JSON-lines protocol (:func:`encode_jsonl_answer` et al.) —
  deprecated but wire-compatible with the PR-7 gateway, byte-for-byte
  (pinned by a golden-bytes test), so old scripts keep working against
  ``serve --jsonl``.

Failure surfaces as *typed exceptions*, never as strings for callers to
pattern-match: overload sheds raise :class:`ShedError`, client mistakes
raise :class:`MalformedRequestError`, version skew raises
:class:`ProtocolVersionError`, framing violations raise
:class:`ProtocolError`, and a shard mid-respawn raises the *retryable*
:class:`ShardRestartingError`. :func:`error_to_exception` /
:func:`exception_to_error` map between exceptions and their wire form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Type

#: Version of the service API and wire protocol. Clients send it in
#: their hello; servers refuse (with :class:`ProtocolVersionError`) any
#: hello whose version they do not speak. Bump on any incompatible
#: change to the frame layout or the payload schemas below.
PROTOCOL_VERSION = 1

#: Answers truncate their inline reading list at this many tuples (the
#: full count still rides in ``n_readings``) — the same bound the PR-7
#: JSON-lines protocol applied, kept so both codecs stay wire-compatible.
MAX_WIRE_READINGS = 50


# ----------------------------------------------------------------------
# Typed exceptions
# ----------------------------------------------------------------------
class ServiceFault(Exception):
    """Base of every typed service failure.

    ``code`` is the stable wire identifier (``shed``, ``malformed``,
    ``version``, ``protocol``, ``unavailable``); ``seq`` correlates the
    failure to the request that caused it (0 for connection-level
    faults).
    """

    code = "error"

    def __init__(self, message: str, seq: int = 0) -> None:
        super().__init__(message)
        self.seq = seq


class ShedError(ServiceFault):
    """The service is overloaded and shed this request.

    An overload signal, not a client mistake — back off and retry.
    """

    code = "shed"


class MalformedRequestError(ServiceFault):
    """The request itself was invalid (unknown tenant/attribute,
    out-of-domain or empty range, unparseable payload)."""

    code = "malformed"


class ProtocolVersionError(ServiceFault):
    """Client and server do not share a protocol version."""

    code = "version"


class ProtocolError(ServiceFault):
    """The byte stream violated the framing protocol (oversize frame,
    unknown frame type, malformed payload)."""

    code = "protocol"


class ServiceUnavailableError(ServiceFault):
    """The service exists but cannot answer (shard down, gateway
    closed)."""

    code = "unavailable"


class ShardRestartingError(ServiceFault):
    """The tenant's shard lost its worker and is coming back (respawn
    in progress, or its tenants are being re-placed onto surviving
    shards).

    *Retryable*: unlike :class:`ServiceUnavailableError` this is a
    transient condition — back off briefly and resend the same request.
    :class:`~repro.service.client.ScoopClient` /
    :class:`~repro.service.client.AsyncScoopClient` do exactly that,
    with a capped exponential backoff, before surfacing the fault.
    The wire code is additive (old clients degrade it to the base
    :class:`ServiceFault`), so it needs no protocol version bump.
    """

    code = "retry"


#: Wire code -> exception class (the inverse of each class's ``code``).
_FAULTS: Dict[str, Type[ServiceFault]] = {
    exc.code: exc
    for exc in (
        ShedError,
        MalformedRequestError,
        ProtocolVersionError,
        ProtocolError,
        ServiceUnavailableError,
        ShardRestartingError,
    )
}


# ----------------------------------------------------------------------
# Request / answer / error / stats
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryRequest:
    """One range query, in the client's own terms.

    ``lo``/``hi`` of ``None`` default to the attribute's domain bounds
    server-side. ``seq`` is the connection-scoped correlation id; clients
    stamp it, callers constructing requests by hand may leave it 0.
    """

    tenant: str = "tenant0"
    attr: int = 0
    lo: Optional[int] = None
    hi: Optional[int] = None
    seq: int = 0

    def to_wire(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "attr": self.attr,
            "lo": self.lo,
            "hi": self.hi,
            "seq": self.seq,
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "QueryRequest":
        try:
            return cls(
                tenant=str(data.get("tenant", "tenant0")),
                attr=int(data.get("attr", 0)),
                lo=None if data.get("lo") is None else int(data["lo"]),
                hi=None if data.get("hi") is None else int(data["hi"]),
                seq=int(data.get("seq", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise MalformedRequestError(f"bad query request: {exc}") from None


@dataclass(frozen=True)
class QueryAnswer:
    """One answered (or shed) request, the only response type.

    ``status`` is ``"ok"`` or ``"shed"``; clients never see the string —
    :class:`~repro.service.client.ScoopClient` raises :class:`ShedError`
    instead. ``readings`` carries at most :data:`MAX_WIRE_READINGS`
    ``(value, time, node)`` tuples; ``n_readings`` is the untruncated
    count. ``shard`` names the worker that served the answer
    (``"shard0"`` in single-process mode) — diagnostic only, never part
    of the deprecated JSON-lines form.
    """

    tenant: str
    seq: int
    attr: int
    lo: int
    hi: int
    status: str = "ok"
    readings: Tuple[Tuple[int, float, int], ...] = ()
    n_readings: int = 0
    latency_s: float = 0.0
    cache_hit: bool = False
    staleness_s: float = 0.0
    epoch: int = -1
    shard: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @classmethod
    def from_ticket(cls, ticket: Any, shard: str = "") -> "QueryAnswer":
        """Fold one service-internal ticket into its public form."""
        return cls(
            tenant=ticket.tenant,
            seq=ticket.seq,
            attr=ticket.attr,
            lo=ticket.lo,
            hi=ticket.hi,
            status=ticket.status,
            readings=tuple(
                tuple(r) for r in ticket.readings[:MAX_WIRE_READINGS]
            ),
            n_readings=len(ticket.readings),
            latency_s=round(ticket.latency_s, 6),
            cache_hit=ticket.cache_hit,
            staleness_s=round(ticket.staleness_s, 6),
            epoch=ticket.epoch,
            shard=shard,
        )

    def to_wire(self) -> Dict[str, object]:
        wire = self.to_jsonl_dict()
        wire["shard"] = self.shard
        return wire

    def to_jsonl_dict(self) -> Dict[str, object]:
        """The deprecated JSON-lines response body — key set and order
        are frozen to the PR-7 ``ServiceTicket.to_dict`` wire format."""
        return {
            "status": self.status,
            "tenant": self.tenant,
            "seq": self.seq,
            "attr": self.attr,
            "lo": self.lo,
            "hi": self.hi,
            "latency_s": self.latency_s,
            "cache_hit": self.cache_hit,
            "staleness_s": self.staleness_s,
            "epoch": self.epoch,
            "n_readings": self.n_readings,
            "readings": [list(r) for r in self.readings],
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "QueryAnswer":
        try:
            return cls(
                tenant=str(data["tenant"]),
                seq=int(data["seq"]),
                attr=int(data["attr"]),
                lo=int(data["lo"]),
                hi=int(data["hi"]),
                status=str(data.get("status", "ok")),
                readings=tuple(
                    (int(v), float(t), int(n)) for v, t, n in data["readings"]
                ),
                n_readings=int(data["n_readings"]),
                latency_s=float(data["latency_s"]),
                cache_hit=bool(data["cache_hit"]),
                staleness_s=float(data["staleness_s"]),
                epoch=int(data["epoch"]),
                shard=str(data.get("shard", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad query answer payload: {exc}") from None


@dataclass(frozen=True)
class ServiceError:
    """A failure in wire form; maps 1:1 onto the typed exceptions."""

    code: str
    message: str
    seq: int = 0

    def to_wire(self) -> Dict[str, object]:
        return {"code": self.code, "message": self.message, "seq": self.seq}

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "ServiceError":
        try:
            return cls(
                code=str(data["code"]),
                message=str(data["message"]),
                seq=int(data.get("seq", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad error payload: {exc}") from None


def error_to_exception(error: ServiceError) -> ServiceFault:
    """The typed exception a :class:`ServiceError` frame stands for."""
    fault = _FAULTS.get(error.code, ServiceFault)
    exc = fault(error.message, seq=error.seq)
    exc.code = error.code
    return exc


def exception_to_error(exc: ServiceFault) -> ServiceError:
    return ServiceError(code=exc.code, message=str(exc), seq=exc.seq)


@dataclass(frozen=True)
class ServiceStats:
    """Service-wide telemetry: the per-tenant serving scorecards plus
    the per-shard and per-listener (protocol) breakdowns."""

    #: tenant name -> serving scorecard (the ``TenantService.snapshot()``
    #: keys: offered/served/shed, latency percentiles, cache hits, ...).
    tenants: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: shard name (``"shard0"``...) -> aggregate scorecard of the tenants
    #: it hosts, plus ``tenants`` (count) and ``worker_pid``.
    shards: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: listener counters: connections, frames in/out, protocol errors,
    #: socket-level sheds (credit overruns).
    protocol: Dict[str, float] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, object]:
        return {
            "tenants": {k: dict(v) for k, v in self.tenants.items()},
            "shards": {k: dict(v) for k, v in self.shards.items()},
            "protocol": dict(self.protocol),
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "ServiceStats":
        try:
            return cls(
                tenants={k: dict(v) for k, v in data.get("tenants", {}).items()},
                shards={k: dict(v) for k, v in data.get("shards", {}).items()},
                protocol=dict(data.get("protocol", {})),
            )
        except (AttributeError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad stats payload: {exc}") from None


def aggregate_shard_stats(
    tenant_stats: Mapping[str, Mapping[str, float]],
    worker_pid: int = 0,
) -> Dict[str, float]:
    """Fold one shard's per-tenant scorecards into its shard scorecard.

    Counters sum; rates are recomputed from the summed counters (a mean
    of per-tenant rates would weight idle tenants equally with busy
    ones); the latency figure kept is the max per-tenant p95 — the
    shard's worst tenant is what a load balancer would act on.
    """
    offered = sum(s.get("requests_offered", 0.0) for s in tenant_stats.values())
    served = sum(s.get("requests_served", 0.0) for s in tenant_stats.values())
    shed = sum(s.get("requests_shed", 0.0) for s in tenant_stats.values())
    hits = sum(s.get("cache_hits", 0.0) for s in tenant_stats.values())
    return {
        "tenants": float(len(tenant_stats)),
        "worker_pid": float(worker_pid),
        # Supervision counters: 0 at the source; the parent-side
        # supervisor overlays the real values (a worker cannot know how
        # often it has been respawned).
        "restarts": 0.0,
        "replacements": 0.0,
        "last_exit": 0.0,
        "requests_offered": offered,
        "requests_served": served,
        "requests_shed": shed,
        "shed_rate": shed / offered if offered else 0.0,
        "cache_hits": hits,
        "cache_hit_rate": hits / served if served else 0.0,
        "queue_depth": sum(s.get("backlog", 0.0) for s in tenant_stats.values()),
        "queries_issued": sum(
            s.get("queries_issued", 0.0) for s in tenant_stats.values()
        ),
        "latency_p95_s": max(
            (s.get("latency_p95_s", 0.0) for s in tenant_stats.values()),
            default=0.0,
        ),
    }


# ----------------------------------------------------------------------
# Deprecated JSON-lines codec (wire-compatible with the PR-7 gateway)
# ----------------------------------------------------------------------
def encode_jsonl_request(request: QueryRequest) -> bytes:
    """One JSON-lines query, exactly as PR-7 clients sent it."""
    return (
        json.dumps(
            {
                "op": "query",
                "tenant": request.tenant,
                "attr": request.attr,
                "lo": request.lo,
                "hi": request.hi,
            }
        )
        + "\n"
    ).encode("utf-8")


def decode_jsonl_request(line: bytes) -> Tuple[str, Optional[QueryRequest]]:
    """Parse one JSON-lines request into ``(op, request)``.

    ``request`` is populated for ``op == "query"`` and ``None`` for the
    control ops (``ping``, ``stats``). Anything unparseable raises
    :class:`MalformedRequestError` — the JSON-lines transport reports it
    as the legacy ``{"status": "error"}`` object.
    """
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise MalformedRequestError(f"bad JSON: {exc}") from None
    if not isinstance(data, dict):
        raise MalformedRequestError("request must be a JSON object")
    op = str(data.get("op", "query"))
    if op == "query":
        return op, QueryRequest.from_wire(data)
    if op in ("ping", "stats"):
        return op, None
    raise MalformedRequestError(f"unknown op {op!r}; one of ping, query, stats")


def encode_jsonl_answer(answer: QueryAnswer) -> bytes:
    """One JSON-lines response, byte-identical to the PR-7 wire format
    (pinned by a golden-bytes test)."""
    return (json.dumps(answer.to_jsonl_dict()) + "\n").encode("utf-8")


def encode_jsonl_error(message: str) -> bytes:
    return (
        json.dumps({"status": "error", "error": str(message)}) + "\n"
    ).encode("utf-8")


def decode_jsonl_response(line: bytes) -> Dict[str, object]:
    """Parse one JSON-lines response object (legacy clients see dicts)."""
    data = json.loads(line)
    if not isinstance(data, dict):
        raise ProtocolError("response must be a JSON object")
    return data
