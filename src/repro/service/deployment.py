"""A resident Scoop deployment: the trial loop as a long-lived facade.

Historically the only way to ask Scoop a question was to run a batch
trial to completion inside the experiment runner's monolithic loop.
:class:`Deployment` breaks that loop into a public lifecycle —

* :meth:`Deployment.create` wires topology, network, motes, workload and
  failure schedule from one :class:`~repro.experiments.runner.ExperimentSpec`
  (the wiring previously duplicated across the runner and example
  scripts);
* :meth:`~Deployment.boot` and :meth:`~Deployment.stabilize` run the
  paper's warm-up phases (boot + tree stabilization, then sampling and
  periodic remaps);
* :meth:`~Deployment.advance` steps the kernel by wall-relative
  simulated time, keeping the network resident between steps;
* :meth:`~Deployment.query` injects an externally supplied query into
  the basestation mid-flight and returns the structured
  :class:`~repro.core.query.QueryResult` — no tuple or dict
  side-channels.

The batch runner (:func:`repro.experiments.runner.run_experiment`) is a
thin driver over this facade and is byte-identical to the pre-facade
monolith: every simulator call happens in the same order, so trial
trajectories (and the persistent result cache) are unchanged. The
service gateway (:mod:`repro.service.gateway`) keeps one ``Deployment``
per tenant and multiplexes client query streams over it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.basestation import Basestation
from repro.core.config import ScoopConfig
from repro.core.node import ScoopNode
from repro.core.query import Query, QueryResult
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    _collect,
    build_failure_schedule,
    build_motes,
    build_topology,
    build_workload,
)
from repro.sim.failure import FailureInjector
from repro.sim.network import Network
from repro.sim.topology import Topology
from repro.workloads.queries import QueryGenerator

#: Lifecycle phases, in order. Misusing the lifecycle (querying before
#: the deployment serves, booting twice) raises with a clear message
#: instead of silently producing a half-wired network.
_PHASES = ("created", "booted", "live", "drained")


class Deployment:
    """One wired, resident Scoop network driven by simulated time.

    Build with :meth:`create`; never construct directly — the
    constructor takes already-wired components and exists so ``create``
    stays the single wiring path.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        net: Network,
        base: Basestation,
        nodes: List[ScoopNode],
    ):
        self.spec = spec
        self.net = net
        self.base = base
        self.nodes = nodes
        #: queries issued so far — internal stream ticks plus external
        #: :meth:`query` calls (the batch runner's ``queries_issued``).
        self.queries_issued = 0
        #: serving-layer metrics attached by the load driver
        #: (:func:`repro.service.loadtest.drive_load`); exported through
        #: ``TrialMetrics.service``.
        self.service_stats: Dict[str, float] = {}
        #: per-shard serving breakdown, same source; the in-process load
        #: driver reports the single synthetic ``shard0``. Exported
        #: through ``TrialMetrics.service_shards``.
        self.service_shards: Dict[str, Dict[str, float]] = {}
        self._phase = "created"
        self._generator: Optional[QueryGenerator] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, spec: ExperimentSpec, topology: Optional[Topology] = None
    ) -> "Deployment":
        """Wire a deployment from a spec: topology, network, workload,
        motes (via the policy registry) and the churn schedule.

        This is the consolidated wiring path — example scripts and the
        batch runner both go through here, so a spec means the same
        network everywhere. ``topology`` overrides the spec's generated
        one (it must match ``spec.scoop.n_nodes``).
        """
        config = spec.scoop
        topo = topology if topology is not None else build_topology(spec)
        if topo.n != config.n_nodes:
            raise ValueError(
                f"topology has {topo.n} nodes but config expects {config.n_nodes}"
            )
        if spec.query_plan.n_attributes > config.n_attributes:
            raise ValueError(
                f"query plan names {spec.query_plan.n_attributes} attributes but "
                f"the config registers {config.n_attributes}"
            )
        net = Network(topo, seed=spec.seed)
        workload = build_workload(spec, topo)
        base, nodes = build_motes(spec, net, workload)
        # Failure injection (E14): arm the churn schedule before anything
        # runs; kills/revives then fire on the simulation clock mid-workload.
        schedule = build_failure_schedule(spec)
        if schedule is not None:
            FailureInjector(net, schedule).arm()
        return cls(spec, net, base, nodes)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def config(self) -> ScoopConfig:
        return self.spec.scoop

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.net.sim.now

    @property
    def phase(self) -> str:
        return self._phase

    @property
    def index_epoch(self) -> int:
        """The basestation's remap epoch (its shared sid counter).

        Bumps whenever a remap disseminates new storage indexes; the
        gateway's answer cache keys on it so cached answers
        self-invalidate the moment the mapping changes.
        """
        return self.base.index_epoch

    def _require(self, phase: str, doing: str) -> None:
        if self._phase != phase:
            raise RuntimeError(
                f"cannot {doing} while the deployment is {self._phase!r}; "
                f"lifecycle is create() -> boot() -> stabilize() -> "
                f"advance()/query() -> drain() -> collect()"
            )

    def boot(self) -> None:
        """Boot every mote (staggered within one beacon interval)."""
        self._require("created", "boot()")
        self.net.boot_all(within=self.config.beacon_interval)
        self._phase = "booted"

    def stabilize(self) -> None:
        """Run the warm-up (paper: 10 minutes of heartbeats), then start
        sampling and periodic index remaps. The deployment serves
        queries from here on."""
        self._require("booted", "stabilize()")
        config = self.config
        self.net.run(config.stabilization)
        for node in self.nodes:
            node.start_sampling()
        self.base.start_scoop()
        self._generator = QueryGenerator(
            self.spec.query_plan,
            config.domain,
            list(config.sensor_ids),
            rng=self.net.sim.rng,
            attribute_domains=[config.domain_of(a) for a in config.attribute_ids],
        )
        self._phase = "live"

    def start_query_stream(
        self, on_result: Optional[Callable[[QueryResult], None]] = None
    ) -> None:
        """Schedule the internal query stream (one generator query per
        ``query_interval``, stopping at the end of the measured phase) —
        the batch trials' workload. Externally driven deployments (the
        gateway, the load driver) skip this and call :meth:`query`."""
        self._require("live", "start_query_stream()")
        net, base, config = self.net, self.base, self.config
        generator = self._generator

        def query_tick() -> None:
            if net.sim.now >= config.stabilization + config.duration:
                return
            result = base.issue_query(generator.next_query(net.sim.now))
            self.queries_issued += 1
            if on_result is not None:
                on_result(result)
            net.sim.schedule(config.query_interval, query_tick)

        net.sim.schedule(config.query_interval, query_tick)

    def advance(self, dt: float) -> None:
        """Step the kernel ``dt`` simulated seconds forward."""
        if dt < 0:
            raise ValueError(f"cannot advance by negative time ({dt})")
        self.net.run(self.net.sim.now + dt)

    def run_until(self, t: float) -> None:
        """Step the kernel to absolute simulated time ``t`` (no-op when
        the clock is already past it)."""
        if t > self.net.sim.now:
            self.net.run(t)

    # ------------------------------------------------------------------
    # External queries
    # ------------------------------------------------------------------
    def query(
        self,
        attr: int = 0,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
        time_range: Optional[Tuple[float, float]] = None,
        nodes: Optional[frozenset] = None,
        wait: bool = True,
    ) -> QueryResult:
        """Inject an externally supplied query mid-flight.

        Builds a validated :class:`~repro.core.query.Query` — the named
        attribute must be registered and ``[lo, hi]`` must sit inside its
        domain (malformed queries raise, they never return an empty
        answer) — and issues it through the basestation. ``lo``/``hi``
        default to the attribute's domain bounds; ``time_range`` defaults
        to the query plan's look-back window ending now. With ``wait``
        (the default) the kernel advances through the reply window so the
        returned result is closed; ``wait=False`` returns the open result
        for callers that batch several queries per window (the gateway).
        """
        self._require("live", "query()")
        config = self.config
        now = self.net.sim.now
        domain = config.domain_of(attr)
        if time_range is None:
            time_range = (max(0.0, now - self.spec.query_plan.time_window), now)
        value_range: Optional[Tuple[int, int]] = None
        if nodes is None and (lo is not None or hi is not None):
            value_range = (
                domain.lo if lo is None else int(lo),
                domain.hi if hi is None else int(hi),
            )
        query = Query(
            time_range=time_range,
            value_range=value_range,
            node_list=frozenset(nodes) if nodes else None,
            attr=attr,
            domain=domain,
        )
        result = self.base.issue_query(query)
        self.queries_issued += 1
        if wait and not result.closed:
            self.net.run(now + config.query_reply_window)
        return result

    def force_remap(self) -> None:
        """Run one index remap cycle immediately, outside the periodic
        timer — the serving layer's explicit invalidation hook."""
        self.base.force_remap()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """End the measured phase: flush batches, let in-flight frames
        and open reply windows land."""
        self._require("live", "drain()")
        for node in self.nodes:
            if node.booted:  # dead nodes have nothing to stop or flush
                node.stop_sampling()
        self.net.run(self.net.sim.now + self.config.query_reply_window + 5.0)
        self._phase = "drained"

    def collect(self, wall_clock_s: float = 0.0) -> ExperimentResult:
        """Fold the deployment's accounting into an
        :class:`~repro.experiments.runner.ExperimentResult` (the batch
        trials' measurement record)."""
        return _collect(
            self.spec,
            self.net,
            self.base,
            self.queries_issued,
            wall_clock_s=wall_clock_s,
            service=self.service_stats or None,
            service_shards=self.service_shards or None,
        )
