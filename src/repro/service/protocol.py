"""Length-prefixed binary framing for the query service.

The JSON-lines transport of PR 7 had no version field, no backpressure,
and no way to interleave server-push telemetry with responses. This
module defines the framed replacement both ends speak
(:class:`~repro.service.client.ScoopClient` ↔
:class:`~repro.service.server.ScoopServer`):

======  ======  =====================================================
offset  size    field
======  ======  =====================================================
0       4       ``length`` — big-endian uint32, byte count of
                everything after this field (header + payload).
4       1       ``type`` — :class:`FrameType`.
5       1       ``version`` — :data:`~repro.service.api.PROTOCOL_VERSION`
                the sender speaks.
6       4       ``seq`` — big-endian uint32 request-correlation id
                (0 for unsolicited frames: METRICS, CREDIT).
10      ...     ``payload`` — UTF-8 JSON, frame-type specific.
======  ======  =====================================================

Frames are self-delimiting, so any number of them can ride one TCP
stream in either direction, interleaved with server-push METRICS and
CREDIT frames. :class:`FrameDecoder` is incremental and adversarially
defensive: partial writes simply wait for more bytes, while oversize
length prefixes, unknown frame types, version skew and non-JSON payloads
raise :class:`~repro.service.api.ProtocolError` (never anything else) —
a worker survives any byte stream a client can produce.

Backpressure is credit-based per connection: the server's WELCOME grants
``credits`` — the maximum in-flight (unanswered) requests on the
connection. Every RESPONSE/ERROR implicitly returns its request's
credit; CREDIT frames adjust the window explicitly. A client that
overruns its window is shed *at the socket* (an ERROR frame with code
``shed``) before the request can balloon the admission queue.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.service.api import (
    PROTOCOL_VERSION,
    ProtocolError,
    QueryAnswer,
    QueryRequest,
    ServiceError,
    ServiceStats,
)

#: struct layout of the fixed header after the length prefix.
_HEADER = struct.Struct(">BBI")
#: struct layout of the length prefix itself.
_LENGTH = struct.Struct(">I")
HEADER_SIZE = _LENGTH.size + _HEADER.size

#: Hard bound on ``length``: anything larger is a protocol violation
#: (or an attack), refused before any allocation happens.
MAX_FRAME_SIZE = 1 << 20

#: Default per-connection credit window (max in-flight requests).
DEFAULT_CREDITS = 32


class FrameType(enum.IntEnum):
    """Every frame the protocol defines, both directions."""

    HELLO = 1  # client → server: version + options; blocks until ready
    WELCOME = 2  # server → client: version, tenants, credit window
    REQUEST = 3  # client → server: one QueryRequest
    RESPONSE = 4  # server → client: one QueryAnswer
    ERROR = 5  # server → client: one ServiceError
    STATS = 6  # client → server (empty) and server → client (payload)
    METRICS = 7  # server → client push: live per-shard scorecards
    CREDIT = 8  # server → client: explicit credit-window adjustment
    PING = 9  # client → server keepalive
    PONG = 10  # server → client keepalive reply


_KNOWN_TYPES = frozenset(int(t) for t in FrameType)


@dataclass(frozen=True)
class Frame:
    """One decoded frame: type + version + correlation seq + JSON body."""

    type: FrameType
    seq: int = 0
    payload: Dict[str, object] = None  # type: ignore[assignment]
    version: int = PROTOCOL_VERSION

    def __post_init__(self) -> None:
        if self.payload is None:
            object.__setattr__(self, "payload", {})


def encode_frame(
    type: FrameType,
    payload: Optional[Dict[str, object]] = None,
    seq: int = 0,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Serialize one frame (length prefix + header + JSON payload)."""
    body = json.dumps(
        payload or {}, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(body) + _HEADER.size > MAX_FRAME_SIZE:
        raise ProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_SIZE}-byte frame bound"
        )
    header = _HEADER.pack(int(type), version, seq & 0xFFFFFFFF)
    return _LENGTH.pack(len(header) + len(body)) + header + body


class FrameDecoder:
    """Incremental, defensive frame decoder.

    Feed it byte chunks as they arrive (any fragmentation — a frame
    split across a hundred writes, or a hundred frames in one chunk);
    it yields complete :class:`Frame`\\ s. All violations raise
    :class:`~repro.service.api.ProtocolError`; after one the decoder is
    poisoned (the stream cannot be resynchronized) and every further
    feed raises.
    """

    def __init__(self, require_version: Optional[int] = PROTOCOL_VERSION):
        self._buffer = bytearray()
        self._poisoned: Optional[str] = None
        #: accept only this protocol version (None = any, for the
        #: pre-negotiation HELLO which carries its own version to check).
        self.require_version = require_version

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Absorb ``data``; return every frame completed by it."""
        return list(self.feed_iter(data))

    def feed_iter(self, data: bytes) -> Iterator[Frame]:
        if self._poisoned is not None:
            raise ProtocolError(
                f"stream already failed: {self._poisoned}"
            )
        self._buffer.extend(data)
        while True:
            frame = self._next_frame()
            if frame is None:
                return
            yield frame

    def _fail(self, message: str) -> ProtocolError:
        self._poisoned = message
        return ProtocolError(message)

    def _next_frame(self) -> Optional[Frame]:
        buf = self._buffer
        if len(buf) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack_from(buf, 0)
        if length > MAX_FRAME_SIZE:
            raise self._fail(
                f"frame length {length} exceeds the {MAX_FRAME_SIZE}-byte bound"
            )
        if length < _HEADER.size:
            raise self._fail(
                f"frame length {length} is shorter than the {_HEADER.size}-byte header"
            )
        if len(buf) < _LENGTH.size + length:
            return None  # truncated: wait for more bytes
        ftype, version, seq = _HEADER.unpack_from(buf, _LENGTH.size)
        body = bytes(buf[HEADER_SIZE : _LENGTH.size + length])
        del buf[: _LENGTH.size + length]
        if ftype not in _KNOWN_TYPES:
            raise self._fail(f"unknown frame type {ftype}")
        if (
            self.require_version is not None
            and version != self.require_version
            and ftype != FrameType.HELLO
        ):
            # HELLO is exempt: it *carries* the version to negotiate.
            raise self._fail(
                f"frame version {version} != negotiated {self.require_version}"
            )
        try:
            payload = json.loads(body) if body else {}
        except ValueError as exc:
            raise self._fail(f"frame payload is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise self._fail("frame payload must be a JSON object")
        return Frame(
            type=FrameType(ftype), seq=seq, payload=payload, version=version
        )


def decode_frames(data: bytes) -> List[Frame]:
    """Decode a complete byte string into its frames (tests, tools)."""
    decoder = FrameDecoder()
    frames = decoder.feed(data)
    if decoder.buffered:
        raise ProtocolError(
            f"{decoder.buffered} trailing bytes after the last complete frame"
        )
    return frames


# ----------------------------------------------------------------------
# Frame constructors (the payload schemas, in one place)
# ----------------------------------------------------------------------
def hello_frame(
    client: str = "scoop-client",
    subscribe_metrics: bool = False,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Client hello: opens the conversation, names the protocol version,
    and optionally subscribes to the live metrics stream. The server
    answers with WELCOME only once its shards report ready — the
    readiness handshake that keeps first queries from racing warmup."""
    return encode_frame(
        FrameType.HELLO,
        {
            "protocol": version,
            "client": client,
            "metrics": bool(subscribe_metrics),
        },
        version=version,
    )


def welcome_frame(
    tenants: List[str],
    credits: int = DEFAULT_CREDITS,
    workers: int = 1,
) -> bytes:
    return encode_frame(
        FrameType.WELCOME,
        {
            "protocol": PROTOCOL_VERSION,
            "tenants": list(tenants),
            "credits": int(credits),
            "workers": int(workers),
        },
    )


def request_frame(request: QueryRequest) -> bytes:
    """One :class:`~repro.service.api.QueryRequest` (seq rides in the
    header and the payload; the header copy is authoritative)."""
    return encode_frame(FrameType.REQUEST, request.to_wire(), seq=request.seq)


def response_frame(answer: QueryAnswer) -> bytes:
    return encode_frame(FrameType.RESPONSE, answer.to_wire(), seq=answer.seq)


def error_frame(error: ServiceError) -> bytes:
    return encode_frame(FrameType.ERROR, error.to_wire(), seq=error.seq)


def stats_request_frame(seq: int) -> bytes:
    return encode_frame(FrameType.STATS, {}, seq=seq)


def stats_frame(stats: ServiceStats, seq: int) -> bytes:
    return encode_frame(FrameType.STATS, stats.to_wire(), seq=seq)


def metrics_frame(
    shard: str,
    tick: int,
    shard_stats: Dict[str, float],
    tenants: Optional[Dict[str, Dict[str, float]]] = None,
) -> bytes:
    """One live telemetry push for one shard: queue depth, hit rate,
    p95, shed count — the streaming replacement for end-of-run
    snapshots. ``tick`` increments per push so clients can spot gaps."""
    return encode_frame(
        FrameType.METRICS,
        {
            "shard": shard,
            "tick": int(tick),
            "stats": dict(shard_stats),
            "tenants": {k: dict(v) for k, v in (tenants or {}).items()},
        },
    )


def credit_frame(credits: int) -> bytes:
    """Explicit credit-window adjustment (the implicit per-response
    credit return covers the steady state)."""
    return encode_frame(FrameType.CREDIT, {"credits": int(credits)})


def ping_frame(seq: int = 0) -> bytes:
    return encode_frame(FrameType.PING, {}, seq=seq)


def pong_frame(seq: int = 0, tenants: Optional[List[str]] = None) -> bytes:
    return encode_frame(
        FrameType.PONG, {"tenants": list(tenants or [])}, seq=seq
    )


def negotiate_hello(payload: Dict[str, Any]) -> Tuple[int, bool]:
    """Validate a HELLO payload; return ``(version, wants_metrics)``.

    Raises :class:`~repro.service.api.ProtocolVersionError` when the
    client speaks a version this server does not.
    """
    from repro.service.api import ProtocolVersionError

    try:
        version = int(payload.get("protocol", -1))
    except (TypeError, ValueError):
        raise ProtocolError("hello carries a non-integer protocol version")
    if version != PROTOCOL_VERSION:
        raise ProtocolVersionError(
            f"client speaks protocol {version}, server speaks "
            f"{PROTOCOL_VERSION}"
        )
    return version, bool(payload.get("metrics", False))
