"""The framed TCP server: credit backpressure, readiness, metrics push.

:class:`ScoopServer` exposes any gateway speaking the duck-type contract
(:class:`~repro.service.gateway.QueryGateway` in-process,
:class:`~repro.service.shard.ShardedGateway` multi-process) over the
length-prefixed protocol of :mod:`repro.service.protocol`.

Per-connection lifecycle:

1. The client's first frame must be HELLO. The server validates the
   protocol version (:class:`~repro.service.api.ProtocolVersionError`
   on skew) and then *blocks the handshake on gateway readiness* — the
   WELCOME is only sent once every shard has finished boot +
   stabilization, so a first query can never race warmup.
2. WELCOME grants the connection's credit window: the maximum in-flight
   (unanswered) REQUESTs. A client that overruns it is shed *at the
   socket* — an ERROR frame with code ``shed``, counted in
   ``sheds_socket`` — before the request can reach (and balloon) any
   tenant admission queue. Credits return implicitly with every
   RESPONSE/ERROR.
3. A HELLO with ``metrics: true`` subscribes the connection to the live
   telemetry stream: every ``metrics_interval`` seconds the server
   pushes one METRICS frame per shard (queue depth, hit rate, p95, shed
   count), interleaved with responses — the streaming replacement for
   end-of-run snapshots.

Framing violations (oversize length prefix, unknown frame type, version
skew after negotiation, non-JSON payload) poison only the offending
connection: the server answers with a final ERROR frame (code
``protocol``), counts it, and closes that socket. The listener and all
other connections keep serving.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Dict, Optional

from repro.service.api import (
    ProtocolError,
    QueryRequest,
    ServiceFault,
    ServiceStats,
    exception_to_error,
)
from repro.service.protocol import (
    DEFAULT_CREDITS,
    FrameDecoder,
    FrameType,
    error_frame,
    metrics_frame,
    negotiate_hello,
    pong_frame,
    response_frame,
    stats_frame,
    welcome_frame,
)

#: How often (seconds, wall clock) subscribed connections receive the
#: per-shard METRICS push.
DEFAULT_METRICS_INTERVAL = 0.5


class ScoopServer:
    """One listening socket in front of a gateway."""

    def __init__(
        self,
        gateway,
        host: str = "127.0.0.1",
        port: int = 0,
        credits: int = DEFAULT_CREDITS,
        metrics_interval: float = DEFAULT_METRICS_INTERVAL,
    ):
        self.gateway = gateway
        self.host = host
        self.port = port
        self.credits = credits
        self.metrics_interval = metrics_interval
        self._server: Optional[asyncio.AbstractServer] = None
        #: listener-level counters, exported as ``ServiceStats.protocol``.
        self.counters: Dict[str, float] = {
            "connections": 0.0,
            "connections_open": 0.0,
            "frames_in": 0.0,
            "frames_out": 0.0,
            "requests": 0.0,
            "protocol_errors": 0.0,
            "sheds_socket": 0.0,
            "metrics_pushed": 0.0,
            "retries_signalled": 0.0,
        }

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]

    @property
    def address(self):
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def service_stats(self) -> ServiceStats:
        """Gateway stats plus this listener's protocol counters."""
        stats = await self.gateway.service_stats()
        return ServiceStats(
            tenants=stats.tenants,
            shards=stats.shards,
            protocol=dict(self.counters),
        )

    # ------------------------------------------------------------------
    async def _send(self, writer, lock: asyncio.Lock, data: bytes) -> None:
        """Serialize writes: responses, errors and metrics pushes come
        from different tasks but must not interleave mid-frame."""
        async with lock:
            writer.write(data)
            await writer.drain()
        self.counters["frames_out"] += 1

    async def _handle(self, reader, writer) -> None:
        self.counters["connections"] += 1
        self.counters["connections_open"] += 1
        decoder = FrameDecoder()
        lock = asyncio.Lock()
        inflight: set = set()
        pending: set = set()
        greeted = False
        credits = self.credits
        metrics_task: Optional[asyncio.Task] = None
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    self.counters["protocol_errors"] += 1
                    await self._send(writer, lock, error_frame(exception_to_error(exc)))
                    break
                for frame in frames:
                    self.counters["frames_in"] += 1
                    if not greeted:
                        if frame.type != FrameType.HELLO:
                            self.counters["protocol_errors"] += 1
                            exc = ProtocolError(
                                f"first frame must be HELLO, got {frame.type.name}"
                            )
                            await self._send(
                                writer, lock, error_frame(exception_to_error(exc))
                            )
                            return
                        try:
                            _version, wants_metrics = negotiate_hello(frame.payload)
                        except ServiceFault as exc:
                            self.counters["protocol_errors"] += 1
                            await self._send(
                                writer, lock, error_frame(exception_to_error(exc))
                            )
                            return
                        # Readiness handshake: WELCOME only once every
                        # shard reports ready.
                        await self.gateway.ready.wait()
                        greeted = True
                        await self._send(
                            writer,
                            lock,
                            welcome_frame(
                                tenants=self.gateway.tenants,
                                credits=credits,
                                workers=self.gateway.workers,
                            ),
                        )
                        if wants_metrics and self.metrics_interval > 0:
                            metrics_task = asyncio.create_task(
                                self._push_metrics(writer, lock)
                            )
                        continue
                    if frame.type == FrameType.PING:
                        await self._send(
                            writer,
                            lock,
                            pong_frame(seq=frame.seq, tenants=self.gateway.tenants),
                        )
                    elif frame.type == FrameType.STATS:
                        stats = await self.service_stats()
                        await self._send(
                            writer, lock, stats_frame(stats, seq=frame.seq)
                        )
                    elif frame.type == FrameType.REQUEST:
                        if len(inflight) >= credits:
                            # Credit overrun: shed at the socket, before
                            # the request can touch an admission queue.
                            self.counters["sheds_socket"] += 1
                            fault = ServiceFault(
                                f"credit window of {credits} in-flight "
                                f"requests overrun",
                                seq=frame.seq,
                            )
                            fault.code = "shed"
                            await self._send(
                                writer, lock, error_frame(exception_to_error(fault))
                            )
                            continue
                        self.counters["requests"] += 1
                        inflight.add(frame.seq)
                        task = asyncio.create_task(
                            self._answer(writer, lock, inflight, frame)
                        )
                        pending.add(task)
                        task.add_done_callback(pending.discard)
                    else:
                        # WELCOME/RESPONSE/... are server-to-client only.
                        self.counters["protocol_errors"] += 1
                        exc = ProtocolError(
                            f"unexpected client frame {frame.type.name}",
                            seq=frame.seq,
                        )
                        await self._send(
                            writer, lock, error_frame(exception_to_error(exc))
                        )
                        return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self.counters["connections_open"] -= 1
            if metrics_task is not None:
                metrics_task.cancel()
            for task in list(pending):
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _answer(self, writer, lock, inflight: set, frame) -> None:
        """Answer one REQUEST frame; always returns its credit."""
        try:
            request = QueryRequest.from_wire(frame.payload)
            if request.seq != frame.seq:
                # The header copy is authoritative.
                request = dataclasses.replace(request, seq=frame.seq)
            answer = await self.gateway.answer(request)
            payload = response_frame(answer)
        except ServiceFault as exc:
            if exc.seq == 0:
                exc.seq = frame.seq
            if exc.code == "retry":
                # A shard mid-respawn told this client to come back;
                # count the signal — the chaos gate asserts it fired.
                self.counters["retries_signalled"] += 1
            payload = error_frame(exception_to_error(exc))
        except asyncio.CancelledError:
            raise
        finally:
            inflight.discard(frame.seq)
        try:
            await self._send(writer, lock, payload)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _push_metrics(self, writer, lock) -> None:
        """The live telemetry stream for one subscribed connection."""
        try:
            while True:
                await asyncio.sleep(self.metrics_interval)
                snapshots = self.gateway.metrics_snapshots()
                for shard, snap in sorted(snapshots.items()):
                    await self._send(
                        writer,
                        lock,
                        metrics_frame(
                            shard=shard,
                            tick=snap.get("tick", 0),
                            shard_stats=snap.get("stats", {}),
                            tenants=snap.get("tenants", {}),
                        ),
                    )
                    self.counters["metrics_pushed"] += 1
        except asyncio.CancelledError:
            raise
        except (ConnectionResetError, BrokenPipeError, OSError):
            return


async def serve_framed(
    gateway,
    host: str = "127.0.0.1",
    port: int = 0,
    credits: int = DEFAULT_CREDITS,
    metrics_interval: float = DEFAULT_METRICS_INTERVAL,
) -> ScoopServer:
    """Bind a :class:`ScoopServer` and return it (started, not serving
    forever — callers own the lifetime)."""
    server = ScoopServer(
        gateway,
        host=host,
        port=port,
        credits=credits,
        metrics_interval=metrics_interval,
    )
    await server.start()
    return server
