"""The supported client entry points: ``ScoopClient`` / ``AsyncScoopClient``.

These two classes are the *only* supported ways to talk to a Scoop
query server — everything else (raw sockets, the deprecated JSON-lines
dicts) is service-internal. Both speak the framed protocol of
:mod:`repro.service.protocol` and surface failures as the typed
exceptions of :mod:`repro.service.api`:

* :class:`~repro.service.api.ShedError` — overload (admission-queue or
  socket-level credit shed); back off and retry.
* :class:`~repro.service.api.ShardRestartingError` — the tenant's shard
  lost its worker and is coming back; **handled internally**: both
  clients retry the query with capped exponential backoff (``retries``
  attempts) before surfacing the fault.
* :class:`~repro.service.api.MalformedRequestError` — the request was
  wrong (unknown tenant, out-of-domain range); fix it, don't retry.
* :class:`~repro.service.api.ProtocolVersionError` — client and server
  disagree on :data:`~repro.service.api.PROTOCOL_VERSION`.
* :class:`~repro.service.api.ProtocolError` — the stream broke framing.

Both clients are context-managed::

    with ScoopClient("127.0.0.1", 4217) as client:
        answer = client.query(tenant="tenant0", attr=0, lo=10, hi=40)
        print(answer.n_readings, answer.latency_s)

    async with AsyncScoopClient("127.0.0.1", 4217) as client:
        answer = await client.query(tenant="tenant0")

Connecting performs the hello/WELCOME handshake, which doubles as the
readiness barrier: the server holds the WELCOME until every shard has
finished booting, so a connected client can query immediately.
Connections that subscribed with ``metrics=True`` accumulate server-push
telemetry in :attr:`metrics` (a bounded deque of per-shard scorecards).
"""

from __future__ import annotations

import asyncio
import socket
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.service.api import (
    PROTOCOL_VERSION,
    ProtocolError,
    QueryAnswer,
    QueryRequest,
    ServiceError,
    ServiceStats,
    ShardRestartingError,
    ShedError,
    error_to_exception,
)
from repro.service.protocol import (
    FrameDecoder,
    FrameType,
    encode_frame,
    hello_frame,
    request_frame,
    stats_request_frame,
)

#: Server-push METRICS frames kept per connection (older ones roll off).
METRICS_BUFFER = 256

#: Default retry policy against the ``retry`` wire code: attempts and
#: the capped exponential backoff between them. Defaults cover one
#: worker-respawn cycle (~sum of the gateway's backoff ladder); chaos
#: load drivers raise ``retries`` to ride out slower reboots.
DEFAULT_RETRIES = 8
RETRY_BASE_S = 0.25
RETRY_CAP_S = 2.0


def _retry_delay(attempt: int, base_s: float, cap_s: float) -> float:
    """Capped exponential backoff before 0-based retry ``attempt`` —
    the client-side mirror of the supervisor's respawn schedule."""
    return min(cap_s, base_s * (2.0**attempt))


def _answer_or_raise(payload: Dict[str, object]) -> QueryAnswer:
    """Decode a RESPONSE payload; shed answers surface as ShedError."""
    answer = QueryAnswer.from_wire(payload)
    if answer.status == "shed":
        raise ShedError(
            f"tenant {answer.tenant!r} shed request seq={answer.seq} "
            f"(admission queue full)",
            seq=answer.seq,
        )
    return answer


class ScoopClient:
    """Synchronous client over one blocking TCP connection.

    Strictly request/response from the caller's view: ``query`` blocks
    until its answer frame arrives, absorbing any interleaved METRICS
    pushes into :attr:`metrics` along the way.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 4217,
        name: str = "scoop-client",
        metrics: bool = False,
        timeout: Optional[float] = 60.0,
        version: int = PROTOCOL_VERSION,
        retries: int = DEFAULT_RETRIES,
        retry_base_s: float = RETRY_BASE_S,
        retry_cap_s: float = RETRY_CAP_S,
    ):
        self.host = host
        self.port = port
        self.name = name
        self.subscribe_metrics = metrics
        self.timeout = timeout
        self.version = version
        self.retries = retries
        self.retry_base_s = retry_base_s
        self.retry_cap_s = retry_cap_s
        #: total ``retry``-code resends this client performed (telemetry
        #: for the chaos loadtest report).
        self.retries_used = 0
        self.tenants: List[str] = []
        self.credits = 0
        self.workers = 0
        self.metrics: Deque[Dict[str, object]] = deque(maxlen=METRICS_BUFFER)
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        self._frames: Deque = deque()
        self._seq = 0

    # -- lifecycle -----------------------------------------------------
    def connect(self) -> "ScoopClient":
        """Dial, send HELLO, block until the server's readiness-gated
        WELCOME. Raises :class:`ProtocolVersionError` on version skew."""
        if self._sock is not None:
            return self
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._send(
            hello_frame(
                client=self.name,
                subscribe_metrics=self.subscribe_metrics,
                version=self.version,
            )
        )
        frame = self._wait(FrameType.WELCOME, seq=None)
        self.tenants = [str(t) for t in frame.payload.get("tenants", [])]
        self.credits = int(frame.payload.get("credits", 0))
        self.workers = int(frame.payload.get("workers", 0))
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ScoopClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire plumbing -------------------------------------------------
    def _send(self, data: bytes) -> None:
        if self._sock is None:
            raise ProtocolError("client is not connected")
        self._sock.sendall(data)

    def _wait(self, ftype: FrameType, seq: Optional[int]):
        """Read frames until one matches ``(type, seq)``; buffer or
        absorb everything else (METRICS → :attr:`metrics`; ERROR frames
        for our seq raise their typed exception)."""
        while True:
            for _ in range(len(self._frames)):
                frame = self._frames.popleft()
                matched = self._dispatch(frame, ftype, seq)
                if matched is not None:
                    return matched
            data = self._sock.recv(65536)
            if not data:
                raise ProtocolError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))

    def _dispatch(self, frame, ftype: FrameType, seq: Optional[int]):
        if frame.type == FrameType.METRICS:
            self.metrics.append(dict(frame.payload))
            return None
        if frame.type == FrameType.ERROR and (seq is None or frame.seq == seq):
            raise error_to_exception(ServiceError.from_wire(frame.payload))
        if frame.type == ftype and (seq is None or frame.seq == seq):
            return frame
        # A frame for a different outstanding exchange: keep it queued.
        self._frames.append(frame)
        return None

    # -- operations ----------------------------------------------------
    def query(
        self,
        tenant: str = "tenant0",
        attr: int = 0,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ) -> QueryAnswer:
        """One range query; blocks for the answer. Raises the typed
        faults (:class:`ShedError`, :class:`MalformedRequestError`, ...)
        instead of returning error strings. The retryable ``retry`` code
        (shard mid-respawn) is absorbed: the query is resent, with
        capped backoff, up to ``retries`` times before the fault
        surfaces."""
        for attempt in range(self.retries + 1):
            self._seq += 1
            request = QueryRequest(
                tenant=tenant, attr=attr, lo=lo, hi=hi, seq=self._seq
            )
            try:
                self._send(request_frame(request))
                frame = self._wait(FrameType.RESPONSE, seq=request.seq)
            except ShardRestartingError:
                if attempt >= self.retries:
                    raise
                self.retries_used += 1
                time.sleep(
                    _retry_delay(attempt, self.retry_base_s, self.retry_cap_s)
                )
                continue
            return _answer_or_raise(frame.payload)
        raise AssertionError("unreachable: retry loop always returns/raises")

    def stats(self) -> ServiceStats:
        self._seq += 1
        self._send(stats_request_frame(self._seq))
        frame = self._wait(FrameType.STATS, seq=self._seq)
        return ServiceStats.from_wire(frame.payload)

    def ping(self) -> List[str]:
        self._seq += 1
        self._send(encode_frame(FrameType.PING, {}, seq=self._seq))
        frame = self._wait(FrameType.PONG, seq=self._seq)
        return [str(t) for t in frame.payload.get("tenants", [])]


class AsyncScoopClient:
    """Asyncio client over one connection; safe for concurrent queries.

    A background reader task demultiplexes the stream: responses resolve
    their request's future by seq, METRICS pushes land in
    :attr:`metrics`. Many coroutines may await :meth:`query`
    concurrently on one connection — that is the supported way to keep a
    server's credit window full.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 4217,
        name: str = "scoop-client",
        metrics: bool = False,
        version: int = PROTOCOL_VERSION,
        retries: int = DEFAULT_RETRIES,
        retry_base_s: float = RETRY_BASE_S,
        retry_cap_s: float = RETRY_CAP_S,
    ):
        self.host = host
        self.port = port
        self.name = name
        self.subscribe_metrics = metrics
        self.version = version
        self.retries = retries
        self.retry_base_s = retry_base_s
        self.retry_cap_s = retry_cap_s
        #: total ``retry``-code resends this client performed.
        self.retries_used = 0
        self.tenants: List[str] = []
        self.credits = 0
        self.workers = 0
        self.metrics: Deque[Dict[str, object]] = deque(maxlen=METRICS_BUFFER)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._decoder = FrameDecoder()
        self._seq = 0
        self._closed = False
        self._welcome: Optional[asyncio.Future] = None

    # -- lifecycle -----------------------------------------------------
    async def connect(self) -> "AsyncScoopClient":
        if self._writer is not None:
            return self
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        loop = asyncio.get_running_loop()
        self._welcome = loop.create_future()
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="scoop-client-reader"
        )
        self._writer.write(
            hello_frame(
                client=self.name,
                subscribe_metrics=self.subscribe_metrics,
                version=self.version,
            )
        )
        await self._writer.drain()
        welcome = await self._welcome
        self.tenants = [str(t) for t in welcome.get("tenants", [])]
        self.credits = int(welcome.get("credits", 0))
        self.workers = int(welcome.get("workers", 0))
        return self

    async def aclose(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
        self._fail_pending(ProtocolError("client closed"))

    async def __aenter__(self) -> "AsyncScoopClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- reader --------------------------------------------------------
    def _fail_pending(self, exc: Exception) -> None:
        if self._welcome is not None and not self._welcome.done():
            self._welcome.set_exception(exc)
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    self._fail_pending(
                        ProtocolError("server closed the connection")
                    )
                    return
                for frame in self._decoder.feed(data):
                    self._on_frame(frame)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — surfaced via futures
            self._fail_pending(
                exc
                if isinstance(exc, ProtocolError)
                else ProtocolError(f"client reader failed: {exc}")
            )

    def _on_frame(self, frame) -> None:
        if frame.type == FrameType.METRICS:
            self.metrics.append(dict(frame.payload))
            return
        if frame.type == FrameType.WELCOME:
            if self._welcome is not None and not self._welcome.done():
                self._welcome.set_result(dict(frame.payload))
            return
        if frame.type == FrameType.ERROR:
            exc = error_to_exception(ServiceError.from_wire(frame.payload))
            future = self._pending.pop(frame.seq, None)
            if future is not None and not future.done():
                future.set_exception(exc)
            elif self._welcome is not None and not self._welcome.done():
                # Pre-WELCOME failure (version skew, bad hello).
                self._welcome.set_exception(exc)
            return
        future = self._pending.pop(frame.seq, None)
        if future is not None and not future.done():
            future.set_result(frame)

    # -- operations ----------------------------------------------------
    async def _exchange(self, data: bytes, seq: int):
        if self._writer is None or self._closed:
            raise ProtocolError("client is not connected")
        future = asyncio.get_running_loop().create_future()
        self._pending[seq] = future
        self._writer.write(data)
        await self._writer.drain()
        return await future

    async def query(
        self,
        tenant: str = "tenant0",
        attr: int = 0,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ) -> QueryAnswer:
        """One range query. Like the sync client, the retryable
        ``retry`` code is absorbed with capped backoff before the fault
        surfaces; other typed faults raise immediately."""
        for attempt in range(self.retries + 1):
            self._seq += 1
            request = QueryRequest(
                tenant=tenant, attr=attr, lo=lo, hi=hi, seq=self._seq
            )
            try:
                frame = await self._exchange(request_frame(request), request.seq)
            except ShardRestartingError:
                if attempt >= self.retries:
                    raise
                self.retries_used += 1
                await asyncio.sleep(
                    _retry_delay(attempt, self.retry_base_s, self.retry_cap_s)
                )
                continue
            return _answer_or_raise(frame.payload)
        raise AssertionError("unreachable: retry loop always returns/raises")

    async def stats(self) -> ServiceStats:
        self._seq += 1
        frame = await self._exchange(stats_request_frame(self._seq), self._seq)
        return ServiceStats.from_wire(frame.payload)

    async def ping(self) -> List[str]:
        self._seq += 1
        frame = await self._exchange(
            encode_frame(FrameType.PING, {}, seq=self._seq), self._seq
        )
        return [str(t) for t in frame.payload.get("tenants", [])]
