"""Deterministic offered-load generation for the E16 serving scenario.

A load test must be a pure function of the spec to ride the campaign
pipeline (persistent cache, jobs=1 ≡ jobs=4 bit-identity), so nothing
here touches wall clocks or the simulation's own RNG stream:

* :func:`build_arrivals` precomputes the whole request trace — Poisson
  arrivals at ``spec.service_qps`` over the measured phase, each picking
  an attribute and a value range from a small "hot set" (cacheable
  repeats) or a cold uniform draw — from a dedicated ``random.Random``
  seeded off the spec alone. Drawing from a separate stream keeps the
  simulated network's trajectory byte-identical whatever the offered
  load.
* :func:`drive_load` replays that trace against one resident
  :class:`~repro.service.deployment.Deployment` through a
  :class:`~repro.service.gateway.TenantService`: requests are submitted
  as the clock reaches their arrival times and queued misses are batched
  once per query interval — the same serving discipline the asyncio
  gateway applies, minus the event loop.

The resulting scorecard lands on ``deployment.service_stats`` and is
exported as ``TrialMetrics.service``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.runner import ExperimentSpec

#: Salt for the load-trace RNG stream — any spec-derived seed must not
#: collide with the simulation seed itself.
_ARRIVAL_SALT = 0xE16

#: Hot ranges per attribute; ~60% of requests re-ask one of these, which
#: is what gives the answer cache something to hit.
_HOT_RANGES = 6
_HOT_PROB = 0.6

#: A drain guard: after the measured phase the driver flushes the
#: backlog with at most this many extra batch windows.
_MAX_FLUSH_BATCHES = 64


@dataclass(frozen=True)
class Request:
    """One offered request in the precomputed trace."""

    time: float
    attr: int
    lo: int
    hi: int


def build_arrivals(spec: ExperimentSpec) -> List[Request]:
    """Precompute the offered-load trace for ``spec``.

    Poisson arrivals at ``spec.service_qps`` across the measured phase
    (stabilization → stabilization + duration), drawn from a dedicated
    RNG seeded off the spec — the simulation's RNG stream is never
    touched, so the network trajectory is independent of offered load.
    """
    qps = spec.service_qps
    if qps <= 0:
        return []
    config = spec.scoop
    rng = random.Random(spec.seed * 1_000_003 + _ARRIVAL_SALT)
    # Hot set first (fixed draw order: trace is stable under qps sweeps
    # only in distribution, but fully deterministic per spec).
    hot: Dict[int, List[Tuple[int, int]]] = {}
    for attr in config.attribute_ids:
        domain = config.domain_of(attr)
        width = max(1, int(domain.size * rng.uniform(0.02, 0.10)))
        ranges = []
        for _ in range(_HOT_RANGES):
            lo = rng.randint(domain.lo, max(domain.lo, domain.hi - width))
            ranges.append((lo, min(domain.hi, lo + width)))
        hot[attr] = ranges
    n_attrs = spec.query_plan.n_attributes
    start = config.stabilization
    end = config.stabilization + config.duration
    out: List[Request] = []
    t = start
    while True:
        t += rng.expovariate(qps)
        if t >= end:
            break
        attr = rng.randrange(n_attrs) if n_attrs > 1 else 0
        if rng.random() < _HOT_PROB:
            lo, hi = hot[attr][rng.randrange(_HOT_RANGES)]
        else:
            domain = config.domain_of(attr)
            a = rng.randint(domain.lo, domain.hi)
            b = rng.randint(domain.lo, domain.hi)
            lo, hi = (a, b) if a <= b else (b, a)
        out.append(Request(time=t, attr=attr, lo=lo, hi=hi))
    return out


def drive_load(deployment) -> Dict[str, float]:
    """Replay the spec's offered-load trace against a live deployment.

    Walks the measured phase one query interval at a time: requests
    whose arrival times have been reached are submitted (cache hits
    answer instantly, overload sheds explicitly), then queued misses are
    batched through the basestation. After the phase, the backlog is
    flushed with bounded extra batches so every admitted request is
    answered before the trial drains.

    Attaches the scorecard to ``deployment.service_stats`` and returns it.
    """
    from repro.service.gateway import TenantService

    spec = deployment.spec
    config = deployment.config
    arrivals = build_arrivals(spec)
    service = TenantService("batch", deployment)
    end = config.stabilization + config.duration
    i = 0
    boundary = config.stabilization
    while boundary < end:
        boundary = min(boundary + config.query_interval, end)
        while i < len(arrivals) and arrivals[i].time <= boundary:
            req = arrivals[i]
            deployment.run_until(req.time)
            service.submit(req.attr, req.lo, req.hi, arrival=req.time)
            i += 1
        deployment.run_until(boundary)
        service.process_batch()
    flushes = 0
    while service.backlog and flushes < _MAX_FLUSH_BATCHES:
        service.process_batch()
        flushes += 1
    stats = service.snapshot()
    stats["qps_offered"] = service.offered / config.duration
    stats["qps_served"] = service.served / config.duration
    deployment.service_stats = stats
    return stats
