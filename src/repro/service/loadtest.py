"""Deterministic offered-load generation for the E16 serving scenario.

A load test must be a pure function of the spec to ride the campaign
pipeline (persistent cache, jobs=1 ≡ jobs=4 bit-identity), so nothing
here touches wall clocks or the simulation's own RNG stream:

* :func:`build_arrivals` precomputes the whole request trace — Poisson
  arrivals at ``spec.service_qps`` over the measured phase, each picking
  an attribute and a value range from a small "hot set" (cacheable
  repeats) or a cold uniform draw — from a dedicated ``random.Random``
  seeded off the spec alone. Drawing from a separate stream keeps the
  simulated network's trajectory byte-identical whatever the offered
  load.
* :func:`drive_load` replays that trace against one resident
  :class:`~repro.service.deployment.Deployment` through a
  :class:`~repro.service.gateway.TenantService`: requests are submitted
  as the clock reaches their arrival times and queued misses are batched
  once per query interval — the same serving discipline the asyncio
  gateway applies, minus the event loop.

The resulting scorecard lands on ``deployment.service_stats`` and is
exported as ``TrialMetrics.service``.

A second, wall-clock driver lives alongside: :func:`drive_socket_load`
opens N *real* concurrent :class:`~repro.service.client.ScoopClient`
connections against a running :class:`~repro.service.server.ScoopServer`
and replays deterministic per-client programs
(:func:`build_client_program`) — the load path the sharded serving
stack is benchmarked and CI-gated on. Its per-tenant answer transcripts
are deterministic for a fixed program (each tenant is driven by one
sequential connection), which is what the ``--workers 1`` ≡
``--workers 4`` identity gates compare.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentSpec
from repro.service.api import aggregate_shard_stats

#: Salt for the load-trace RNG stream — any spec-derived seed must not
#: collide with the simulation seed itself.
_ARRIVAL_SALT = 0xE16

#: Hot ranges per attribute; ~60% of requests re-ask one of these, which
#: is what gives the answer cache something to hit.
_HOT_RANGES = 6
_HOT_PROB = 0.6

#: A drain guard: after the measured phase the driver flushes the
#: backlog with at most this many extra batch windows.
_MAX_FLUSH_BATCHES = 64


@dataclass(frozen=True)
class Request:
    """One offered request in the precomputed trace."""

    time: float
    attr: int
    lo: int
    hi: int


def build_arrivals(spec: ExperimentSpec) -> List[Request]:
    """Precompute the offered-load trace for ``spec``.

    Poisson arrivals at ``spec.service_qps`` across the measured phase
    (stabilization → stabilization + duration), drawn from a dedicated
    RNG seeded off the spec — the simulation's RNG stream is never
    touched, so the network trajectory is independent of offered load.
    """
    qps = spec.service_qps
    if qps <= 0:
        return []
    config = spec.scoop
    rng = random.Random(spec.seed * 1_000_003 + _ARRIVAL_SALT)
    # Hot set first (fixed draw order: trace is stable under qps sweeps
    # only in distribution, but fully deterministic per spec).
    hot: Dict[int, List[Tuple[int, int]]] = {}
    for attr in config.attribute_ids:
        domain = config.domain_of(attr)
        width = max(1, int(domain.size * rng.uniform(0.02, 0.10)))
        ranges = []
        for _ in range(_HOT_RANGES):
            lo = rng.randint(domain.lo, max(domain.lo, domain.hi - width))
            ranges.append((lo, min(domain.hi, lo + width)))
        hot[attr] = ranges
    n_attrs = spec.query_plan.n_attributes
    start = config.stabilization
    end = config.stabilization + config.duration
    out: List[Request] = []
    t = start
    while True:
        t += rng.expovariate(qps)
        if t >= end:
            break
        attr = rng.randrange(n_attrs) if n_attrs > 1 else 0
        if rng.random() < _HOT_PROB:
            lo, hi = hot[attr][rng.randrange(_HOT_RANGES)]
        else:
            domain = config.domain_of(attr)
            a = rng.randint(domain.lo, domain.hi)
            b = rng.randint(domain.lo, domain.hi)
            lo, hi = (a, b) if a <= b else (b, a)
        out.append(Request(time=t, attr=attr, lo=lo, hi=hi))
    return out


def drive_load(deployment) -> Dict[str, float]:
    """Replay the spec's offered-load trace against a live deployment.

    Walks the measured phase one query interval at a time: requests
    whose arrival times have been reached are submitted (cache hits
    answer instantly, overload sheds explicitly), then queued misses are
    batched through the basestation. After the phase, the backlog is
    flushed with bounded extra batches so every admitted request is
    answered before the trial drains.

    Attaches the scorecard to ``deployment.service_stats`` and returns it.
    """
    from repro.service.gateway import TenantService

    spec = deployment.spec
    config = deployment.config
    arrivals = build_arrivals(spec)
    service = TenantService("batch", deployment)
    end = config.stabilization + config.duration
    i = 0
    boundary = config.stabilization
    while boundary < end:
        boundary = min(boundary + config.query_interval, end)
        while i < len(arrivals) and arrivals[i].time <= boundary:
            req = arrivals[i]
            deployment.run_until(req.time)
            service.submit(req.attr, req.lo, req.hi, arrival=req.time)
            i += 1
        deployment.run_until(boundary)
        service.process_batch()
    flushes = 0
    while service.backlog and flushes < _MAX_FLUSH_BATCHES:
        service.process_batch()
        flushes += 1
    stats = service.snapshot()
    stats["qps_offered"] = service.offered / config.duration
    stats["qps_served"] = service.served / config.duration
    deployment.service_stats = stats
    # The per-shard breakdown: in-process batch trials are the one-shard
    # special case. worker_pid is pinned to 0 — a real pid would break
    # the campaign pipeline's bit-identity checks.
    deployment.service_shards = {
        "shard0": aggregate_shard_stats({service.name: stats}, worker_pid=0)
    }
    return stats


# ----------------------------------------------------------------------
# Real-socket concurrent-client driving (the sharded serving load path)
# ----------------------------------------------------------------------

#: Salt for per-client program RNG streams (distinct from the arrival
#: trace salt: the two must never collide on a seed).
_PROGRAM_SALT = 0xC11


def build_client_program(
    requests: int,
    domain: Tuple[int, int],
    seed: int,
    attrs: Sequence[int] = (0,),
) -> List[Tuple[int, int, int]]:
    """One client's deterministic request program: ``requests`` tuples
    of ``(attr, lo, hi)`` from a dedicated RNG, with the same hot-set /
    cold-draw mix as :func:`build_arrivals` so the answer cache gets
    realistic re-asks. A pure function of ``(requests, domain, seed)`` —
    the fixed client program the shard-determinism gates replay at every
    worker count."""
    dlo, dhi = domain
    rng = random.Random(seed * 1_000_003 + _PROGRAM_SALT)
    width = max(1, int((dhi - dlo + 1) * rng.uniform(0.02, 0.10)))
    hot = []
    for _ in range(_HOT_RANGES):
        lo = rng.randint(dlo, max(dlo, dhi - width))
        hot.append((lo, min(dhi, lo + width)))
    out: List[Tuple[int, int, int]] = []
    for _ in range(requests):
        attr = attrs[rng.randrange(len(attrs))] if len(attrs) > 1 else attrs[0]
        if rng.random() < _HOT_PROB:
            lo, hi = hot[rng.randrange(_HOT_RANGES)]
        else:
            a = rng.randint(dlo, dhi)
            b = rng.randint(dlo, dhi)
            lo, hi = (a, b) if a <= b else (b, a)
        out.append((attr, lo, hi))
    return out


def answers_digest(answers: Dict[str, List[Dict[str, object]]]) -> str:
    """Canonical digest of a per-tenant answer transcript — what the
    worker-count identity gates compare. The JSON-lines dict form is
    used deliberately: it excludes the ``shard`` field, which is the one
    legitimately placement-dependent part of an answer."""
    canonical = json.dumps(
        {t: answers[t] for t in sorted(answers)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def drive_socket_load(
    host: str,
    port: int,
    clients: int = 2,
    requests: int = 40,
    seed: int = 1,
    domain: Optional[Tuple[int, int]] = None,
    keep_answers: bool = True,
    retries: Optional[int] = None,
    chaos: Optional[Callable[[], Optional[str]]] = None,
) -> Dict[str, object]:
    """Drive a running server from ``clients`` real concurrent TCP
    connections (one thread + one :class:`ScoopClient` each).

    Client ``i`` is pinned to tenant ``tenants[i % len(tenants)]`` and
    replays :func:`build_client_program` sequentially (each request
    awaits its answer), so with ``clients <= tenants`` every tenant sees
    exactly one ordered request stream — the regime in which answers are
    bit-identical across worker counts. Sheds and malformed rejections
    are counted, never raised.

    ``chaos`` is the fault-injection hook: a callable (e.g.
    ``gateway.chaos_kill_worker``) fired exactly once, from a client
    thread, after roughly a third of the offered load has settled —
    mid-run, so in-flight and queued requests are on the wire when the
    worker dies. ``retries`` overrides the clients' retry budget against
    the resulting ``retry`` faults (chaos runs need enough to ride out a
    worker reboot); the total resends land in ``counts["retried"]``.

    Returns a JSON-ready report: outcome counts, wall-clock throughput,
    the per-tenant answer transcripts (``keep_answers``) and their
    :func:`answers_digest`, the server's end-of-run stats (per-shard
    scorecards + protocol counters), and a ``chaos`` record of whether
    (and which shard) the hook killed.
    """
    from repro.service.api import ServiceFault, ShedError
    from repro.service.client import ScoopClient

    if clients < 1:
        raise ValueError(f"need at least one client, got {clients}")
    with ScoopClient(host, port, name="loadtest-probe") as probe:
        tenants = probe.tenants
        workers = probe.workers
        if domain is None:
            # Probe the domain from one whole-domain query.
            first = probe.query(tenant=tenants[0])
            domain = (first.lo, first.hi)

    answers: Dict[str, List[Dict[str, object]]] = {t: [] for t in tenants}
    counts = {"ok": 0, "shed": 0, "malformed": 0, "failed": 0, "retried": 0}
    lock = threading.Lock()
    errors: List[str] = []
    # Chaos trigger: fire once, mid-run, after ~1/3 of the offered load
    # has settled (so there are in-flight requests to orphan).
    chaos_threshold = max(1, (clients * requests) // 3)
    chaos_fired = threading.Event()
    chaos_killed: List[Optional[str]] = [None]

    def maybe_chaos() -> None:
        if chaos is None or chaos_fired.is_set():
            return
        with lock:
            # Test-and-set under the counts lock: exactly one thread
            # crosses the threshold holding the trigger.
            if (
                chaos_fired.is_set()
                or counts["ok"] + counts["shed"] < chaos_threshold
            ):
                return
            chaos_fired.set()
        chaos_killed[0] = chaos()  # the kill itself runs outside the lock

    def one_client(index: int) -> None:
        tenant = tenants[index % len(tenants)]
        program = build_client_program(requests, domain, seed=seed + index)
        kwargs = {} if retries is None else {"retries": retries}
        client = ScoopClient(host, port, name=f"loadtest-{index}", **kwargs)
        try:
            with client:
                for attr, lo, hi in program:
                    try:
                        answer = client.query(
                            tenant=tenant, attr=attr, lo=lo, hi=hi
                        )
                    except ShedError:
                        with lock:
                            counts["shed"] += 1
                        maybe_chaos()
                        continue
                    with lock:
                        counts["ok"] += 1
                        answers[tenant].append(answer.to_jsonl_dict())
                    maybe_chaos()
        except ServiceFault as exc:
            with lock:
                counts["failed"] += 1
                errors.append(f"client {index}: {exc.code}: {exc}")
        finally:
            with lock:
                counts["retried"] += client.retries_used

    threads = [
        threading.Thread(target=one_client, args=(i,), name=f"loadtest-{i}")
        for i in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    with ScoopClient(host, port, name="loadtest-stats") as reporter:
        stats = reporter.stats()

    report: Dict[str, object] = {
        "clients": clients,
        "requests_per_client": requests,
        "tenants": tenants,
        "workers": workers,
        "seed": seed,
        "counts": dict(counts),
        "errors": errors,
        "elapsed_s": elapsed,
        "qps": (counts["ok"] + counts["shed"]) / elapsed if elapsed > 0 else 0.0,
        "answers_digest": answers_digest(answers),
        "stats": stats.to_wire(),
        "chaos": {"fired": chaos_fired.is_set(), "killed": chaos_killed[0]},
    }
    if keep_answers:
        report["answers"] = answers
    return report
