"""repro — a full reproduction of Scoop (Gil & Madden, ICDE 2007).

Scoop is an adaptive indexing scheme for stored data in sensor networks:
nodes report statistics to a basestation, which periodically computes a
storage index mapping attribute values to owner nodes, minimising expected
message cost; data is routed to its owner and queries contact only the
owners of the requested values.

Package layout:

* :mod:`repro.sim` — the simulation substrate (event kernel, lossy radio,
  routing tree, Trickle, flash, energy/message accounting);
* :mod:`repro.core` — Scoop itself (histograms, statistics, the Figure 2
  indexing algorithm, storage indices, node and basestation applications);
* :mod:`repro.workloads` — the paper's five data sources and query streams;
* :mod:`repro.baselines` — LOCAL, BASE (send-to-base) and HASH baselines;
* :mod:`repro.experiments` — the runner and named scenarios regenerating
  every figure and table of the paper's evaluation.

Quick start::

    from repro import ExperimentSpec, run_experiment

    spec = ExperimentSpec(policy="scoop", workload="gaussian")
    result = run_experiment(spec)
    print(result.breakdown, result.total_messages)
"""

from repro.core import (
    Basestation,
    Query,
    QueryResult,
    ScoopConfig,
    ScoopNode,
    StorageIndex,
    ValueDomain,
    build_storage_index,
)
from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
    run_hash_analytical,
    scale_spec,
)
from repro.workloads import Workload, make_workload
from repro.workloads.queries import QueryPlanConfig

__version__ = "1.0.0"

__all__ = [
    "Basestation",
    "ExperimentResult",
    "ExperimentSpec",
    "Query",
    "QueryPlanConfig",
    "QueryResult",
    "ScoopConfig",
    "ScoopNode",
    "StorageIndex",
    "ValueDomain",
    "Workload",
    "build_storage_index",
    "make_workload",
    "run_experiment",
    "run_hash_analytical",
    "scale_spec",
    "__version__",
]
