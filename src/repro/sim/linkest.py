"""Snooping-based link-quality estimation.

Per Section 5.2 of the paper: "A node establishes link-quality from its
neighbors by snooping the network and, per neighbor, counting the number of
packets it did not receive using a monotonically increasing number that all
nodes put in the header of all their outgoing packets."

Every frame a node hears (addressed to it or snooped) carries the sender's
sequence number; gaps in the sequence are missed packets. The estimator
keeps a windowed reception-rate estimate per neighbor, evicts neighbors not
heard from "for a long time" (Section 5.1), and caps the table at the
paper's 32 entries.

Hot-path note: :meth:`quality` and :meth:`etx` are called for every routing
re-evaluation (hundreds of thousands of times per trial), so both values
are recomputed once per *heard frame* in :meth:`hear` and cached on the
``__slots__`` neighbor record; the queries are plain attribute reads.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class _NeighborRecord:
    """Windowed reception estimate for one heard neighbor."""

    __slots__ = ("last_seqno", "received", "missed", "last_heard", "quality", "etx")

    def __init__(self, last_seqno: int, last_heard: float):
        self.last_seqno = last_seqno
        self.received = 1.0
        self.missed = 0.0
        self.last_heard = last_heard
        #: cached ``received / (received + missed)``, updated on hear().
        self.quality = 1.0
        #: cached ``1 / quality^2`` (see :meth:`LinkEstimator.etx`).
        self.etx = 1.0


class LinkEstimator:
    """Inbound link-quality table for one node.

    Parameters
    ----------
    max_neighbors:
        Table capacity (paper: 32); the worst-quality entry is evicted when
        a new neighbor is heard while full.
    silence_timeout:
        Seconds of not hearing a neighbor after which it is dropped.
    decay:
        Multiplicative decay applied to the (received, missed) window when a
        new packet arrives, giving an exponentially weighted estimate that
        adapts to changing conditions.
    """

    __slots__ = ("max_neighbors", "silence_timeout", "decay", "_table")

    def __init__(
        self,
        max_neighbors: int = 32,
        silence_timeout: float = 300.0,
        decay: float = 0.98,
    ):
        self.max_neighbors = max_neighbors
        self.silence_timeout = silence_timeout
        self.decay = decay
        self._table: Dict[int, _NeighborRecord] = {}

    def hear(self, neighbor: int, seqno: int, now: float) -> None:
        """Record a successfully heard frame from ``neighbor``."""
        record = self._table.get(neighbor)
        if record is None:
            self._maybe_evict(now)
            self._table[neighbor] = _NeighborRecord(seqno, now)
            return
        gap = seqno - record.last_seqno - 1
        decay = self.decay
        received = record.received * decay + 1.0
        missed = record.missed * decay
        if gap > 0:
            missed += gap
        record.received = received
        record.missed = missed
        if seqno > record.last_seqno:
            record.last_seqno = seqno
        record.last_heard = now
        quality = received / (received + missed)
        record.quality = quality
        record.etx = 1.0 / (quality * quality)

    def _maybe_evict(self, now: float) -> None:
        self.expire(now)
        if len(self._table) < self.max_neighbors:
            return
        worst = min(self._table, key=lambda nbr: self._table[nbr].quality)
        del self._table[worst]

    def reset(self) -> None:
        """Forget every neighbor (a cold reboot loses the RAM table)."""
        self._table.clear()

    def expire(self, now: float) -> None:
        """Drop neighbors not heard within the silence timeout."""
        timeout = self.silence_timeout
        stale = [
            nbr
            for nbr, rec in self._table.items()
            if now - rec.last_heard > timeout
        ]
        for nbr in stale:
            del self._table[nbr]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knows(self, neighbor: int) -> bool:
        return neighbor in self._table

    def quality(self, neighbor: int) -> float:
        """Estimated inbound delivery rate from ``neighbor`` (0 if unknown)."""
        record = self._table.get(neighbor)
        return record.quality if record is not None else 0.0

    def etx(self, neighbor: int) -> float:
        """Expected transmissions for one hop from/to ``neighbor``.

        Only the inbound rate is observable by snooping; it is used as a
        symmetric proxy (squared, since a successful acknowledged hop needs
        both the frame and the ACK to get through).
        """
        record = self._table.get(neighbor)
        return record.etx if record is not None else float("inf")

    def record(self, neighbor: int):
        """The raw neighbor record (hot-path peers read cached fields
        directly; ``None`` if unknown)."""
        return self._table.get(neighbor)

    def neighbors(self) -> List[int]:
        return list(self._table.keys())

    def best_neighbors(self, k: int) -> List[Tuple[int, float]]:
        """The ``k`` best-quality neighbors as (id, quality), sorted
        descending — the list shipped in summary messages (paper: 12)."""
        ranked = sorted(
            ((nbr, rec.quality) for nbr, rec in self._table.items()),
            key=lambda item: item[1],
            reverse=True,
        )
        return ranked[:k]

    def __len__(self) -> int:
        return len(self._table)
