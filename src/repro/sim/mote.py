"""Mote base class: the TinyOS-node-equivalent every application extends.

A :class:`Mote` owns the per-node protocol state the paper assumes of the
TinyOS stack: a monotonically increasing sequence number stamped into every
outgoing frame header, a snooping :class:`~repro.sim.linkest.LinkEstimator`,
and a :class:`~repro.sim.routing_tree.RoutingTree` maintained by periodic
beacons ("heartbeat messages", Section 6). Subclasses implement
:meth:`handle_frame` (and optionally :meth:`handle_snoop`) for application
traffic.

Frame dispatch keeps the bookkeeping honest: *every* heard frame (received
or snooped, except link-layer ACKs) feeds the link estimator and the
origin/parent header feeds the descendants list, exactly as Section 5.2
describes the basestation and nodes learning topology from Scoop's custom
packet header.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Optional

from repro.sim.kernel import Simulator, Timer
from repro.sim.linkest import LinkEstimator
from repro.sim.packets import BROADCAST, Frame, FrameKind
from repro.sim.radio import Radio
from repro.sim.routing_tree import RoutingTree


class Mote:
    """Base simulated node. Node 0 is conventionally the basestation.

    The base class is slotted (protocol state is touched on every heard
    frame); application subclasses may add arbitrary attributes — they get
    a ``__dict__`` as usual, while the hot base fields stay in slots.
    """

    __slots__ = (
        "node_id",
        "sim",
        "radio",
        "is_root",
        "_seqno",
        "linkest",
        "tree",
        "_beacon_timer",
        "booted",
        "_seen_frames",
        "_seen_frames_cap",
        "_boot_handle",
        "__dict__",
    )

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: Radio,
        is_root: bool = False,
        beacon_interval: float = 10.0,
        neighbor_silence_timeout: float = 300.0,
        max_descendants: int = 32,
        max_neighbors: int = 32,
    ):
        self.node_id = node_id
        self.sim = sim
        self.radio = radio
        self.is_root = is_root
        self._seqno = 0
        self.linkest = LinkEstimator(
            max_neighbors=max_neighbors, silence_timeout=neighbor_silence_timeout
        )
        self.tree = RoutingTree(
            node_id=node_id,
            sim=sim,
            linkest=self.linkest,
            is_root=is_root,
            beacon_interval=beacon_interval,
            max_descendants=max_descendants,
            max_neighbors=max_neighbors,
        )
        self._beacon_timer = Timer(
            sim, self._send_beacon, interval=beacon_interval, periodic=True, jitter=0.2
        )
        self.booted = False
        # Link-layer duplicate suppression (as in the TinyOS MAC): a lost
        # ACK makes the sender retransmit a frame the receiver already has;
        # without dedup each duplicate would re-propagate multiplicatively
        # at every hop. Keyed by frame identity, bounded LRU.
        self._seen_frames: "OrderedDict[int, None]" = OrderedDict()
        self._seen_frames_cap = 128
        self._boot_handle: Optional[object] = None
        radio.register(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def boot(self, delay: float = 0.0) -> None:
        """Start the node ``delay`` seconds from now."""
        self._boot_handle = self.sim.schedule(delay, self._boot_now)

    def _boot_now(self) -> None:
        self._boot_handle = None
        if self.booted:
            return
        self.booted = True
        self._beacon_timer.start(
            delay=self.sim.rng.uniform(0.1, self.tree.beacon_interval)
        )
        self.on_boot()

    def on_boot(self) -> None:
        """Subclass hook: called once when the node starts."""

    def fail(self) -> None:
        """Node death (failure injection): the CPU halts and the radio goes
        dark. The mote stops beaconing and ignores every frame; its flash
        chip keeps whatever it stored (flash is non-volatile)."""
        if self._boot_handle is not None:
            # Killed during the boot stagger: the pending boot must not
            # resurrect a dead node.
            self._boot_handle.cancel()
            self._boot_handle = None
        if not self.booted:
            return
        self.booted = False
        self._beacon_timer.stop()
        self.on_fail()

    def revive(self) -> None:
        """Cold reboot after a failure: volatile protocol state (routing
        tree, link estimates, dedup window) is gone, flash contents
        survive, and the node rejoins the network like a fresh boot."""
        if self.booted:
            return
        self.linkest.reset()
        self.tree.reset()
        self._seen_frames.clear()
        self.booted = True
        self._beacon_timer.start(
            delay=self.sim.rng.uniform(0.1, self.tree.beacon_interval)
        )
        self.on_revive()

    def on_fail(self) -> None:
        """Subclass hook: called when the node is killed."""

    def on_revive(self) -> None:
        """Subclass hook: called after a cold reboot."""

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def next_seqno(self) -> int:
        self._seqno += 1
        return self._seqno

    def make_frame(
        self,
        dst: int,
        kind: FrameKind,
        payload: Any,
        origin: Optional[int] = None,
        origin_parent: Optional[int] = None,
    ) -> Frame:
        return Frame(
            src=self.node_id,
            dst=dst,
            kind=kind,
            payload=payload,
            origin=self.node_id if origin is None else origin,
            origin_parent=(
                self.tree.parent if origin_parent is None else origin_parent
            ),
            seqno=self.next_seqno(),
        )

    def broadcast(self, kind: FrameKind, payload: Any, **kw: Any) -> None:
        self.radio.broadcast(self.make_frame(BROADCAST, kind, payload, **kw))

    def unicast(
        self,
        dst: int,
        kind: FrameKind,
        payload: Any,
        done: Optional[Callable[[bool], None]] = None,
        **kw: Any,
    ) -> None:
        self.radio.unicast(self.make_frame(dst, kind, payload, **kw), done=done)

    def forward(
        self, frame: Frame, dst: int, done: Optional[Callable[[bool], None]] = None
    ) -> None:
        """Forward a received frame one more hop, preserving origin headers.

        Frames whose TTL is exhausted are dropped (loop protection)."""
        if frame.ttl <= 0:
            if done is not None:
                done(False)
            return
        self.radio.unicast(
            frame.copy_for_forward(src=self.node_id, dst=dst, seqno=self.next_seqno()),
            done=done,
        )

    def _send_beacon(self) -> None:
        self.broadcast(FrameKind.BEACON, self.tree.beacon_payload())

    # ------------------------------------------------------------------
    # Receiving (RadioListener interface)
    # ------------------------------------------------------------------
    def _observe(self, frame: Frame) -> None:
        if frame.kind is FrameKind.ACK:
            return
        self.linkest.hear(frame.src, frame.seqno, self.sim.now)
        # note_origin_header only acts when the origin's parent is us; the
        # guard is hoisted here because it is false for nearly every frame
        # and this runs once per heard frame.
        if frame.origin_parent == self.node_id:
            self.tree.note_origin_header(frame.origin, frame.origin_parent)

    def _is_duplicate(self, frame: Frame) -> bool:
        if frame.frame_id in self._seen_frames:
            return True
        self._seen_frames[frame.frame_id] = None
        while len(self._seen_frames) > self._seen_frames_cap:
            self._seen_frames.popitem(last=False)
        return False

    def on_receive(self, frame: Frame) -> None:
        if not self.booted:
            return
        self._observe(frame)
        if frame.kind is FrameKind.BEACON:
            self.tree.on_beacon(frame.src, frame.payload)
            return
        if self._is_duplicate(frame):
            return
        if frame.dst == self.node_id and frame.origin != self.node_id:
            # Learn descendants from frames travelling *up* the tree: we are
            # routing on behalf of frame.origin ("by tracking all nodes on
            # whose behalf it routes packets up the routing tree").
            # Summaries and replies always travel up; DATA frames can travel
            # down (rule 5), so those only count when the link sender's last
            # beacon named us as its parent.
            if frame.kind in (FrameKind.SUMMARY, FrameKind.REPLY) or (
                frame.kind is FrameKind.DATA and self.tree.sender_is_child(frame.src)
            ):
                self.tree.note_uplink(frame.origin, via_child=frame.src)
        self.handle_frame(frame)

    def on_snoop(self, frame: Frame) -> None:
        if not self.booted:
            return
        self._observe(frame)
        if frame.kind is FrameKind.BEACON:
            self.tree.on_beacon(frame.src, frame.payload)
            return
        self.handle_snoop(frame)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def handle_frame(self, frame: Frame) -> None:
        """Application traffic addressed to (or broadcast past) this node."""

    def handle_snoop(self, frame: Frame) -> None:
        """Overheard application traffic (default: ignore)."""
