"""Network assembly: kernel + radio + accounting + motes, ready to run.

:class:`Network` wires together everything a scenario needs: the event
kernel, the lossy radio (with census and energy hooks attached so every
transmission is billed), and the application motes. Experiment runners
build one Network per trial, boot it, run the paper's 10-minute tree
stabilization period, then run the measured workload phase.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.energy import EnergyMeter
from repro.sim.kernel import Simulator
from repro.sim.metrics import DeliveryTracker, MessageCensus
from repro.sim.mote import Mote
from repro.sim.packets import Frame
from repro.sim.radio import Radio, RadioConfig
from repro.sim.topology import Topology


class Network:
    """A fully wired simulated sensor network."""

    def __init__(
        self,
        topology: Topology,
        seed: int = 0,
        radio_config: Optional[RadioConfig] = None,
    ):
        self.topology = topology
        self.sim = Simulator(seed=seed)
        self.census = MessageCensus()
        self.energy = EnergyMeter()
        self.tracker = DeliveryTracker()
        self.radio = Radio(
            self.sim,
            topology,
            config=radio_config,
            on_transmit=self._on_transmit,
            on_deliveries=self._on_deliveries,
        )
        self.motes: Dict[int, Mote] = {}

    # ------------------------------------------------------------------
    # Accounting hooks
    # ------------------------------------------------------------------
    def _on_transmit(self, node: int, frame: Frame) -> None:
        self.census.record_transmit(node, frame)
        self.energy.radio_tx(node, frame.size_bits())

    def _on_deliveries(
        self, sender: int, receivers: list, frame: Frame, bits: int
    ) -> None:
        # Batched per transmission: one call for the whole reception
        # fan-out (see Radio's on_deliveries hook).
        self.census.record_deliveries(receivers, frame.kind, bits)
        self.energy.radio_rx_batch(receivers, bits)

    # ------------------------------------------------------------------
    # Population and execution
    # ------------------------------------------------------------------
    def add_mote(self, mote: Mote) -> Mote:
        if mote.node_id in self.motes:
            raise ValueError(f"duplicate mote id {mote.node_id}")
        self.motes[mote.node_id] = mote
        return mote

    def boot_all(self, within: float = 5.0) -> None:
        """Boot every mote at a random offset in ``[0, within)`` seconds,
        de-synchronizing their timers as real deployments do."""
        for mote in self.motes.values():
            mote.boot(delay=self.sim.rng.uniform(0.0, within))

    def fail_node(self, node_id: int) -> None:
        """Kill a mote: radio dark, CPU halted, flash orphaned. The rest
        of the network reacts organically (silence timeouts, tree repair);
        nothing is reset on its behalf."""
        mote = self.motes[node_id]
        if mote.is_root:
            raise ValueError("cannot kill the basestation (node 0)")
        self.radio.fail_node(node_id)
        mote.fail()
        self.tracker.node_failed(node_id, self.sim.now)

    def revive_node(self, node_id: int) -> None:
        """Cold-reboot a previously killed mote (flash contents intact)."""
        self.radio.revive_node(node_id)
        self.motes[node_id].revive()
        self.tracker.node_revived(node_id, self.sim.now)

    def run(self, until: float) -> None:
        self.sim.run(until)

    def run_for(self, duration: float) -> None:
        self.sim.run(self.sim.now + duration)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def tree_converged(self) -> bool:
        """True when every booted node has joined the routing tree."""
        return all(m.tree.joined for m in self.motes.values() if m.booted)

    def tree_depths(self) -> Dict[int, float]:
        return {nid: m.tree.path_etx for nid, m in self.motes.items()}
