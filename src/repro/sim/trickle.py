"""Trickle: self-regulating gossip dissemination (Levis et al., NSDI'04).

Scoop uses Trickle to disseminate storage-index "chunks" to all nodes
(Section 5.3). This module implements:

* :class:`Trickle` — the classic algorithm: an interval that doubles from
  ``imin`` to ``imax``, a redundancy counter ``k``, transmission at a random
  point in the second half of the interval unless suppressed, and interval
  reset on hearing inconsistent (out-of-date) state;
* :class:`ChunkDisseminator` — the version-and-chunks state machine layered
  on Trickle: nodes advertise ``(version, chunk-bitmap)``; a node that hears
  a neighbor with an older version or missing chunks it holds broadcasts the
  missing chunks; a node that hears a newer version resets its Trickle so
  the update propagates quickly.

The disseminator is deliberately generic over the chunk payload (anything
with ``sid``, ``index`` and ``total`` attributes) so the core package can
define the actual :class:`~repro.core.messages.MappingChunk` wire format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generic, List, Optional, Protocol, Set, TypeVar

from repro.sim.kernel import EventHandle, Simulator


class Trickle:
    """The Trickle timer algorithm.

    Parameters
    ----------
    sim:
        Simulation kernel supplying time, scheduling and randomness.
    transmit:
        Called when the timer fires un-suppressed; should broadcast the
        node's current state (an advertisement).
    imin / imax:
        Minimum and maximum interval lengths in seconds.
    k:
        Redundancy constant: suppress transmission if ``k`` or more
        consistent advertisements were heard this interval.
    """

    __slots__ = (
        "sim",
        "transmit",
        "imin",
        "imax",
        "k",
        "interval",
        "_counter",
        "_fire_handle",
        "_end_handle",
        "_running",
        "transmissions",
        "suppressions",
    )

    def __init__(
        self,
        sim: Simulator,
        transmit: Callable[[], None],
        imin: float = 1.0,
        imax: float = 60.0,
        k: int = 2,
    ):
        if imin <= 0 or imax < imin:
            raise ValueError("need 0 < imin <= imax")
        self.sim = sim
        self.transmit = transmit
        self.imin = imin
        self.imax = imax
        self.k = k
        self.interval = imin
        self._counter = 0
        self._fire_handle: Optional[EventHandle] = None
        self._end_handle: Optional[EventHandle] = None
        self._running = False
        self.transmissions = 0
        self.suppressions = 0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.interval = self.imin
        self._begin_interval()

    def stop(self) -> None:
        self._running = False
        for handle in (self._fire_handle, self._end_handle):
            if handle is not None:
                handle.cancel()
        self._fire_handle = None
        self._end_handle = None

    def _begin_interval(self) -> None:
        if not self._running:
            return
        self._counter = 0
        fire_at = self.sim.rng.uniform(self.interval / 2, self.interval)
        self._fire_handle = self.sim.schedule(fire_at, self._fire)
        self._end_handle = self.sim.schedule(self.interval, self._interval_end)

    def _fire(self) -> None:
        if self._counter < self.k:
            self.transmissions += 1
            self.transmit()
        else:
            self.suppressions += 1

    def _interval_end(self) -> None:
        self.interval = min(self.interval * 2, self.imax)
        self._begin_interval()

    def heard_consistent(self) -> None:
        """A neighbor advertised the same state we hold."""
        self._counter += 1

    def heard_inconsistent(self) -> None:
        """Someone is out of date (or we are): reset to the fast interval."""
        if not self._running:
            return
        if self.interval > self.imin or self._fire_handle is None:
            for handle in (self._fire_handle, self._end_handle):
                if handle is not None:
                    handle.cancel()
            self.interval = self.imin
            self._begin_interval()


class Chunk(Protocol):
    """Anything disseminable: a piece ``index`` of ``total`` for version
    ``sid``."""

    sid: int
    index: int
    total: int


C = TypeVar("C", bound=Chunk)


@dataclass(slots=True)
class Advertisement:
    """Trickle metadata broadcast: which version and chunks a node holds."""

    sid: int
    have: frozenset  # chunk indices held
    total: int

    def wire_bytes(self) -> int:
        # sid (2) + total (1) + bitmap (total/8 rounded up, >=1)
        return 3 + max(1, (self.total + 7) // 8)


class ChunkDisseminator(Generic[C]):
    """Versioned chunk dissemination over Trickle for one node.

    The owning mote supplies ``send_advert`` and ``send_chunk`` callbacks
    (which put frames on the air) and forwards incoming adverts/chunks to
    :meth:`on_advert` / :meth:`on_chunk`. ``on_complete`` fires exactly once
    per version, when the final missing chunk arrives.
    """

    __slots__ = (
        "sim",
        "_send_advert",
        "_send_chunk",
        "_on_complete",
        "max_chunks_per_response",
        "sid",
        "total",
        "_chunks",
        "_completed",
        "_response_pending",
        "_response_handle",
        "trickle",
    )

    def __init__(
        self,
        sim: Simulator,
        send_advert: Callable[[Advertisement], None],
        send_chunk: Callable[[C], None],
        on_complete: Callable[[int, List[C]], None],
        imin: float = 2.0,
        imax: float = 120.0,
        k: int = 2,
        max_chunks_per_response: int = 6,
    ):
        self.sim = sim
        self._send_advert = send_advert
        self._send_chunk = send_chunk
        self._on_complete = on_complete
        self.max_chunks_per_response = max_chunks_per_response
        self.sid: int = -1
        self.total: int = 0
        self._chunks: Dict[int, C] = {}
        self._completed = False
        self._response_pending: Set[int] = set()
        self._response_handle: Optional[EventHandle] = None
        self.trickle = Trickle(sim, self._advertise, imin=imin, imax=imax, k=k)

    # ------------------------------------------------------------------
    # Local state
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.trickle.start()

    def stop(self) -> None:
        self.trickle.stop()
        if self._response_handle is not None:
            self._response_handle.cancel()
            self._response_handle = None
        self._response_pending.clear()

    def reset(self) -> None:
        """Back to the never-heard-anything state (a cold reboot loses the
        RAM chunk store); :meth:`start` begins re-collecting from adverts."""
        self.stop()
        self.sid = -1
        self.total = 0
        self._chunks = {}
        self._completed = False

    @property
    def complete(self) -> bool:
        return self.total > 0 and len(self._chunks) == self.total

    def held_chunks(self) -> List[C]:
        return [self._chunks[i] for i in sorted(self._chunks)]

    def seed(self, sid: int, chunks: List[C]) -> None:
        """Install a full new version locally (the basestation does this
        after computing a new storage index) and start gossiping it."""
        if sid <= self.sid and self.sid >= 0:
            raise ValueError(f"seed version {sid} is not newer than {self.sid}")
        self.sid = sid
        self.total = len(chunks)
        self._chunks = {chunk.index: chunk for chunk in chunks}
        self._completed = True  # seeding node doesn't re-fire on_complete
        self.trickle.heard_inconsistent()

    def _advertise(self) -> None:
        self._send_advert(
            Advertisement(sid=self.sid, have=frozenset(self._chunks), total=self.total)
        )

    # ------------------------------------------------------------------
    # Network input
    # ------------------------------------------------------------------
    def on_advert(self, advert: Advertisement) -> None:
        if advert.sid == self.sid:
            missing_at_peer = set(self._chunks) - set(advert.have)
            we_are_missing = set(advert.have) - set(self._chunks)
            if not missing_at_peer and not we_are_missing:
                self.trickle.heard_consistent()
                return
            if missing_at_peer:
                self._queue_response(missing_at_peer)
            self.trickle.heard_inconsistent()
        elif advert.sid < self.sid:
            # Peer is behind a whole version: send our chunks.
            self._queue_response(set(self._chunks))
            self.trickle.heard_inconsistent()
        else:
            # We are behind: speed up so our (stale) adverts solicit data.
            self.trickle.heard_inconsistent()

    def on_chunk(self, chunk: C) -> None:
        if chunk.sid < self.sid:
            self.trickle.heard_inconsistent()
            return
        if chunk.sid > self.sid:
            self.sid = chunk.sid
            self.total = chunk.total
            self._chunks = {}
            self._completed = False
            self.trickle.heard_inconsistent()
        if chunk.index in self._chunks:
            return
        self._chunks[chunk.index] = chunk
        if self.complete and not self._completed:
            self._completed = True
            self._on_complete(self.sid, self.held_chunks())

    # ------------------------------------------------------------------
    # Chunk responses (rate-limited, randomly delayed to avoid synchrony)
    # ------------------------------------------------------------------
    def _queue_response(self, chunk_indices: Set[int]) -> None:
        self._response_pending |= chunk_indices
        if self._response_handle is None:
            delay = self.sim.rng.uniform(0.05, 0.5)
            self._response_handle = self.sim.schedule(delay, self._flush_response)

    def _flush_response(self) -> None:
        self._response_handle = None
        to_send = sorted(self._response_pending)[: self.max_chunks_per_response]
        self._response_pending.clear()
        for index in to_send:
            chunk = self._chunks.get(index)
            if chunk is not None:
                self._send_chunk(chunk)
