"""Simulation substrate: a packet-level sensor-network simulator.

This subpackage is the TOSSIM-equivalent the reproduction runs on: a
deterministic discrete-event kernel, a lossy shared radio channel with CSMA
and collisions, topology generators matching the paper's simulated network,
the TinyOS-era protocol building blocks (tree routing, Trickle, snooping
link estimation), flash storage, and the message/energy accounting that
implements the paper's cost metric.
"""

from repro.sim.energy import EnergyMeter, NodeEnergy
from repro.sim.flash import Flash, RecentReadings, StoredReading
from repro.sim.kernel import EventHandle, SimulationError, Simulator, Timer
from repro.sim.linkest import LinkEstimator
from repro.sim.metrics import DeliveryTracker, MessageCensus
from repro.sim.mote import Mote
from repro.sim.network import Network
from repro.sim.packets import BROADCAST, COST_KINDS, Frame, FrameKind
from repro.sim.radio import Radio, RadioConfig, RadioStats
from repro.sim.routing_tree import BeaconPayload, RoutingTree
from repro.sim.topology import (
    Topology,
    from_loss_matrix,
    grid,
    indoor_testbed,
    line,
    perfect,
    random_geometric,
)
from repro.sim.trickle import Advertisement, ChunkDisseminator, Trickle

__all__ = [
    "Advertisement",
    "BROADCAST",
    "BeaconPayload",
    "COST_KINDS",
    "ChunkDisseminator",
    "DeliveryTracker",
    "EnergyMeter",
    "EventHandle",
    "Flash",
    "Frame",
    "FrameKind",
    "LinkEstimator",
    "MessageCensus",
    "Mote",
    "Network",
    "NodeEnergy",
    "Radio",
    "RadioConfig",
    "RadioStats",
    "RecentReadings",
    "RoutingTree",
    "SimulationError",
    "Simulator",
    "StoredReading",
    "Timer",
    "Topology",
    "Trickle",
    "from_loss_matrix",
    "grid",
    "indoor_testbed",
    "line",
    "perfect",
    "random_geometric",
]
