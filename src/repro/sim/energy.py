"""Energy model: radio vs flash costs and battery-lifetime estimates.

Constants follow Section 2.1 of the paper:

* writing one bit to a current-generation flash chip costs ~28 nJ;
* an 802.15.4-class radio consumes ~700 nJ per transmitted bit, i.e. radio
  is roughly two orders of magnitude more expensive than flash per bit;
* reads from flash are "substantially cheaper" than writes.

Reception is billed at the same per-bit rate as transmission — the paper
notes that BASE "requires the root to do a great deal of reception (which is
costly as the radio must be on at all times)", so received bits must carry a
cost for the root-skew experiment (E7) to make sense.

Lifetime estimates reproduce the paper's back-of-envelope comparison: "if a
node running LOCAL can last for one month using a small battery, an average
SCOOP node would last for about three months, although the battery on the
root in SCOOP would have to be replaced every two weeks."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

#: nanojoules per bit transmitted or received over the radio.
RADIO_NJ_PER_BIT = 700.0
#: nanojoules per bit written to flash.
FLASH_WRITE_NJ_PER_BIT = 28.0
#: nanojoules per bit read from flash ("reads are substantially cheaper").
FLASH_READ_NJ_PER_BIT = 3.0

NJ_PER_J = 1e9


@dataclass(slots=True)
class NodeEnergy:
    """Accumulated energy use of a single node, in nanojoules."""

    radio_tx_nj: float = 0.0
    radio_rx_nj: float = 0.0
    flash_write_nj: float = 0.0
    flash_read_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        return (
            self.radio_tx_nj
            + self.radio_rx_nj
            + self.flash_write_nj
            + self.flash_read_nj
        )

    @property
    def total_j(self) -> float:
        return self.total_nj / NJ_PER_J


class EnergyMeter:
    """Network-wide per-node energy ledger, fed by the radio and flash."""

    def __init__(self) -> None:
        self._nodes: Dict[int, NodeEnergy] = {}

    def _node(self, node: int) -> NodeEnergy:
        if node not in self._nodes:
            self._nodes[node] = NodeEnergy()
        return self._nodes[node]

    def radio_tx(self, node: int, bits: int) -> None:
        self._node(node).radio_tx_nj += bits * RADIO_NJ_PER_BIT

    def radio_rx(self, node: int, bits: int) -> None:
        self._node(node).radio_rx_nj += bits * RADIO_NJ_PER_BIT

    def radio_rx_batch(self, nodes: "Iterable[int]", bits: int) -> None:
        """Bill one transmission's whole reception fan-out at once."""
        nj = bits * RADIO_NJ_PER_BIT
        ledger = self._nodes
        for node in nodes:
            entry = ledger.get(node)
            if entry is None:
                entry = ledger[node] = NodeEnergy()
            entry.radio_rx_nj += nj

    def flash_write(self, node: int, bits: int) -> None:
        self._node(node).flash_write_nj += bits * FLASH_WRITE_NJ_PER_BIT

    def flash_read(self, node: int, bits: int) -> None:
        self._node(node).flash_read_nj += bits * FLASH_READ_NJ_PER_BIT

    def node_energy(self, node: int) -> NodeEnergy:
        return self._node(node)

    def total_j(self) -> float:
        return sum(e.total_j for e in self._nodes.values())

    def component_totals_j(self) -> Dict[str, float]:
        """Network-wide energy per component, in joules (the paper's radio
        vs flash cost split, Section 2.1)."""
        totals = {
            "radio_tx": 0.0,
            "radio_rx": 0.0,
            "flash_write": 0.0,
            "flash_read": 0.0,
        }
        for e in self._nodes.values():
            totals["radio_tx"] += e.radio_tx_nj
            totals["radio_rx"] += e.radio_rx_nj
            totals["flash_write"] += e.flash_write_nj
            totals["flash_read"] += e.flash_read_nj
        return {name: nj / NJ_PER_J for name, nj in totals.items()}

    def mean_node_j(self, exclude: tuple[int, ...] = ()) -> float:
        nodes = [n for n in self._nodes if n not in exclude]
        if not nodes:
            return 0.0
        return sum(self._nodes[n].total_j for n in nodes) / len(nodes)

    def lifetime_ratio(self, node: int, reference_j: float) -> float:
        """How many times longer than a reference consumer this node lasts
        on the same battery (reference consumes ``reference_j``)."""
        own = self._node(node).total_j
        if own <= 0:
            return float("inf")
        return reference_j / own
