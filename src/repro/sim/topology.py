"""Network topology generation and ground-truth connectivity.

The paper's simulated topology (Section 6) consists of 62 nodes + 1
basestation where, on average, each node can communicate with ~20% of the
network, loss rates among audible pairs vary from ~25% to ~90%, and links
are slightly asymmetric. The generators here reproduce that regime, plus
regular topologies (grid, line, clique) used by the tests.

A :class:`Topology` stores the *ground truth* directed loss matrix. Nodes in
the simulation never read it directly — they estimate link quality by
snooping, as in the paper — but analytical baselines (the HASH cost model)
and experiment assertions use the ground truth.

Node 0 is by convention the basestation's attachment point (the root of the
routing tree).
"""

from __future__ import annotations

import math
import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

#: Loss value meaning "out of radio range".
OUT_OF_RANGE = 1.0


@dataclass
class Topology:
    """Ground-truth radio connectivity for a simulated network.

    Attributes
    ----------
    n:
        Number of nodes (ids ``0..n-1``; node 0 is the basestation).
    loss:
        ``loss[i][j]`` is the probability that a frame transmitted by ``i``
        is *not* received by ``j`` (independent Bernoulli per frame),
        ignoring collisions. ``1.0`` means ``j`` never hears ``i``.
    positions:
        Optional 2-D coordinates, used by generators and for debugging.
    """

    n: int
    loss: List[List[float]]
    positions: Optional[List[Tuple[float, float]]] = None
    name: str = "custom"
    _etx_cache: Optional[Dict[Tuple[int, int], float]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.loss) != self.n or any(len(row) != self.n for row in self.loss):
            raise ValueError("loss matrix must be n x n")
        # Copy the rows defensively: the diagonal write below must never
        # corrupt a matrix the caller still owns.
        self.loss = [list(row) for row in self.loss]
        for i in range(self.n):
            self.loss[i][i] = OUT_OF_RANGE  # no self-links

    # ------------------------------------------------------------------
    # Connectivity queries
    # ------------------------------------------------------------------
    def audible(self, i: int, j: int) -> bool:
        """True if ``j`` can ever hear ``i``."""
        return self.loss[i][j] < OUT_OF_RANGE

    def neighbors(self, i: int) -> List[int]:
        """Nodes that can hear transmissions from ``i``."""
        return [j for j in range(self.n) if self.audible(i, j)]

    def in_neighbors(self, j: int) -> List[int]:
        """Nodes whose transmissions ``j`` can hear."""
        return [i for i in range(self.n) if self.audible(i, j)]

    def delivery(self, i: int, j: int) -> float:
        """Per-frame delivery probability from ``i`` to ``j``."""
        return 1.0 - self.loss[i][j]

    def mean_degree_fraction(self) -> float:
        """Average fraction of the network each node can transmit to."""
        total = sum(len(self.neighbors(i)) for i in range(self.n))
        return total / (self.n * (self.n - 1))

    # ------------------------------------------------------------------
    # Ground-truth ETX (used by analytical baselines and tests only)
    # ------------------------------------------------------------------
    def link_etx(self, i: int, j: int) -> float:
        """Expected transmissions for one acknowledged hop i -> j.

        Uses the standard ETX formula ``1 / (d_f * d_r)`` where ``d_f`` is
        the forward and ``d_r`` the reverse (ACK) delivery probability.
        """
        d_f = self.delivery(i, j)
        d_r = self.delivery(j, i)
        if d_f <= 0.0 or d_r <= 0.0:
            return math.inf
        return 1.0 / (d_f * d_r)

    def _etx_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.n))
        for i in range(self.n):
            for j in range(self.n):
                if i != j:
                    etx = self.link_etx(i, j)
                    if math.isfinite(etx):
                        graph.add_edge(i, j, weight=etx)
        return graph

    def path_etx(self, src: int, dst: int) -> float:
        """Minimum expected transmissions over any multihop path src -> dst."""
        if src == dst:
            return 0.0
        if self._etx_cache is None:
            graph = self._etx_graph()
            cache: Dict[Tuple[int, int], float] = {}
            pairs = nx.all_pairs_dijkstra_path_length(graph, weight="weight")
            for origin, lengths in pairs:
                for target, dist in lengths.items():
                    cache[(origin, target)] = dist
            object.__setattr__(self, "_etx_cache", cache)
        return self._etx_cache.get((src, dst), math.inf)

    def is_connected(self) -> bool:
        """True if every node can reach the basestation (node 0) and back."""
        return all(
            math.isfinite(self.path_etx(i, 0)) and math.isfinite(self.path_etx(0, i))
            for i in range(1, self.n)
        )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def perfect(n: int, name: str = "perfect") -> Topology:
    """Fully connected, lossless topology (for unit tests)."""
    loss = [[0.0 if i != j else OUT_OF_RANGE for j in range(n)] for i in range(n)]
    return Topology(n=n, loss=loss, name=name)


def line(n: int, link_loss: float = 0.0) -> Topology:
    """A 1-D chain 0 - 1 - 2 - ... - (n-1) with uniform link loss."""
    loss = [[OUT_OF_RANGE] * n for _ in range(n)]
    for i in range(n - 1):
        loss[i][i + 1] = link_loss
        loss[i + 1][i] = link_loss
    positions = [(float(i), 0.0) for i in range(n)]
    return Topology(n=n, loss=loss, positions=positions, name=f"line-{n}")


def grid(
    rows: int, cols: int, link_loss: float = 0.0, diagonal: bool = False
) -> Topology:
    """A 2-D lattice with 4-connectivity (8 if ``diagonal``)."""
    n = rows * cols
    loss = [[OUT_OF_RANGE] * n for _ in range(n)]
    positions = []

    def nid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            positions.append((float(c), float(r)))
            steps = [(0, 1), (1, 0)]
            if diagonal:
                steps += [(1, 1), (1, -1)]
            for dr, dc in steps:
                nr, nc = r + dr, c + dc
                if 0 <= nr < rows and 0 <= nc < cols:
                    a, b = nid(r, c), nid(nr, nc)
                    loss[a][b] = link_loss
                    loss[b][a] = link_loss
    return Topology(n=n, loss=loss, positions=positions, name=f"grid-{rows}x{cols}")


def _distance_loss(
    dist: float,
    radio_range: float,
    rng: random.Random,
    loss_range: Tuple[float, float],
    asymmetry: float,
) -> Tuple[float, float]:
    """Map a distance to a (forward, reverse) loss pair.

    Real low-power radios have a *good region* close to the transmitter
    (low, stable loss) followed by a *gray region* where loss climbs
    steeply (Woo et al., SenSys'03). Routing trees are built on good-region
    links, which is what lets testbeds with "25 to about 90 percent" loss
    across audible pairs still deliver multihop traffic in ~1-2
    transmissions per hop. Directions differ by up to ``asymmetry``
    (paper: "connections are slightly asymmetric").
    """
    if dist >= radio_range:
        return OUT_OF_RANGE, OUT_OF_RANGE
    lo, hi = loss_range
    frac = dist / radio_range
    good_region = 0.45
    if frac < good_region:
        # Good region: low loss, gently rising.
        base = lo * (0.3 + 0.7 * frac / good_region)
    else:
        # Gray region: loss climbs steeply toward the range edge.
        t = (frac - good_region) / (1.0 - good_region)
        base = lo + (hi - lo) * (t ** 1.2)
    noise = rng.uniform(-0.06, 0.06)
    fwd = min(0.98, max(0.02, base + noise))
    rev = min(0.98, max(0.02, fwd + rng.uniform(-asymmetry, asymmetry)))
    return fwd, rev


def random_geometric(
    n: int,
    seed: int = 0,
    target_degree_fraction: float = 0.20,
    loss_range: Tuple[float, float] = (0.25, 0.90),
    asymmetry: float = 0.10,
    area: float = 100.0,
    max_attempts: int = 40,
) -> Topology:
    """Random geometric topology tuned to the paper's simulated network.

    Nodes are placed uniformly at random in a square; the radio range is
    searched so that each node can, on average, communicate with
    ``target_degree_fraction`` of the network (paper: ~20%). Audible links
    get loss rates in ``loss_range`` (paper: ~25%..~90%), slightly
    asymmetric. The generator retries until the topology is connected.
    """
    rng = random.Random(seed)
    for attempt in range(max_attempts):
        positions = [(rng.uniform(0, area), rng.uniform(0, area)) for _ in range(n)]
        # Put the basestation near a corner, as in a building deployment
        # where the root sits at one end of the floor.
        positions[0] = (area * 0.08, area * 0.08)
        dists = [
            [math.dist(positions[i], positions[j]) for j in range(n)] for i in range(n)
        ]
        # Binary-search the radio range for the target mean degree.
        lo_r, hi_r = 1e-3, area * math.sqrt(2)
        radio_range = area / 3
        for _ in range(30):
            radio_range = (lo_r + hi_r) / 2
            degree = sum(
                1
                for i in range(n)
                for j in range(n)
                if i != j and dists[i][j] < radio_range
            ) / (n * (n - 1))
            if degree < target_degree_fraction:
                lo_r = radio_range
            else:
                hi_r = radio_range
        loss = [[OUT_OF_RANGE] * n for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                fwd, rev = _distance_loss(
                    dists[i][j], radio_range, rng, loss_range, asymmetry
                )
                loss[i][j] = fwd
                loss[j][i] = rev
        topo = Topology(
            n=n,
            loss=loss,
            positions=positions,
            name=f"geo-{n}-seed{seed}" + (f"-try{attempt}" if attempt else ""),
        )
        if topo.is_connected():
            return topo
    raise RuntimeError(
        f"could not generate a connected topology for n={n}, seed={seed}"
    )


def indoor_testbed(
    n: int = 63,
    seed: int = 7,
    loss_range: Tuple[float, float] = (0.25, 0.90),
    asymmetry: float = 0.10,
) -> Topology:
    """A testbed-like topology: nodes clustered in 'rooms' along a floor.

    Approximates the paper's 62-node (plus basestation) indoor deployment
    "spread out across one floor of a large office building": clusters of
    3-5 nodes (offices) along a long rectangle, denser connectivity within
    a cluster, lossier links across clusters.
    """
    rng = random.Random(seed)
    width, height = 200.0, 40.0
    n_rooms = max(2, n // 4)
    room_centers = [
        (width * (k + 0.5) / n_rooms, rng.uniform(height * 0.2, height * 0.8))
        for k in range(n_rooms)
    ]
    positions: List[Tuple[float, float]] = [(2.0, height / 2)]  # basestation
    k = 0
    while len(positions) < n:
        cx, cy = room_centers[k % n_rooms]
        positions.append((cx + rng.uniform(-6, 6), cy + rng.uniform(-6, 6)))
        k += 1
    radio_range = width / 6.5
    loss = [[OUT_OF_RANGE] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            dist = math.dist(positions[i], positions[j])
            fwd, rev = _distance_loss(dist, radio_range, rng, loss_range, asymmetry)
            loss[i][j] = fwd
            loss[j][i] = rev
    topo = Topology(n=n, loss=loss, positions=positions, name=f"testbed-{n}-seed{seed}")
    if not topo.is_connected():
        # Fall back to a connected random-geometric instance with the same
        # statistical profile rather than failing a benchmark run — loudly,
        # and under a name that says what actually ran, so a trial labelled
        # "testbed" can never silently export metrics for a geo-* layout.
        warnings.warn(
            f"indoor_testbed(n={n}, seed={seed}) generated a disconnected "
            "testbed; falling back to a random-geometric layout",
            RuntimeWarning,
            stacklevel=2,
        )
        fallback = random_geometric(
            n, seed=seed, loss_range=loss_range, asymmetry=asymmetry
        )
        return Topology(
            n=fallback.n,
            loss=fallback.loss,
            positions=fallback.positions,
            name=f"testbed-fallback-{fallback.name}",
        )
    return topo


def near_square_grid(n: int, link_loss: float = 0.0) -> Topology:
    """The most square ``rows × cols`` lattice with exactly ``n`` nodes.

    Rows/cols are the divisor pair of ``n`` closest to a square (63 →
    7×9); a prime ``n`` degenerates to the 1×n line, which is what a
    prime-sized lattice is.
    """
    rows = 1
    for d in range(1, int(math.isqrt(n)) + 1):
        if n % d == 0:
            rows = d
    return grid(rows, n // rows, link_loss=link_loss)


def degrade(topo: Topology, extra_loss: float) -> Topology:
    """``topo`` with every audible link suffering ``extra_loss`` more
    independent per-frame loss: ``loss' = 1 - (1-loss)(1-extra_loss)``.

    Out-of-range pairs stay out of range and every audible pair stays
    audible (for ``extra_loss < 1``), so a connected topology remains
    connected — its links just cost more transmissions. This is the
    loss-sweep knob: one scalar degrades a whole generated topology
    without re-rolling its geometry.
    """
    if not 0.0 <= extra_loss < 1.0:
        raise ValueError(f"extra_loss must be in [0, 1), got {extra_loss}")
    if extra_loss == 0.0:
        return topo
    loss = [
        [
            cell if cell >= OUT_OF_RANGE else 1.0 - (1.0 - cell) * (1.0 - extra_loss)
            for cell in row
        ]
        for row in topo.loss
    ]
    return Topology(
        n=topo.n,
        loss=loss,
        positions=topo.positions,
        name=f"{topo.name}+loss{extra_loss:g}",
    )


def from_loss_matrix(loss: Sequence[Sequence[float]], name: str = "custom") -> Topology:
    """Build a topology from an explicit directed loss matrix."""
    n = len(loss)
    return Topology(n=n, loss=[list(row) for row in loss], name=name)
