"""Link-layer frame model with Scoop's custom packet header.

The paper (Section 5.2) describes a custom header carried on *every*
outgoing packet:

* the packet's **origin** and the **origin's parent** in the routing tree —
  this is how the basestation learns parent/child relationships, and how
  intermediate nodes populate their descendants lists;
* a **monotonically increasing sequence number** per node — neighbors snoop
  these to count missed packets and estimate link quality.

Frame sizes are tracked in bits so the energy model (Section 2.1 of the
paper: ~700 nJ/bit radio vs ~28 nJ/bit flash) and airtime computation have a
physical basis. Sizes mimic TinyOS/Mica2: an 11-byte header plus up to a
29-byte payload, consistent with the default TOS_Msg.

:class:`Frame` is a ``__slots__`` record, not a dataclass: frames are the
single most-allocated object in a trial, and every transmission, delivery
and energy charge reads the frame's wire size — so the size is computed
once on first use and cached (payloads are immutable by convention once a
frame is on the air).
"""

from __future__ import annotations

import enum
from typing import Any, Optional

#: Link-layer broadcast address.
BROADCAST = -1

#: Bytes of link + Scoop header on every frame (dest, src, origin,
#: origin_parent, seqno, kind, sid/ack bookkeeping).
HEADER_BYTES = 11

#: Maximum payload bytes per frame (TinyOS default TOS_Msg payload).
MAX_PAYLOAD_BYTES = 29

#: Size of a link-layer acknowledgement frame, in bytes.
ACK_BYTES = 5


class FrameKind(enum.Enum):
    """Message taxonomy used throughout the system.

    ``DATA``/``SUMMARY``/``MAPPING``/``QUERY``/``REPLY`` are the four
    categories the paper's Figure 3 breaks costs into (query and reply are
    graphed together). ``BEACON`` frames maintain the routing tree and
    ``ACK`` frames are link-layer acknowledgements; both exist in every
    storage scheme, and the paper's message counts do not include them, so
    the census tracks them separately.
    """

    DATA = "data"
    SUMMARY = "summary"
    MAPPING = "mapping"
    QUERY = "query"
    REPLY = "reply"
    BEACON = "beacon"
    ACK = "ack"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    # Enum members are singletons compared by identity, so identity hashing
    # is correct — and C-speed. The default Enum.__hash__ is a Python-level
    # call that showed up as ~300k calls per trial in census dict updates.
    __hash__ = object.__hash__


#: Frame kinds included in the paper's cost metric.
COST_KINDS = (
    FrameKind.DATA,
    FrameKind.SUMMARY,
    FrameKind.MAPPING,
    FrameKind.QUERY,
    FrameKind.REPLY,
)

_next_frame_id = 0


class Frame:
    """A single link-layer frame.

    Attributes
    ----------
    src:
        Link-layer sender of this hop (not the original producer).
    dst:
        Link-layer destination of this hop, or :data:`BROADCAST`.
    kind:
        The :class:`FrameKind` taxonomy bucket.
    payload:
        The application message object (must expose ``wire_bytes()`` or be
        ``None``).
    origin:
        Scoop header: the node that originally produced this packet.
        Defaults to ``src``.
    origin_parent:
        Scoop header: the origin's routing-tree parent (or ``None``).
    seqno:
        Scoop header: per-sender monotonically increasing sequence number,
        snooped by neighbors for link estimation.
    ttl:
        Hop budget, decremented on every forward; transient routing-tree
        loops (A and B briefly choosing each other as parent) would bounce
        a frame forever without it.
    """

    __slots__ = (
        "src",
        "dst",
        "kind",
        "payload",
        "origin",
        "origin_parent",
        "seqno",
        "ttl",
        "frame_id",
        "_size_bytes",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        kind: FrameKind,
        payload: Any = None,
        origin: int = -2,
        origin_parent: Optional[int] = None,
        seqno: int = 0,
        ttl: int = 32,
        frame_id: Optional[int] = None,
    ):
        global _next_frame_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.origin = src if origin == -2 else origin
        self.origin_parent = origin_parent
        self.seqno = seqno
        self.ttl = ttl
        if frame_id is None:
            frame_id = _next_frame_id
            _next_frame_id += 1
        self.frame_id = frame_id
        #: cached wire size; computed on first size query (frames are
        #: treated as immutable once built).
        self._size_bytes: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"Frame(src={self.src}, dst={self.dst}, kind={self.kind}, "
            f"origin={self.origin}, seqno={self.seqno}, id={self.frame_id})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.kind == other.kind
            and self.payload == other.payload
            and self.origin == other.origin
            and self.origin_parent == other.origin_parent
            and self.seqno == other.seqno
            and self.ttl == other.ttl
            and self.frame_id == other.frame_id
        )

    def payload_bytes(self) -> int:
        if self.payload is None:
            return 0
        wire = getattr(self.payload, "wire_bytes", None)
        if wire is None:
            raise TypeError(
                f"payload {type(self.payload).__name__} does not define wire_bytes()"
            )
        return int(wire())

    def size_bytes(self) -> int:
        """Total over-the-air frame size in bytes (computed once, cached)."""
        size = self._size_bytes
        if size is None:
            if self.kind is FrameKind.ACK:
                size = ACK_BYTES
            else:
                size = HEADER_BYTES + min(self.payload_bytes(), MAX_PAYLOAD_BYTES)
            self._size_bytes = size
        return size

    def size_bits(self) -> int:
        return self.size_bytes() * 8

    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    def copy_for_forward(self, src: int, dst: int, seqno: int) -> "Frame":
        """Clone this frame for the next hop, preserving origin headers.

        The payload object is shared (it is treated as immutable by
        convention); link-layer fields are rewritten for the new hop.
        """
        return Frame(
            src=src,
            dst=dst,
            kind=self.kind,
            payload=self.payload,
            origin=self.origin,
            origin_parent=self.origin_parent,
            seqno=seqno,
            ttl=self.ttl - 1,
        )
