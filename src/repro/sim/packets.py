"""Link-layer frame model with Scoop's custom packet header.

The paper (Section 5.2) describes a custom header carried on *every*
outgoing packet:

* the packet's **origin** and the **origin's parent** in the routing tree —
  this is how the basestation learns parent/child relationships, and how
  intermediate nodes populate their descendants lists;
* a **monotonically increasing sequence number** per node — neighbors snoop
  these to count missed packets and estimate link quality.

Frame sizes are tracked in bits so the energy model (Section 2.1 of the
paper: ~700 nJ/bit radio vs ~28 nJ/bit flash) and airtime computation have a
physical basis. Sizes mimic TinyOS/Mica2: an 11-byte header plus up to a
29-byte payload, consistent with the default TOS_Msg.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Link-layer broadcast address.
BROADCAST = -1

#: Bytes of link + Scoop header on every frame (dest, src, origin,
#: origin_parent, seqno, kind, sid/ack bookkeeping).
HEADER_BYTES = 11

#: Maximum payload bytes per frame (TinyOS default TOS_Msg payload).
MAX_PAYLOAD_BYTES = 29

#: Size of a link-layer acknowledgement frame, in bytes.
ACK_BYTES = 5


class FrameKind(enum.Enum):
    """Message taxonomy used throughout the system.

    ``DATA``/``SUMMARY``/``MAPPING``/``QUERY``/``REPLY`` are the four
    categories the paper's Figure 3 breaks costs into (query and reply are
    graphed together). ``BEACON`` frames maintain the routing tree and
    ``ACK`` frames are link-layer acknowledgements; both exist in every
    storage scheme, and the paper's message counts do not include them, so
    the census tracks them separately.
    """

    DATA = "data"
    SUMMARY = "summary"
    MAPPING = "mapping"
    QUERY = "query"
    REPLY = "reply"
    BEACON = "beacon"
    ACK = "ack"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Frame kinds included in the paper's cost metric.
COST_KINDS = (
    FrameKind.DATA,
    FrameKind.SUMMARY,
    FrameKind.MAPPING,
    FrameKind.QUERY,
    FrameKind.REPLY,
)

_frame_ids = itertools.count()


@dataclass
class Frame:
    """A single link-layer frame.

    Attributes
    ----------
    src:
        Link-layer sender of this hop (not the original producer).
    dst:
        Link-layer destination of this hop, or :data:`BROADCAST`.
    kind:
        The :class:`FrameKind` taxonomy bucket.
    payload:
        The application message object (must expose ``wire_bytes()`` or be
        ``None``).
    origin:
        Scoop header: the node that originally produced this packet.
    origin_parent:
        Scoop header: the origin's routing-tree parent (or ``None``).
    seqno:
        Scoop header: per-sender monotonically increasing sequence number,
        snooped by neighbors for link estimation.
    """

    src: int
    dst: int
    kind: FrameKind
    payload: Any = None
    origin: int = -2
    origin_parent: Optional[int] = None
    seqno: int = 0
    #: hop budget, decremented on every forward; transient routing-tree
    #: loops (A and B briefly choosing each other as parent) would bounce a
    #: frame forever without it.
    ttl: int = 32
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.origin == -2:
            self.origin = self.src

    def payload_bytes(self) -> int:
        if self.payload is None:
            return 0
        wire = getattr(self.payload, "wire_bytes", None)
        if wire is None:
            raise TypeError(
                f"payload {type(self.payload).__name__} does not define wire_bytes()"
            )
        return int(wire())

    def size_bytes(self) -> int:
        """Total over-the-air frame size in bytes."""
        if self.kind is FrameKind.ACK:
            return ACK_BYTES
        return HEADER_BYTES + min(self.payload_bytes(), MAX_PAYLOAD_BYTES)

    def size_bits(self) -> int:
        return self.size_bytes() * 8

    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    def copy_for_forward(self, src: int, dst: int, seqno: int) -> "Frame":
        """Clone this frame for the next hop, preserving origin headers.

        The payload object is shared (it is treated as immutable by
        convention); link-layer fields are rewritten for the new hop.
        """
        return Frame(
            src=src,
            dst=dst,
            kind=self.kind,
            payload=self.payload,
            origin=self.origin,
            origin_parent=self.origin_parent,
            seqno=seqno,
            ttl=self.ttl - 1,
        )
