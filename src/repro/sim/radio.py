"""Packet-level lossy radio medium with CSMA, collisions and link ACKs.

Models the Mica2-style shared channel the paper runs on (Section 2.1-2.2):

* a single shared channel at ~38.6 kbps; per-frame airtime is computed from
  the frame size, so congestion is emergent rather than assumed;
* CSMA-CA style carrier sensing: a node defers transmission with random
  backoff while it can hear an ongoing transmission;
* collisions at the *receiver*: two transmissions overlapping in time, both
  audible at a receiver, corrupt each other there (hidden terminals collide
  even though CSMA spaced out mutually-audible senders) — this is what
  produces the paper's observation that ~40% of summary messages are lost
  "mostly due to network congestion near the basestation";
* independent per-link Bernoulli loss from the ground-truth
  :class:`~repro.sim.topology.Topology` (paper: 25-90% loss on audible
  pairs, asymmetric);
* unicast frames use link-layer ACKs with bounded retransmissions, so lossy
  links translate into *more transmitted messages* — the cost the storage
  index's ``xmits`` term is designed to avoid (property P4);
* half-duplex: a node cannot receive while transmitting;
* snooping: every successfully received frame not addressed to a node is
  still handed to it (`on_snoop`), which feeds link estimation.

All message-count and energy accounting flows through this module so no
protocol layer can forget to pay for a transmission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Set

from repro.sim.kernel import Simulator
from repro.sim.packets import BROADCAST, Frame, FrameKind
from repro.sim.topology import Topology


class RadioListener(Protocol):
    """Interface a mote exposes to the radio."""

    node_id: int

    def on_receive(self, frame: Frame) -> None:
        """Frame addressed to this node (or broadcast) arrived intact."""

    def on_snoop(self, frame: Frame) -> None:
        """Overheard a frame addressed to someone else."""


@dataclass
class RadioConfig:
    """Physical/MAC layer parameters (defaults approximate a Mica2)."""

    bitrate_bps: float = 38_600.0
    #: CSMA random backoff window (seconds). ``backoff_min`` must exceed the
    #: ACK turnaround + ACK airtime so acknowledgements are protected inside
    #: the inter-frame gap, as in real CSMA-CA MACs.
    backoff_min: float = 0.003
    backoff_max: float = 0.020
    #: Give up deferring and transmit anyway after this many busy sensings.
    max_csma_attempts: int = 16
    #: Link-layer retransmissions for unicast frames (total tries = 1 + this).
    #: Loss on audible pairs runs 25-90% (paper Section 6), and a hop only
    #: succeeds when frame AND ack get through, so persistence is needed:
    #: at 0.5 delivery each way, 6 tries give ~82% per-hop success.
    max_retries: int = 5
    #: How long a sender waits for an ACK before retrying (seconds).
    ack_timeout: float = 0.060
    #: Receive-to-ACK turnaround (seconds); kept below backoff_min.
    ack_turnaround: float = 0.0005


@dataclass
class RadioStats:
    """Aggregate channel diagnostics (not part of the paper's cost metric)."""

    frames_sent: int = 0
    frames_delivered: int = 0
    collisions: int = 0
    bernoulli_losses: int = 0
    csma_deferrals: int = 0
    unicast_failures: int = 0
    acks_sent: int = 0


@dataclass
class _Transmission:
    src: int
    frame: Frame
    start: float
    end: float


@dataclass
class _PendingUnicast:
    frame: Frame
    tries_left: int
    done: Optional[Callable[[bool], None]]
    ack_handle: Optional[object] = None


class Radio:
    """The shared wireless medium connecting all motes in a simulation."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[RadioConfig] = None,
        on_transmit: Optional[Callable[[int, Frame], None]] = None,
        on_delivery: Optional[Callable[[int, int, Frame], None]] = None,
    ):
        self.sim = sim
        self.topology = topology
        self.config = config or RadioConfig()
        self.stats = RadioStats()
        self._listeners: Dict[int, RadioListener] = {}
        #: recent/ongoing transmissions, pruned opportunistically
        self._air: List[_Transmission] = []
        #: per-node FIFO of frames waiting for the channel
        self._queues: Dict[int, List[dict]] = {}
        self._busy_sending: Dict[int, bool] = {}
        self._pending_acks: Dict[int, _PendingUnicast] = {}
        #: nodes whose radio is powered off (failure injection): they
        #: neither transmit, receive, ACK, nor run send-completion
        #: callbacks until revived.
        self._failed: Set[int] = set()
        #: census/energy hooks: (sender, frame) per attempt; (src, dst, frame)
        #: per successful delivery
        self._on_transmit = on_transmit
        self._on_delivery = on_delivery

    # ------------------------------------------------------------------
    # Registration and public send API
    # ------------------------------------------------------------------
    def register(self, listener: RadioListener) -> None:
        node = listener.node_id
        if node in self._listeners:
            raise ValueError(f"node {node} already registered")
        if not 0 <= node < self.topology.n:
            raise ValueError(f"node {node} outside topology of size {self.topology.n}")
        self._listeners[node] = listener
        self._queues[node] = []
        self._busy_sending[node] = False

    # ------------------------------------------------------------------
    # Failure injection (node power state)
    # ------------------------------------------------------------------
    def is_failed(self, node: int) -> bool:
        return node in self._failed

    def fail_node(self, node: int) -> None:
        """Power the node's radio off: its send queue is lost, pending
        attempts go silent, and it stops hearing the channel."""
        if node not in self._queues:
            raise ValueError(f"node {node} is not registered with the radio")
        self._failed.add(node)
        self._queues[node].clear()
        self._busy_sending[node] = False

    def revive_node(self, node: int) -> None:
        """Power the node's radio back on (with an empty send queue)."""
        self._failed.discard(node)

    def broadcast(self, frame: Frame) -> None:
        """Queue an unacknowledged broadcast frame."""
        if frame.dst != BROADCAST:
            raise ValueError("broadcast() requires frame.dst == BROADCAST")
        self._enqueue(frame.src, {"frame": frame, "done": None, "tries": 1})

    def unicast(
        self, frame: Frame, done: Optional[Callable[[bool], None]] = None
    ) -> None:
        """Queue an acknowledged unicast frame.

        ``done(success)`` fires after the final attempt; ``success`` is True
        iff a link-layer ACK came back.
        """
        if frame.dst == BROADCAST:
            raise ValueError("unicast() requires a concrete destination")
        self._enqueue(
            frame.src,
            {"frame": frame, "done": done, "tries": 1 + self.config.max_retries},
        )

    # ------------------------------------------------------------------
    # Channel access (CSMA)
    # ------------------------------------------------------------------
    def _enqueue(self, node: int, entry: dict) -> None:
        if node not in self._queues:
            raise ValueError(f"node {node} is not registered with the radio")
        if node in self._failed:
            return  # dead radio: the frame silently never leaves the node
        entry.setdefault("csma_attempts", 0)
        entry.setdefault("retry_no", 0)
        self._queues[node].append(entry)
        self._pump(node)

    def _pump(self, node: int) -> None:
        if self._busy_sending[node] or not self._queues[node]:
            return
        self._busy_sending[node] = True
        entry = self._queues[node][0]
        # Initial random backoff slot (CSMA-CA): transmissions triggered by
        # the same event (e.g. a broadcast everyone reacts to, or two nodes'
        # timers aligning) must not start at the same instant — carrier
        # sense cannot see a transmission that hasn't started yet.
        self.sim.schedule(
            self.sim.rng.uniform(0.0002, self.config.backoff_min * 2),
            self._try_send,
            node,
            entry,
        )

    def _channel_busy_until(self, node: int) -> float:
        """Latest end-time of any ongoing transmission audible at ``node``."""
        now = self.sim.now
        busy = now
        for tx in self._air:
            if tx.end > now and tx.src != node and self.topology.audible(tx.src, node):
                busy = max(busy, tx.end)
        return busy

    def _try_send(self, node: int, entry: dict) -> None:
        if node in self._failed:
            return  # the node died while this attempt was scheduled
        busy_until = self._channel_busy_until(node)
        cfg = self.config
        if busy_until > self.sim.now and entry["csma_attempts"] < cfg.max_csma_attempts:
            entry["csma_attempts"] += 1
            self.stats.csma_deferrals += 1
            backoff = self.sim.rng.uniform(cfg.backoff_min, cfg.backoff_max)
            self.sim.schedule(
                (busy_until - self.sim.now) + backoff, self._try_send, node, entry
            )
            return
        self._start_transmission(node, entry)

    # ------------------------------------------------------------------
    # Transmission and reception
    # ------------------------------------------------------------------
    def _start_transmission(self, node: int, entry: dict) -> None:
        frame: Frame = entry["frame"]
        airtime = frame.size_bits() / self.config.bitrate_bps
        tx = _Transmission(
            src=node, frame=frame, start=self.sim.now, end=self.sim.now + airtime
        )
        self._air.append(tx)
        self.stats.frames_sent += 1
        if self._on_transmit is not None:
            self._on_transmit(node, frame)
        self.sim.schedule(airtime, self._finish_transmission, tx, entry)

    def _finish_transmission(self, tx: _Transmission, entry: dict) -> None:
        frame = tx.frame
        self._prune_air()
        # Compute the set of transmissions overlapping this one once; the
        # per-receiver check then only tests audibility of these few.
        overlapping = [
            other
            for other in self._air
            if other is not tx and self._overlaps(other, tx)
        ]
        delivered_to_dst = False
        for receiver in self.topology.neighbors(tx.src):
            if receiver == tx.src or receiver not in self._listeners:
                continue
            if receiver in self._failed:
                continue  # dead radios hear nothing

            if not self._reception_succeeds(tx, receiver, overlapping):
                continue
            self.stats.frames_delivered += 1
            if self._on_delivery is not None:
                self._on_delivery(tx.src, receiver, frame)
            listener = self._listeners[receiver]
            if frame.dst == BROADCAST or frame.dst == receiver:
                if frame.dst == receiver:
                    delivered_to_dst = True
                    if frame.kind is not FrameKind.ACK:
                        self._schedule_ack(receiver, tx.src, frame)
                if frame.kind is FrameKind.ACK:
                    self._handle_ack_arrival(receiver, frame)
                else:
                    listener.on_receive(frame)
            else:
                listener.on_snoop(frame)

        if frame.kind is FrameKind.ACK:
            return  # ACK frames are fire-and-forget and bypass the queues

        if tx.src in self._failed:
            return  # sender died mid-air: nobody is waiting on this entry

        if frame.dst == BROADCAST:
            self._complete_entry(tx.src, entry, success=True)
        elif delivered_to_dst:
            # Wait for the ACK (which may itself be lost -> retry).
            pending = _PendingUnicast(
                frame=frame, tries_left=entry["tries"] - 1, done=entry["done"]
            )
            pending.ack_handle = self.sim.schedule(
                self.config.ack_timeout,
                self._ack_timeout,
                tx.src,
                entry,
                frame.frame_id,
            )
            self._pending_acks[frame.frame_id] = pending
        else:
            self._retry_or_fail(tx.src, entry)

    def _reception_succeeds(
        self, tx: _Transmission, receiver: int, overlapping: List[_Transmission]
    ) -> bool:
        for other in overlapping:
            # Half-duplex: a node transmitting during any part of the frame
            # cannot receive it.
            if other.src == receiver:
                return False
            # Collision: another audible transmission overlapping in time.
            if self.topology.audible(other.src, receiver):
                self.stats.collisions += 1
                return False
        # Independent link loss.
        if self.sim.rng.random() < self.topology.loss[tx.src][receiver]:
            self.stats.bernoulli_losses += 1
            return False
        return True

    @staticmethod
    def _overlaps(a: _Transmission, b: _Transmission) -> bool:
        return a.start < b.end and b.start < a.end

    def _prune_air(self) -> None:
        # Keep a short history so overlap checks at frame end still see
        # transmissions that finished mid-frame (airtimes are ~10 ms).
        horizon = self.sim.now - 0.1
        self._air = [tx for tx in self._air if tx.end >= horizon]

    # ------------------------------------------------------------------
    # Link-layer ACK machinery
    # ------------------------------------------------------------------
    def _schedule_ack(self, from_node: int, to_node: int, original: Frame) -> None:
        ack = Frame(
            src=from_node,
            dst=to_node,
            kind=FrameKind.ACK,
            payload=_AckPayload(original.frame_id),
        )
        self.stats.acks_sent += 1
        # ACKs are sent at MAC level with a fixed turnaround and skip CSMA.
        self.sim.schedule(self.config.ack_turnaround, self._send_ack_now, ack)

    def _send_ack_now(self, ack: Frame) -> None:
        airtime = ack.size_bits() / self.config.bitrate_bps
        tx = _Transmission(
            src=ack.src, frame=ack, start=self.sim.now, end=self.sim.now + airtime
        )
        self._air.append(tx)
        if self._on_transmit is not None:
            self._on_transmit(ack.src, ack)
        self.sim.schedule(
            airtime, self._finish_transmission, tx, {"done": None, "tries": 1}
        )

    def _handle_ack_arrival(self, receiver: int, ack_frame: Frame) -> None:
        payload: _AckPayload = ack_frame.payload
        pending = self._pending_acks.pop(payload.acked_frame_id, None)
        if pending is None:
            return  # duplicate or stale ACK
        if pending.ack_handle is not None:
            pending.ack_handle.cancel()
        self._complete_entry(
            receiver, {"done": pending.done, "frame": pending.frame}, True
        )

    def _ack_timeout(self, sender: int, entry: dict, frame_id: int) -> None:
        pending = self._pending_acks.pop(frame_id, None)
        if pending is None:
            return  # ACK arrived concurrently
        self._retry_or_fail(sender, entry)

    def _retry_or_fail(self, sender: int, entry: dict) -> None:
        if sender in self._failed:
            return  # a dead node retries nothing and runs no callbacks
        entry["tries"] -= 1
        if entry["tries"] > 0:
            entry["csma_attempts"] = 0
            entry["retry_no"] = entry.get("retry_no", 0) + 1
            # Exponential random backoff: colliding senders that timed out
            # together must desynchronise or they will collide forever.
            cfg = self.config
            window = cfg.backoff_max * (2 ** entry["retry_no"])
            self.sim.schedule(
                self.sim.rng.uniform(cfg.backoff_min, window),
                self._try_send,
                sender,
                entry,
            )
        else:
            self.stats.unicast_failures += 1
            self._complete_entry(sender, entry, success=False)

    def _complete_entry(self, sender: int, entry: dict, success: bool) -> None:
        queue = self._queues.get(sender)
        if queue and queue and queue[0].get("frame") is entry.get("frame"):
            queue.pop(0)
        self._busy_sending[sender] = False
        done = entry.get("done")
        if done is not None:
            done(success)
        self._pump(sender)


@dataclass
class _AckPayload:
    acked_frame_id: int

    def wire_bytes(self) -> int:
        return 2
