"""Packet-level lossy radio medium with CSMA, collisions and link ACKs.

Models the Mica2-style shared channel the paper runs on (Section 2.1-2.2):

* a single shared channel at ~38.6 kbps; per-frame airtime is computed from
  the frame size, so congestion is emergent rather than assumed;
* CSMA-CA style carrier sensing: a node defers transmission with random
  backoff while it can hear an ongoing transmission;
* collisions at the *receiver*: two transmissions overlapping in time, both
  audible at a receiver, corrupt each other there (hidden terminals collide
  even though CSMA spaced out mutually-audible senders) — this is what
  produces the paper's observation that ~40% of summary messages are lost
  "mostly due to network congestion near the basestation";
* independent per-link Bernoulli loss from the ground-truth
  :class:`~repro.sim.topology.Topology` (paper: 25-90% loss on audible
  pairs, asymmetric);
* unicast frames use link-layer ACKs with bounded retransmissions, so lossy
  links translate into *more transmitted messages* — the cost the storage
  index's ``xmits`` term is designed to avoid (property P4);
* half-duplex: a node cannot receive while transmitting;
* snooping: every successfully received frame not addressed to a node is
  still handed to it (`on_snoop`), which feeds link estimation.

All message-count and energy accounting flows through this module so no
protocol layer can forget to pay for a transmission.

Performance architecture (see DESIGN.md)
----------------------------------------

The reception fan-out is the single hottest loop in a trial, so the radio
precomputes, once per topology at construction:

* ``_audible_ids[src]`` — the audible receivers of ``src``, ascending;
* ``_loss_rows[src]`` — the aligned per-link loss probabilities (a numpy
  array on the vectorized path, a plain list on the scalar path);
* ``_audible_bool`` — the full n×n audibility matrix for O(1) carrier-sense
  and collision checks.

All radio randomness (loss outcomes and every backoff) comes from a
dedicated :class:`~repro.sim.rngstream.BatchedUniformStream` seeded from
the trial seed, not from ``sim.rng``. Loss draws obey a fixed discipline:
**every transmission consumes exactly ``len(_audible_ids[src])`` uniforms,
in ascending receiver id order, regardless of collision or failure
outcomes**. Both the vectorized path (one ``take(k)`` block compare) and
the scalar path (``k`` successive ``random()`` calls) therefore consume
byte-identical draws, which is what the differential determinism tests pin.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Set

from repro.sim.kernel import Simulator
from repro.sim.packets import BROADCAST, Frame, FrameKind
from repro.sim.rngstream import BatchedUniformStream, numpy_available
from repro.sim.topology import OUT_OF_RANGE, Topology


class RadioListener(Protocol):
    """Interface a mote exposes to the radio."""

    node_id: int

    def on_receive(self, frame: Frame) -> None:
        """Frame addressed to this node (or broadcast) arrived intact."""

    def on_snoop(self, frame: Frame) -> None:
        """Overheard a frame addressed to someone else."""


@dataclass(slots=True)
class RadioConfig:
    """Physical/MAC layer parameters (defaults approximate a Mica2)."""

    bitrate_bps: float = 38_600.0
    #: CSMA random backoff window (seconds). ``backoff_min`` must exceed the
    #: ACK turnaround + ACK airtime so acknowledgements are protected inside
    #: the inter-frame gap, as in real CSMA-CA MACs.
    backoff_min: float = 0.003
    backoff_max: float = 0.020
    #: Give up deferring and transmit anyway after this many busy sensings.
    max_csma_attempts: int = 16
    #: Link-layer retransmissions for unicast frames (total tries = 1 + this).
    #: Loss on audible pairs runs 25-90% (paper Section 6), and a hop only
    #: succeeds when frame AND ack get through, so persistence is needed:
    #: at 0.5 delivery each way, 6 tries give ~82% per-hop success.
    max_retries: int = 5
    #: How long a sender waits for an ACK before retrying (seconds).
    ack_timeout: float = 0.060
    #: Receive-to-ACK turnaround (seconds); kept below backoff_min.
    ack_turnaround: float = 0.0005


@dataclass(slots=True)
class RadioStats:
    """Aggregate channel diagnostics (not part of the paper's cost metric)."""

    frames_sent: int = 0
    frames_delivered: int = 0
    collisions: int = 0
    bernoulli_losses: int = 0
    csma_deferrals: int = 0
    unicast_failures: int = 0
    acks_sent: int = 0


class _Transmission:
    """One frame on the air for [start, end)."""

    __slots__ = ("src", "frame", "start", "end")

    def __init__(self, src: int, frame: Frame, start: float, end: float):
        self.src = src
        self.frame = frame
        self.start = start
        self.end = end


class _SendEntry:
    """A queued frame with its MAC retry/backoff state."""

    __slots__ = ("frame", "done", "tries", "csma_attempts", "retry_no")

    def __init__(
        self, frame: Frame, done: Optional[Callable[[bool], None]], tries: int
    ):
        self.frame = frame
        self.done = done
        self.tries = tries
        self.csma_attempts = 0
        self.retry_no = 0


class _PendingUnicast:
    """An entry whose final attempt was delivered and now awaits its ACK."""

    __slots__ = ("entry", "ack_handle")

    def __init__(self, entry: _SendEntry, ack_handle: Optional[object] = None):
        self.entry = entry
        self.ack_handle = ack_handle


class Radio:
    """The shared wireless medium connecting all motes in a simulation."""

    __slots__ = (
        "sim",
        "topology",
        "config",
        "stats",
        "path",
        "_stream",
        "_listeners",
        "_live",
        "_air",
        "_queues",
        "_busy_sending",
        "_pending_acks",
        "_failed",
        "_on_transmit",
        "_on_delivery",
        "_on_deliveries",
        "_audible_ids",
        "_loss_rows",
        "_audible_bool",
    )

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[RadioConfig] = None,
        on_transmit: Optional[Callable[[int, Frame], None]] = None,
        on_delivery: Optional[Callable[[int, int, Frame], None]] = None,
        on_deliveries: Optional[Callable[[int, List[int], Frame, int], None]] = None,
        path: Optional[str] = None,
    ):
        self.sim = sim
        self.topology = topology
        self.config = config or RadioConfig()
        self.stats = RadioStats()
        if path is None:
            path = os.environ.get("REPRO_RADIO_PATH", "vector")
        if path == "vector" and not numpy_available():
            path = "scalar"  # numpy is gated, not required
        if path not in ("vector", "scalar"):
            raise ValueError(f"unknown radio path {path!r}")
        self.path = path
        self._stream = BatchedUniformStream(sim.seed)
        self._listeners: Dict[int, RadioListener] = {}
        #: reception fast path: _live[node] is the node's listener when it
        #: can hear (registered and not failed), else None — one list index
        #: replaces a dict lookup plus a failed-set membership test in the
        #: per-receiver fan-out loop.
        self._live: List[Optional[RadioListener]] = [None] * topology.n
        #: recent/ongoing transmissions, pruned opportunistically
        self._air: List[_Transmission] = []
        #: per-node FIFO of frames waiting for the channel
        self._queues: Dict[int, List[_SendEntry]] = {}
        self._busy_sending: Dict[int, bool] = {}
        self._pending_acks: Dict[int, _PendingUnicast] = {}
        #: nodes whose radio is powered off (failure injection): they
        #: neither transmit, receive, ACK, nor run send-completion
        #: callbacks until revived.
        self._failed: Set[int] = set()
        #: census/energy hooks: (sender, frame) per attempt; (src, dst, frame)
        #: per successful delivery, or — preferred by the accounting hot
        #: path — (src, receivers, frame, bits) once per transmission.
        self._on_transmit = on_transmit
        self._on_delivery = on_delivery
        self._on_deliveries = on_deliveries
        self._build_neighbor_tables()

    def _build_neighbor_tables(self) -> None:
        """Precompute audibility/loss lookups (the topology is immutable)."""
        loss = self.topology.loss
        n = self.topology.n
        self._audible_ids: List[List[int]] = []
        self._loss_rows: List[object] = []
        self._audible_bool: List[List[bool]] = []
        vector = self.path == "vector"
        if vector:
            import numpy as np
        for src in range(n):
            row = loss[src]
            ids = [dst for dst in range(n) if row[dst] < OUT_OF_RANGE]
            self._audible_ids.append(ids)
            aligned = [row[dst] for dst in ids]
            self._loss_rows.append(np.asarray(aligned) if vector else aligned)
            self._audible_bool.append([p < OUT_OF_RANGE for p in row])

    # ------------------------------------------------------------------
    # Registration and public send API
    # ------------------------------------------------------------------
    def register(self, listener: RadioListener) -> None:
        node = listener.node_id
        if node in self._listeners:
            raise ValueError(f"node {node} already registered")
        if not 0 <= node < self.topology.n:
            raise ValueError(f"node {node} outside topology of size {self.topology.n}")
        self._listeners[node] = listener
        self._live[node] = listener
        self._queues[node] = []
        self._busy_sending[node] = False

    # ------------------------------------------------------------------
    # Failure injection (node power state)
    # ------------------------------------------------------------------
    def is_failed(self, node: int) -> bool:
        return node in self._failed

    def fail_node(self, node: int) -> None:
        """Power the node's radio off: its send queue is lost, pending
        attempts go silent, and it stops hearing the channel."""
        if node not in self._queues:
            raise ValueError(f"node {node} is not registered with the radio")
        self._failed.add(node)
        self._live[node] = None
        self._queues[node].clear()
        self._busy_sending[node] = False

    def revive_node(self, node: int) -> None:
        """Power the node's radio back on (with an empty send queue)."""
        self._failed.discard(node)
        listener = self._listeners.get(node)
        if listener is not None:
            self._live[node] = listener

    def broadcast(self, frame: Frame) -> None:
        """Queue an unacknowledged broadcast frame."""
        if frame.dst != BROADCAST:
            raise ValueError("broadcast() requires frame.dst == BROADCAST")
        self._enqueue(frame.src, _SendEntry(frame, None, 1))

    def unicast(
        self, frame: Frame, done: Optional[Callable[[bool], None]] = None
    ) -> None:
        """Queue an acknowledged unicast frame.

        ``done(success)`` fires after the final attempt; ``success`` is True
        iff a link-layer ACK came back.
        """
        if frame.dst == BROADCAST:
            raise ValueError("unicast() requires a concrete destination")
        self._enqueue(frame.src, _SendEntry(frame, done, 1 + self.config.max_retries))

    # ------------------------------------------------------------------
    # Channel access (CSMA)
    # ------------------------------------------------------------------
    def _enqueue(self, node: int, entry: _SendEntry) -> None:
        if node not in self._queues:
            raise ValueError(f"node {node} is not registered with the radio")
        if node in self._failed:
            return  # dead radio: the frame silently never leaves the node
        self._queues[node].append(entry)
        self._pump(node)

    def _pump(self, node: int) -> None:
        if self._busy_sending[node] or not self._queues[node]:
            return
        self._busy_sending[node] = True
        entry = self._queues[node][0]
        # Initial random backoff slot (CSMA-CA): transmissions triggered by
        # the same event (e.g. a broadcast everyone reacts to, or two nodes'
        # timers aligning) must not start at the same instant — carrier
        # sense cannot see a transmission that hasn't started yet.
        self.sim.schedule(
            self._stream.uniform(0.0002, self.config.backoff_min * 2),
            self._try_send,
            node,
            entry,
        )

    def _channel_busy_until(self, node: int) -> float:
        """Latest end-time of any ongoing transmission audible at ``node``."""
        now = self.sim.now
        busy = now
        audible_bool = self._audible_bool
        for tx in self._air:
            if tx.end > now and tx.src != node and audible_bool[tx.src][node]:
                if tx.end > busy:
                    busy = tx.end
        return busy

    def _try_send(self, node: int, entry: _SendEntry) -> None:
        if node in self._failed:
            return  # the node died while this attempt was scheduled
        busy_until = self._channel_busy_until(node)
        cfg = self.config
        if busy_until > self.sim.now and entry.csma_attempts < cfg.max_csma_attempts:
            entry.csma_attempts += 1
            self.stats.csma_deferrals += 1
            backoff = self._stream.uniform(cfg.backoff_min, cfg.backoff_max)
            self.sim.schedule(
                (busy_until - self.sim.now) + backoff, self._try_send, node, entry
            )
            return
        self._start_transmission(node, entry)

    # ------------------------------------------------------------------
    # Transmission and reception
    # ------------------------------------------------------------------
    def _start_transmission(self, node: int, entry: _SendEntry) -> None:
        frame = entry.frame
        airtime = frame.size_bits() / self.config.bitrate_bps
        now = self.sim.now
        tx = _Transmission(node, frame, now, now + airtime)
        self._air.append(tx)
        self.stats.frames_sent += 1
        if self._on_transmit is not None:
            self._on_transmit(node, frame)
        self.sim.schedule(airtime, self._finish_transmission, tx, entry)

    def _finish_transmission(
        self, tx: _Transmission, entry: Optional[_SendEntry]
    ) -> None:
        frame = tx.frame
        src = tx.src
        air = self._air
        if len(air) > 16:
            # Pruning is amortized: stale entries never overlap anything, so
            # they only cost scan time, and the scans stay short as long as
            # the list is kept bounded.
            self._prune_air()
            air = self._air
        # Compute the set of transmissions overlapping this one once; the
        # per-receiver check then only tests audibility of these few.
        if len(air) > 1:
            tx_start = tx.start
            tx_end = tx.end
            overlapping = [
                other
                for other in air
                if other is not tx and other.start < tx_end and tx_start < other.end
            ]
        else:
            overlapping = ()

        receivers = self._audible_ids[src]
        k = len(receivers)
        # Draw-count discipline: exactly k loss uniforms per transmission,
        # ascending receiver order, consumed before any outcome is known —
        # this keeps the vectorized and scalar paths (and serial vs
        # parallel campaign runs) on identical RNG trajectories.
        if self.path == "vector":
            lost = (self._stream.take(k) < self._loss_rows[src]).tolist()
        else:
            stream_random = self._stream.random
            loss_row = self._loss_rows[src]
            lost = [stream_random() < loss_row[i] for i in range(k)]

        live = self._live
        audible_bool = self._audible_bool
        stats = self.stats
        on_delivery = self._on_delivery
        on_deliveries = self._on_deliveries
        delivered: Optional[List[int]] = [] if on_deliveries is not None else None
        dst = frame.dst
        is_broadcast = dst == BROADCAST
        is_ack = frame.kind is FrameKind.ACK
        delivered_to_dst = False
        n_delivered = 0
        n_collisions = 0
        n_losses = 0
        for idx, receiver in enumerate(receivers):
            listener = live[receiver]
            if listener is None:
                continue  # unregistered or dead radios hear nothing

            if overlapping:
                # Half-duplex first (order-independent): a receiver that was
                # itself transmitting misses the frame without a collision
                # being counted; otherwise any audible overlap corrupts it.
                half_duplex = False
                collided = False
                for other in overlapping:
                    if other.src == receiver:
                        half_duplex = True
                        break
                    if not collided and audible_bool[other.src][receiver]:
                        collided = True
                if half_duplex:
                    continue
                if collided:
                    n_collisions += 1
                    continue
            if lost[idx]:
                n_losses += 1
                continue

            n_delivered += 1
            if delivered is not None:
                delivered.append(receiver)
            elif on_delivery is not None:
                on_delivery(src, receiver, frame)
            if is_broadcast:
                listener.on_receive(frame)
            elif dst == receiver:
                delivered_to_dst = True
                if is_ack:
                    self._handle_ack_arrival(receiver, frame)
                else:
                    self._schedule_ack(receiver, src, frame)
                    listener.on_receive(frame)
            else:
                listener.on_snoop(frame)
        stats.frames_delivered += n_delivered
        if n_collisions:
            stats.collisions += n_collisions
        if n_losses:
            stats.bernoulli_losses += n_losses
        if delivered:
            on_deliveries(src, delivered, frame, frame.size_bits())

        if is_ack:
            return  # ACK frames are fire-and-forget and bypass the queues

        if src in self._failed:
            return  # sender died mid-air: nobody is waiting on this entry

        if is_broadcast:
            self._complete_entry(src, entry, success=True)
        elif delivered_to_dst:
            # Wait for the ACK (which may itself be lost -> retry).
            pending = _PendingUnicast(entry)
            pending.ack_handle = self.sim.schedule(
                self.config.ack_timeout,
                self._ack_timeout,
                src,
                entry,
                frame.frame_id,
            )
            self._pending_acks[frame.frame_id] = pending
        else:
            self._retry_or_fail(src, entry)

    def _prune_air(self) -> None:
        # Keep a short history so overlap checks at frame end still see
        # transmissions that finished mid-frame (airtimes are ~10 ms).
        horizon = self.sim.now - 0.1
        if any(tx.end < horizon for tx in self._air):
            self._air = [tx for tx in self._air if tx.end >= horizon]

    # ------------------------------------------------------------------
    # Link-layer ACK machinery
    # ------------------------------------------------------------------
    def _schedule_ack(self, from_node: int, to_node: int, original: Frame) -> None:
        ack = Frame(
            src=from_node,
            dst=to_node,
            kind=FrameKind.ACK,
            payload=_AckPayload(original.frame_id),
        )
        self.stats.acks_sent += 1
        # ACKs are sent at MAC level with a fixed turnaround and skip CSMA.
        self.sim.schedule(self.config.ack_turnaround, self._send_ack_now, ack)

    def _send_ack_now(self, ack: Frame) -> None:
        airtime = ack.size_bits() / self.config.bitrate_bps
        now = self.sim.now
        tx = _Transmission(ack.src, ack, now, now + airtime)
        self._air.append(tx)
        if self._on_transmit is not None:
            self._on_transmit(ack.src, ack)
        self.sim.schedule(airtime, self._finish_transmission, tx, None)

    def _handle_ack_arrival(self, receiver: int, ack_frame: Frame) -> None:
        payload: _AckPayload = ack_frame.payload
        pending = self._pending_acks.pop(payload.acked_frame_id, None)
        if pending is None:
            return  # duplicate or stale ACK
        if pending.ack_handle is not None:
            pending.ack_handle.cancel()
        self._complete_entry(receiver, pending.entry, True)

    def _ack_timeout(self, sender: int, entry: _SendEntry, frame_id: int) -> None:
        pending = self._pending_acks.pop(frame_id, None)
        if pending is None:
            return  # ACK arrived concurrently
        self._retry_or_fail(sender, entry)

    def _retry_or_fail(self, sender: int, entry: _SendEntry) -> None:
        if sender in self._failed:
            return  # a dead node retries nothing and runs no callbacks
        entry.tries -= 1
        if entry.tries > 0:
            entry.csma_attempts = 0
            entry.retry_no += 1
            # Exponential random backoff: colliding senders that timed out
            # together must desynchronise or they will collide forever.
            cfg = self.config
            window = cfg.backoff_max * (2**entry.retry_no)
            self.sim.schedule(
                self._stream.uniform(cfg.backoff_min, window),
                self._try_send,
                sender,
                entry,
            )
        else:
            self.stats.unicast_failures += 1
            self._complete_entry(sender, entry, success=False)

    def _complete_entry(self, sender: int, entry: _SendEntry, success: bool) -> None:
        queue = self._queues.get(sender)
        if queue and queue[0].frame is entry.frame:
            queue.pop(0)
        self._busy_sending[sender] = False
        if entry.done is not None:
            entry.done(success)
        self._pump(sender)


@dataclass(slots=True)
class _AckPayload:
    acked_frame_id: int

    def wire_bytes(self) -> int:
        return 2
