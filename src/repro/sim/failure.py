"""Failure injection: node death and churn schedules (E14).

The paper's Section 6 discussion notes that nodes die in real deployments
and that the basestation's adaptivity is what recovers: it simply stops
assigning value ranges to nodes it no longer hears from, and the next
storage index re-maps the dead owner's range. This module supplies the
*injection* half of that story:

* :class:`FailureEvent` — one node's kill time and optional revive time;
* :class:`FailureSchedule` — a validated batch of events, either
  spec-driven (explicit times) or generated from a seeded failure rate
  (:meth:`FailureSchedule.from_rate`), deterministically per seed;
* :class:`FailureInjector` — arms a schedule against a
  :class:`~repro.sim.network.Network`: at each kill time the mote's radio
  goes dark and its flash contents are orphaned mid-run; the routing
  tree, Trickle and the link estimators react organically (silence
  timeouts, parent re-selection) rather than being reset.

The basestation half — staleness-based eviction and range reassignment —
lives in :mod:`repro.core.statistics` and :mod:`repro.core.basestation`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sim.network import Network


@dataclass(frozen=True)
class FailureEvent:
    """One node's lifecycle: killed at ``at``, optionally revived later."""

    node: int
    at: float
    revive_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node <= 0:
            raise ValueError(
                f"cannot schedule failure for node {self.node}; "
                "node 0 is the basestation and ids are positive"
            )
        if self.at < 0:
            raise ValueError(f"kill time must be >= 0, got {self.at}")
        if self.revive_at is not None and self.revive_at <= self.at:
            raise ValueError(
                f"revive time {self.revive_at} must be after kill time {self.at}"
            )


class FailureSchedule:
    """A validated, time-ordered batch of :class:`FailureEvent`\\ s.

    Each node may appear at most once — one death (and at most one
    rebirth) per node keeps the survival accounting unambiguous.
    """

    def __init__(self, events: Sequence[FailureEvent]):
        nodes = [event.node for event in events]
        if len(nodes) != len(set(nodes)):
            raise ValueError("each node may appear at most once in a schedule")
        self.events: Tuple[FailureEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at, e.node))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @classmethod
    def from_rate(
        cls,
        rate: float,
        nodes: Sequence[int],
        window: Tuple[float, float],
        seed: int,
        revive_frac: float = 0.0,
        downtime: float = 0.0,
    ) -> "FailureSchedule":
        """A seeded random schedule killing ``rate`` of ``nodes``.

        ``round(rate * len(nodes))`` distinct nodes die at uniform times
        inside ``window``; the first ``revive_frac`` of them (by kill
        order) reboot ``downtime`` seconds after dying. The schedule is a
        pure function of its arguments — the RNG is private, so building
        one never perturbs the simulation's random stream.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"failure rate must be in [0, 1], got {rate}")
        if not 0.0 <= revive_frac <= 1.0:
            raise ValueError(f"revive_frac must be in [0, 1], got {revive_frac}")
        lo, hi = window
        if not 0 <= lo <= hi:
            raise ValueError(f"need 0 <= window start <= end, got {window}")
        if revive_frac > 0.0 and downtime <= 0.0:
            raise ValueError("reviving nodes need a positive downtime")
        rng = random.Random(f"churn:{seed}")
        victims = sorted(set(nodes))
        kills = round(rate * len(victims))
        # rng.sample's order IS the kill order: pairing it with the sorted
        # times keeps node-to-time assignment random (sorting the victims
        # here would make low node ids — which encode position in the
        # topology generators — systematically die first).
        chosen = rng.sample(victims, kills)
        times = sorted(rng.uniform(lo, hi) for _ in chosen)
        revived = round(revive_frac * kills)
        events = [
            FailureEvent(
                node=node,
                at=at,
                revive_at=(at + downtime) if position < revived else None,
            )
            for position, (node, at) in enumerate(zip(chosen, times))
        ]
        return cls(events)


class FailureInjector:
    """Binds a :class:`FailureSchedule` to a network's event kernel."""

    def __init__(self, net: Network, schedule: FailureSchedule):
        self.net = net
        self.schedule = schedule
        self.kills = 0
        self.revives = 0
        self._armed = False

    def arm(self) -> None:
        """Schedule every kill/revive on the simulation clock (once)."""
        if self._armed:
            raise RuntimeError("injector is already armed")
        self._armed = True
        for event in self.schedule:
            if event.node not in self.net.motes:
                raise ValueError(f"schedule names unknown node {event.node}")
            self.net.sim.schedule_at(event.at, self._kill, event)

    def _kill(self, event: FailureEvent) -> None:
        self.net.fail_node(event.node)
        self.kills += 1
        if event.revive_at is not None:
            self.net.sim.schedule_at(event.revive_at, self._revive, event)

    def _revive(self, event: FailureEvent) -> None:
        self.net.revive_node(event.node)
        self.revives += 1
