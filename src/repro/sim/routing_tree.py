"""Tree-based multihop routing (Woo et al. style), per Sections 2.2 and 5.1.

Each node selects exactly one parent that is "one hop closer to the
basestation than itself"; parent selection minimises cumulative path ETX
using the snooping link estimator, with hysteresis so the tree is stable
under noisy estimates. The root (node 0) advertises path cost 0.

Beyond the parent pointer, the service maintains the two bounded lists the
paper's routing rules depend on (Section 5.1):

* a **descendants list** (max 32 entries) mapping each known descendant to
  the child branch it is reachable through, learned "by tracking all nodes
  on whose behalf it routes packets up the routing tree";
* a **neighbor list** (max 32 entries) from the link estimator, "independent
  of the routing tree", used to take shortcuts.

Entries are evicted LRU-style when the lists overflow and when nodes fall
silent, "thus adapting to changes in network connectivity".
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.kernel import Simulator
from repro.sim.linkest import LinkEstimator


@dataclass(slots=True)
class BeaconPayload:
    """Routing beacon: the sender's advertised path cost and parent."""

    path_etx: float
    parent: Optional[int]

    def wire_bytes(self) -> int:
        return 5


class _ParentCandidate:
    """One neighbor's last-advertised route (slotted: rebuilt per beacon)."""

    __slots__ = ("advertised_etx", "advertised_parent", "last_heard")

    def __init__(
        self,
        advertised_etx: float,
        advertised_parent: Optional[int],
        last_heard: float,
    ):
        self.advertised_etx = advertised_etx
        self.advertised_parent = advertised_parent
        self.last_heard = last_heard


class RoutingTree:
    """Routing-tree state machine for a single node.

    The owning mote must feed it beacons (:meth:`on_beacon`), uplink
    forwarding observations (:meth:`note_uplink`) and overheard origin/parent
    headers (:meth:`note_origin_header`), and should consult
    :attr:`parent`, :meth:`next_hop_down` and :meth:`in_neighbor_list` when
    routing.
    """

    __slots__ = (
        "node_id",
        "sim",
        "linkest",
        "is_root",
        "beacon_interval",
        "max_descendants",
        "max_neighbors",
        "switch_threshold",
        "parent_timeout",
        "parent",
        "path_etx",
        "_candidates",
        "_descendants",
        "neighbor_parents",
        "parent_changes",
    )

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        linkest: LinkEstimator,
        is_root: bool = False,
        beacon_interval: float = 10.0,
        max_descendants: int = 32,
        max_neighbors: int = 32,
        switch_threshold: float = 0.75,
        parent_timeout_beacons: float = 8.0,
    ):
        self.node_id = node_id
        self.sim = sim
        self.linkest = linkest
        self.is_root = is_root
        self.beacon_interval = beacon_interval
        self.max_descendants = max_descendants
        self.max_neighbors = max_neighbors
        self.switch_threshold = switch_threshold
        self.parent_timeout = parent_timeout_beacons * beacon_interval

        self.parent: Optional[int] = None
        self.path_etx: float = 0.0 if is_root else math.inf
        self._candidates: Dict[int, _ParentCandidate] = {}
        #: descendant -> next-hop child, most-recently-used last
        self._descendants: "OrderedDict[int, int]" = OrderedDict()
        #: neighbor -> the parent it advertised in its last beacon; lets a
        #: node recognise which link-senders are its children (used to learn
        #: descendants from up-routed data frames).
        self.neighbor_parents: Dict[int, Optional[int]] = {}
        self.parent_changes = 0

    # ------------------------------------------------------------------
    # Beacon handling / parent selection
    # ------------------------------------------------------------------
    def beacon_payload(self) -> BeaconPayload:
        return BeaconPayload(path_etx=self.path_etx, parent=self.parent)

    #: Parent candidates advertising a path cost above this are ignored.
    #: Routing cycles disconnected from the root (count-to-infinity during
    #: churn) inflate their advertised cost every beacon round; the ceiling
    #: makes such cycles self-destruct within a few beacons.
    MAX_PATH_ETX = 100.0

    def on_beacon(self, sender: int, payload: BeaconPayload) -> None:
        self.neighbor_parents[sender] = payload.parent
        if self.is_root:
            return
        if payload.parent == self.node_id or payload.path_etx > self.MAX_PATH_ETX:
            # The sender routes through us (loop) or advertises a cost that
            # only a cycle can produce: not a usable parent.
            self._candidates.pop(sender, None)
            self._reevaluate()
            return
        self._candidates[sender] = _ParentCandidate(
            advertised_etx=payload.path_etx,
            advertised_parent=payload.parent,
            last_heard=self.sim.now,
        )
        self._reevaluate()

    def _candidate_cost(self, neighbor: int) -> float:
        cand = self._candidates.get(neighbor)
        if cand is None:
            return math.inf
        return cand.advertised_etx + self.linkest.etx(neighbor)

    def _reevaluate(self) -> None:
        # Runs on every received/snooped beacon — the candidate sweep reads
        # the link estimator's cached per-record ETX instead of going
        # through the etx() lookup twice per candidate.
        now = self.sim.now
        candidates = self._candidates
        cutoff = now - self.parent_timeout
        parent = self.parent
        stale = None
        best: Optional[int] = None
        best_cost = math.inf
        current_cost: Optional[float] = None
        inf = math.inf
        # Single pass: stale detection and the cost sweep share one loop.
        # Direct table access (not linkest.etx()): this runs for every heard
        # beacon and the method-call tax dominated its profile.
        table = self.linkest._table
        for nbr, cand in candidates.items():
            if cand.last_heard < cutoff:
                if stale is None:
                    stale = [nbr]
                else:
                    stale.append(nbr)
                continue
            rec = table.get(nbr)
            cost = cand.advertised_etx + (rec.etx if rec is not None else inf)
            if cost < best_cost:
                best, best_cost = nbr, cost
            if nbr == parent:
                current_cost = cost

        if stale:
            for nbr in stale:
                del candidates[nbr]

        if current_cost is None:
            # Parent fell out of the candidate table (or went stale).
            if parent is not None:
                parent = self.parent = None
                self.path_etx = inf
            current_cost = inf

        if best is None:
            return
        if parent is None or best_cost < current_cost - self.switch_threshold:
            if best != parent:
                self.parent_changes += 1
            self.parent = best
            current_cost = best_cost
        self.path_etx = current_cost

    def reset(self) -> None:
        """Forget all routing state (a cold reboot loses RAM; the node
        rejoins the tree from beacons like a freshly booted mote)."""
        self.parent = None
        self.path_etx = 0.0 if self.is_root else math.inf
        self._candidates.clear()
        self._descendants.clear()
        self.neighbor_parents.clear()

    @property
    def joined(self) -> bool:
        """True once the node has a route to the basestation."""
        return self.is_root or self.parent is not None

    @property
    def depth_estimate(self) -> float:
        """Path ETX to the root (∞ before joining)."""
        return self.path_etx

    # ------------------------------------------------------------------
    # Descendants list
    # ------------------------------------------------------------------
    def note_uplink(self, origin: int, via_child: int) -> None:
        """Record that a packet from ``origin`` was routed up through
        ``via_child`` (so ``origin`` is a descendant on that branch)."""
        if origin == self.node_id:
            return
        for desc in (origin, via_child):
            if desc == self.node_id:
                continue
            self._descendants.pop(desc, None)
            self._descendants[desc] = via_child
        self._trim_descendants()

    def note_origin_header(self, origin: int, origin_parent: Optional[int]) -> None:
        """Learn from the Scoop packet header (every packet carries its
        origin and the origin's parent): a node whose parent is us is a
        direct child."""
        if origin_parent == self.node_id and origin != self.node_id:
            self._descendants.pop(origin, None)
            self._descendants[origin] = origin
            self._trim_descendants()

    def _trim_descendants(self) -> None:
        while len(self._descendants) > self.max_descendants:
            self._descendants.popitem(last=False)

    def sender_is_child(self, sender: int) -> bool:
        """True when ``sender``'s last beacon advertised us as its parent,
        i.e. frames arriving from it are travelling *up* the tree."""
        return self.neighbor_parents.get(sender, None) == self.node_id

    def in_descendants(self, node: int) -> bool:
        return node in self._descendants

    def next_hop_down(self, node: int) -> Optional[int]:
        """The child branch through which ``node`` is reachable, if known."""
        return self._descendants.get(node)

    def descendants(self) -> List[int]:
        return list(self._descendants.keys())

    def forget_descendant(self, node: int) -> None:
        self._descendants.pop(node, None)

    # ------------------------------------------------------------------
    # Neighbor list (from the link estimator, capped)
    # ------------------------------------------------------------------
    def neighbor_list(self) -> List[int]:
        ranked = self.linkest.best_neighbors(self.max_neighbors)
        return [nbr for nbr, _quality in ranked]

    def in_neighbor_list(self, node: int) -> bool:
        return node in set(self.neighbor_list())
