"""Discrete-event simulation kernel.

This module is the bottom-most substrate of the reproduction: a small,
deterministic discrete-event scheduler in the style of TOSSIM's event queue.
Every other simulated component (radio, timers, protocol state machines)
schedules callbacks through a :class:`Simulator` instance.

Determinism rules:

* Events firing at the same timestamp run in the order they were scheduled
  (a monotonically increasing sequence number breaks ties).
* All randomness used by simulated components must come from
  :attr:`Simulator.rng`, which is seeded at construction, so a run is a pure
  function of ``(scenario, seed)``.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the kernel is used inconsistently (e.g. past scheduling)."""


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry. Ordered by (time, seq)."""

    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Allows the caller to cancel a pending event. Cancelling an event that
    already fired (or was already cancelled) is a no-op.
    """

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A deterministic discrete-event simulator clock.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator. Components
        must draw randomness only from :attr:`rng`.
    """

    def __init__(self, seed: int = 0):
        self._heap: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.rng = random.Random(seed)
        self.seed = seed
        #: number of events executed so far (diagnostic)
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self._now:.6f}"
            )
        event = _ScheduledEvent(time=time, seq=next(self._seq), fn=fn, args=args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the single next event. Returns False if the queue was empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_executed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: float) -> None:
        """Run events in timestamp order until the clock reaches ``until``.

        The clock is left exactly at ``until`` even if the queue drains
        early, so back-to-back ``run`` calls advance monotonically.
        """
        if until < self._now:
            raise SimulationError(f"cannot run backwards to {until}")
        self._running = True
        try:
            while self._heap:
                next_time = self.peek_time()
                if next_time is None or next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        self._now = max(self._now, until)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the event queue completely (with a runaway guard)."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    "run_until_idle exceeded max_events; runaway loop?"
                )

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)


class Timer:
    """A restartable one-shot or periodic timer bound to a :class:`Simulator`.

    The callback fires with no arguments. Periodic timers may apply a
    uniform jitter fraction to de-synchronize simulated nodes, matching the
    behaviour of real motes whose clocks drift.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], None],
        interval: Optional[float] = None,
        periodic: bool = False,
        jitter: float = 0.0,
    ):
        if periodic and interval is None:
            raise SimulationError("periodic timer needs an interval")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError(f"jitter must be in [0, 1), got {jitter}")
        self._sim = sim
        self._callback = callback
        self._interval = interval
        self._periodic = periodic
        self._jitter = jitter
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def _next_delay(self, base: float) -> float:
        if self._jitter <= 0.0:
            return base
        spread = base * self._jitter
        return base + self._sim.rng.uniform(-spread, spread)

    def start(self, delay: Optional[float] = None) -> None:
        """(Re)start the timer; ``delay`` overrides the configured interval
        for the first firing only.

        An explicit ``delay`` fires exactly when asked: callers that pass
        one are deliberately staggering startup themselves, so jitter
        applies only to interval-derived delays.
        """
        self.stop()
        if delay is not None:
            first = delay
        elif self._interval is not None:
            first = self._next_delay(self._interval)
        else:
            raise SimulationError("timer started without a delay or interval")
        self._handle = self._sim.schedule(max(0.0, first), self._fire)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        if self._periodic and self._interval is not None:
            self._handle = self._sim.schedule(
                max(0.0, self._next_delay(self._interval)), self._fire
            )
        self._callback()
