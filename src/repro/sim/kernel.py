"""Discrete-event simulation kernel.

This module is the bottom-most substrate of the reproduction: a small,
deterministic discrete-event scheduler in the style of TOSSIM's event queue.
Every other simulated component (radio, timers, protocol state machines)
schedules callbacks through a :class:`Simulator` instance.

Determinism rules:

* Events firing at the same timestamp run in the order they were scheduled.
  A monotonically increasing sequence number is part of every queue entry's
  sort key, so ordering never falls through to comparing callbacks or
  payloads (which would be a latent ``TypeError`` and a nondeterminism
  hazard).
* All randomness used by simulated components must come from
  :attr:`Simulator.rng`, which is seeded at construction, so a run is a pure
  function of ``(scenario, seed)``.

Performance notes (see DESIGN.md, "Performance architecture"):

* Queue entries are plain ``(time, seq, event)`` tuples — tuple comparison
  runs entirely in C and, because ``seq`` values are distinct, never reaches
  the event object.
* Events are ``__slots__`` records; the event *is* the cancellation handle
  (:class:`EventHandle` is an alias), so scheduling allocates exactly one
  object plus one tuple.
* Two interchangeable queue backends exist behind the same
  ``schedule``/``schedule_at`` interface: the default C-``heapq`` backend
  and an adaptive calendar queue (Brown 1988). Both pop in identical
  ``(time, seq)`` order, so runs are bit-identical across backends — a
  differential test asserts this. Select with ``Simulator(...,
  scheduler="calendar")`` or ``REPRO_SIM_SCHEDULER=calendar``.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush
from math import inf
from random import Random
from typing import Any, Callable, Iterable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the kernel is used inconsistently (e.g. past scheduling)."""


class _Event:
    """A scheduled callback; doubles as its own cancellation handle."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., None], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


#: Public name for the object returned by :meth:`Simulator.schedule`:
#: exposes ``cancel()``, ``cancelled`` and ``time``. Cancelling an event
#: that already fired (or was already cancelled) is a no-op.
EventHandle = _Event

#: A queue entry: ``(time, seq, event)``.
_Entry = Tuple[float, int, _Event]


class _HeapScheduler:
    """Binary-heap event queue (C ``heapq``) — the default backend."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[_Entry] = []

    def push(self, entry: _Entry) -> None:
        heappush(self._heap, entry)

    def pop_before(self, limit: float) -> Optional[_Event]:
        """Remove and return the next live event with ``time <= limit``.

        Cancelled entries encountered on the way are discarded. Returns
        ``None`` (leaving the queue intact) when the next live event is
        beyond ``limit`` or the queue is empty.
        """
        heap = self._heap
        while heap:
            if heap[0][0] > limit:
                return None
            event = heappop(heap)[2]
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
        return heap[0][0] if heap else None

    def entries(self) -> Iterable[_Entry]:
        return self._heap


class _CalendarScheduler:
    """Adaptive calendar queue (Brown 1988): O(1) expected enqueue/dequeue.

    Events hash into day buckets by ``time // width``; each bucket stays
    sorted (C ``bisect.insort`` on the entry tuples), and dequeue walks the
    calendar from the current day. Bucket count doubles/halves as the
    population grows/shrinks, and the day width is re-estimated from the
    observed event spacing at each resize, so the queue adapts to the
    simulation's timer mix. Total order is exactly ``(time, seq)`` — same-
    time events always land in the same bucket, so cross-bucket ordering
    can never split a tie.
    """

    __slots__ = ("_buckets", "_nbuckets", "_width", "_count", "_day", "_day_end")

    MIN_BUCKETS = 4

    def __init__(self) -> None:
        self._nbuckets = self.MIN_BUCKETS
        self._buckets: List[List[_Entry]] = [[] for _ in range(self._nbuckets)]
        self._width = 0.01
        self._count = 0
        self._day = 0  # current day index (monotonic, not wrapped)
        self._day_end = self._width  # upper time bound of the current day

    def push(self, entry: _Entry) -> None:
        day = int(entry[0] / self._width)
        if day < self._day:
            # Same-timestamp-as-now events can land just behind the cursor
            # after a resize recomputed the width; file them in the current
            # day so they are still found (ordering is preserved by the
            # in-bucket sort).
            day = self._day
        insort(self._buckets[day % self._nbuckets], entry)
        self._count += 1
        if self._count > self._nbuckets * 4:
            self._resize(self._nbuckets * 2)

    def pop_before(self, limit: float) -> Optional[_Event]:
        while self._count:
            bucket = self._buckets[self._day % self._nbuckets]
            if bucket and bucket[0][0] < self._day_end:
                if bucket[0][0] > limit:
                    return None
                event = bucket.pop(0)[2]
                self._count -= 1
                if self._count < self._nbuckets // 4 > self.MIN_BUCKETS:
                    self._resize(max(self.MIN_BUCKETS, self._nbuckets // 2))
                if not event.cancelled:
                    return event
                continue
            # Current day exhausted: walk the calendar day by day (O(1)
            # amortized when the width matches the event spacing). Only
            # after a fruitless full year fall back to a direct search —
            # doing the search on every advance is O(nbuckets) per event,
            # which collapses on sparse calendars.
            day = self._day
            day_end = self._day_end
            buckets = self._buckets
            nbuckets = self._nbuckets
            width = self._width
            for _ in range(nbuckets):
                day += 1
                day_end += width
                ahead = buckets[day % nbuckets]
                if ahead and ahead[0][0] < day_end:
                    break
            else:
                next_time = self._min_time()
                if next_time is None:
                    return None
                day = int(next_time / width)
                if day <= self._day:
                    # Float rounding at an exact day boundary can map the
                    # next event back onto the exhausted day; force
                    # progress or this loop never terminates.
                    day = self._day + 1
                day_end = (day + 1) * width
            self._day = day
            self._day_end = day_end
        return None

    def peek_time(self) -> Optional[float]:
        self._discard_cancelled_heads()
        return self._min_time()

    def entries(self) -> Iterable[_Entry]:
        for bucket in self._buckets:
            yield from bucket

    # -- internals -------------------------------------------------------
    def _discard_cancelled_heads(self) -> None:
        for bucket in self._buckets:
            while bucket and bucket[0][2].cancelled:
                bucket.pop(0)
                self._count -= 1

    def _min_time(self) -> Optional[float]:
        best = None
        for bucket in self._buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        return best[0] if best is not None else None

    def _resize(self, nbuckets: int) -> None:
        entries = [e for bucket in self._buckets for e in bucket]
        entries.sort()
        # Estimate the day width from the average spacing of the queue's
        # next events (the classic heuristic): wide enough that a day holds
        # a few events, narrow enough that a day never holds most of them.
        if len(entries) >= 2:
            sample = entries[: min(len(entries), 64)]
            span = sample[-1][0] - sample[0][0]
            avg_gap = span / max(1, len(sample) - 1)
            self._width = max(avg_gap * 2.0, 1e-9)
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        self._count = 0
        if entries:
            self._day = int(entries[0][0] / self._width)
        self._day_end = (self._day + 1) * self._width
        for entry in entries:
            day = max(int(entry[0] / self._width), self._day)
            self._buckets[day % nbuckets].append(entry)
            self._count += 1


_SCHEDULERS = {"heap": _HeapScheduler, "calendar": _CalendarScheduler}


class Simulator:
    """A deterministic discrete-event simulator clock.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator. Components
        must draw randomness only from :attr:`rng`.
    scheduler:
        Queue backend: ``"heap"`` (default) or ``"calendar"``. ``None``
        reads ``REPRO_SIM_SCHEDULER`` (falling back to ``"heap"``). Both
        backends execute events in identical ``(time, seq)`` order.
    """

    __slots__ = (
        "_sched",
        "_seq",
        "now",
        "_running",
        "rng",
        "seed",
        "scheduler_name",
        "events_executed",
    )

    def __init__(self, seed: int = 0, scheduler: Optional[str] = None):
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SIM_SCHEDULER", "heap")
        if scheduler not in _SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; one of {sorted(_SCHEDULERS)}"
            )
        self.scheduler_name = scheduler
        self._sched = _SCHEDULERS[scheduler]()
        self._seq = 0
        #: current simulation time in seconds (read-only by convention;
        #: a plain attribute rather than a property because hot callbacks
        #: read it hundreds of thousands of times per trial).
        self.now = 0.0
        self._running = False
        self.rng = Random(seed)
        self.seed = seed
        #: number of events executed so far (diagnostic; exported per trial
        #: as ``TrialMetrics.timing["events_processed"]``)
        self.events_executed = 0

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        event = _Event(time, fn, args)
        self._seq += 1
        self._sched.push((time, self._seq, event))
        return event

    def schedule_at(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self.now:.6f}"
            )
        event = _Event(time, fn, args)
        self._seq += 1
        self._sched.push((time, self._seq, event))
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        return self._sched.peek_time()

    def step(self) -> bool:
        """Run the single next event. Returns False if the queue was empty."""
        event = self._sched.pop_before(inf)
        if event is None:
            return False
        self.now = event.time
        self.events_executed += 1
        event.fn(*event.args)
        return True

    def run(self, until: float) -> None:
        """Run events in timestamp order until the clock reaches ``until``.

        The clock is left exactly at ``until`` even if the queue drains
        early, so back-to-back ``run`` calls advance monotonically.
        """
        if until < self.now:
            raise SimulationError(f"cannot run backwards to {until}")
        self._running = True
        pop_before = self._sched.pop_before
        try:
            while True:
                event = pop_before(until)
                if event is None:
                    break
                self.now = event.time
                self.events_executed += 1
                event.fn(*event.args)
        finally:
            self._running = False
        self.now = max(self.now, until)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the event queue completely (with a runaway guard)."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    "run_until_idle exceeded max_events; runaway loop?"
                )

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._sched.entries() if not e[2].cancelled)


class Timer:
    """A restartable one-shot or periodic timer bound to a :class:`Simulator`.

    The callback fires with no arguments. Periodic timers may apply a
    uniform jitter fraction to de-synchronize simulated nodes, matching the
    behaviour of real motes whose clocks drift.
    """

    __slots__ = (
        "_sim",
        "_callback",
        "_interval",
        "_periodic",
        "_jitter",
        "_handle",
    )

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], None],
        interval: Optional[float] = None,
        periodic: bool = False,
        jitter: float = 0.0,
    ):
        if periodic and interval is None:
            raise SimulationError("periodic timer needs an interval")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError(f"jitter must be in [0, 1), got {jitter}")
        self._sim = sim
        self._callback = callback
        self._interval = interval
        self._periodic = periodic
        self._jitter = jitter
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def _next_delay(self, base: float) -> float:
        if self._jitter <= 0.0:
            return base
        spread = base * self._jitter
        return base + self._sim.rng.uniform(-spread, spread)

    def start(self, delay: Optional[float] = None) -> None:
        """(Re)start the timer; ``delay`` overrides the configured interval
        for the first firing only.

        An explicit ``delay`` fires exactly when asked: callers that pass
        one are deliberately staggering startup themselves, so jitter
        applies only to interval-derived delays.
        """
        self.stop()
        if delay is not None:
            first = delay
        elif self._interval is not None:
            first = self._next_delay(self._interval)
        else:
            raise SimulationError("timer started without a delay or interval")
        self._handle = self._sim.schedule(max(0.0, first), self._fire)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        if self._periodic and self._interval is not None:
            self._handle = self._sim.schedule(
                max(0.0, self._next_delay(self._interval)), self._fire
            )
        self._callback()
