"""Message-count accounting: the paper's cost metric.

Section 6 of the paper: "our cost metric is the total number of messages the
nodes collectively send", broken down into data, summary, mapping, and
query/reply messages (Figure 3). :class:`MessageCensus` records every radio
transmission by node and :class:`~repro.sim.packets.FrameKind`, including
retransmissions (a retransmission is a message a node sends).

Routing-tree beacons and link-layer ACKs exist identically in every storage
scheme and are not part of the paper's reported counts; they are tracked in
separate buckets so they can still be inspected.

:class:`DeliveryTracker` records end-to-end outcomes (was a produced reading
eventually stored? at its mapped owner or at the root? did a query reply
make it back?) used by the loss-rate experiment (E6).

:class:`TrialMetrics` is the structured per-trial telemetry record — every
counter the census and energy meter accumulate, folded into one JSON-ready
dataclass that rides on
:class:`~repro.experiments.runner.ExperimentResult` and feeds the
per-campaign JSON export.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.sim.packets import COST_KINDS, Frame, FrameKind


class MessageCensus:
    """Per-node, per-kind transmission and reception counters."""

    def __init__(self) -> None:
        self.sent: Dict[int, Dict[FrameKind, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self.received: Dict[int, Dict[FrameKind, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self.sent_bits: Dict[int, int] = defaultdict(int)
        self.received_bits: Dict[int, int] = defaultdict(int)

    # -- recording hooks (wired to the radio) ---------------------------
    def record_transmit(self, node: int, frame: Frame) -> None:
        self.sent[node][frame.kind] += 1
        self.sent_bits[node] += frame.size_bits()

    def record_delivery(self, sender: int, receiver: int, frame: Frame) -> None:
        self.received[receiver][frame.kind] += 1
        self.received_bits[receiver] += frame.size_bits()

    def record_deliveries(
        self, receivers: Iterable[int], kind: FrameKind, bits: int
    ) -> None:
        """Batch form of :meth:`record_delivery`: one transmission's whole
        reception fan-out (the per-delivery hook tax dominated trials)."""
        received = self.received
        received_bits = self.received_bits
        for receiver in receivers:
            received[receiver][kind] += 1
            received_bits[receiver] += bits

    # -- aggregate views -------------------------------------------------
    def total_sent(self, kinds: Optional[Iterable[FrameKind]] = None) -> int:
        """Total messages sent network-wide, default = the paper's metric."""
        wanted = tuple(kinds) if kinds is not None else COST_KINDS
        return sum(
            count
            for per_node in self.sent.values()
            for kind, count in per_node.items()
            if kind in wanted
        )

    def sent_by_kind(self) -> Dict[FrameKind, int]:
        out: Dict[FrameKind, int] = defaultdict(int)
        for per_node in self.sent.values():
            for kind, count in per_node.items():
                out[kind] += count
        return dict(out)

    def received_by_kind(self) -> Dict[FrameKind, int]:
        out: Dict[FrameKind, int] = defaultdict(int)
        for per_node in self.received.values():
            for kind, count in per_node.items():
                out[kind] += count
        return dict(out)

    def node_sent(self, node: int, kinds: Optional[Iterable[FrameKind]] = None) -> int:
        wanted = tuple(kinds) if kinds is not None else COST_KINDS
        return sum(c for k, c in self.sent[node].items() if k in wanted)

    def node_received(
        self, node: int, kinds: Optional[Iterable[FrameKind]] = None
    ) -> int:
        wanted = tuple(kinds) if kinds is not None else COST_KINDS
        return sum(c for k, c in self.received[node].items() if k in wanted)

    def breakdown(self) -> Dict[str, int]:
        """The paper's Figure 3 categories (query and reply merged)."""
        by_kind = self.sent_by_kind()
        return {
            "data": by_kind.get(FrameKind.DATA, 0),
            "summary": by_kind.get(FrameKind.SUMMARY, 0),
            "mapping": by_kind.get(FrameKind.MAPPING, 0),
            "query/reply": by_kind.get(FrameKind.QUERY, 0)
            + by_kind.get(FrameKind.REPLY, 0),
        }

    def skew(self) -> float:
        """Max over nodes of sent+received, divided by the mean (load skew)."""
        nodes = set(self.sent) | set(self.received)
        if not nodes:
            return 0.0
        loads = [self.node_sent(n) + self.node_received(n) for n in nodes]
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 0.0

    def node_loads(self) -> Dict[int, int]:
        """Per-node sent+received message load (the paper's cost kinds)."""
        nodes = set(self.sent) | set(self.received)
        return {n: self.node_sent(n) + self.node_received(n) for n in sorted(nodes)}


@dataclass
class TrialMetrics:
    """Structured per-trial telemetry: the lossless breakdown record.

    Everything the census, energy meter, and cost model accumulate during
    one simulated trial, in JSON-ready form (string keys throughout, so a
    ``to_dict``/``from_dict`` round trip through ``json`` is the identity).
    Carried on :class:`~repro.experiments.runner.ExperimentResult` and
    exported per campaign; ``None`` for analytical evaluations, which have
    no simulator to meter.
    """

    #: Transmissions by :class:`~repro.sim.packets.FrameKind` value — all
    #: kinds, including the beacon/ack buckets outside the paper's metric.
    messages_sent: Dict[str, int] = field(default_factory=dict)
    #: Deliveries by kind (a broadcast may be received more than once).
    messages_received: Dict[str, int] = field(default_factory=dict)
    #: Network-wide energy in joules by component:
    #: radio_tx / radio_rx / flash_write / flash_read.
    energy_j: Dict[str, float] = field(default_factory=dict)
    #: The root's own energy split, same component keys (E7).
    root_energy_j: Dict[str, float] = field(default_factory=dict)
    #: Per-node sent+received cost-kind messages, keyed by node id (as a
    #: string, for JSON losslessness). The root's entry is the paper's
    #: "load on the root" series.
    node_load: Dict[str, int] = field(default_factory=dict)
    #: max/mean of node_load — the E7 skew statistic.
    load_skew: float = 0.0
    #: Basestation planner counters (cost-model builds, Dijkstra runs,
    #: point queries) — the index-construction side of the cost story.
    planner: Dict[str, int] = field(default_factory=dict)
    #: Data-survival breakdown under node churn (E14): produced/stored
    #: reading counts, how many ended up on nodes that later died
    #: (orphaned flash), how many remain retrievable, and the
    #: retrieval-completeness ratio. Empty when the trial had no tracker.
    survival: Dict[str, float] = field(default_factory=dict)
    #: Per-attribute counters (E15), keyed ``"a<attr>"``: readings
    #: produced/stored, queries issued, and the oracle recall of that
    #: attribute's query stream. Always carries at least ``"a0"`` for
    #: simulated trials, so single-attribute runs are the k=1 row of the
    #: same table.
    attributes: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Ground-truth query-oracle scorecard for the whole trial: mean/min
    #: recall against the exact replayed answer sets, and the count of
    #: precision violations (returned readings the oracle says were never
    #: produced — always 0 unless the pipeline corrupts data).
    oracle: Dict[str, float] = field(default_factory=dict)
    #: Serving-layer scorecard for query-service trials (E16): offered /
    #: served / shed request counts, cache hit rate, latency and
    #: staleness percentiles — all simulated-time quantities, so fully
    #: deterministic in the spec. Empty for plain batch trials.
    service: Dict[str, float] = field(default_factory=dict)
    #: Per-shard serving breakdown, shard name (``"shard0"``...) ->
    #: aggregate scorecard (requests offered/served/shed, hit rate,
    #: queue depth, worst-tenant p95). Batch trials run in-process, so
    #: they carry the single synthetic ``shard0``; multi-worker serving
    #: runs report one entry per worker process. Empty for trials
    #: without serving load.
    service_shards: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Simulated seconds this trial covered (stabilization + measured +
    #: drain).
    sim_time_s: float = 0.0
    #: Wall-clock seconds the simulation took. The one field that is NOT
    #: deterministic in the spec; campaign determinism checks must ignore
    #: it (see ``deterministic_dict`` on ExperimentResult).
    wall_clock_s: float = 0.0
    #: Simulator throughput record: ``events_processed`` (deterministic —
    #: the kernel's executed-event count) and ``events_per_sec``
    #: (wall-clock derived, excluded from determinism checks alongside
    #: ``wall_clock_s``).
    timing: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {
            "messages_sent": dict(self.messages_sent),
            "messages_received": dict(self.messages_received),
            "energy_j": dict(self.energy_j),
            "root_energy_j": dict(self.root_energy_j),
            "node_load": dict(self.node_load),
            "load_skew": self.load_skew,
            "planner": dict(self.planner),
            "survival": dict(self.survival),
            "attributes": {k: dict(v) for k, v in self.attributes.items()},
            "oracle": dict(self.oracle),
            "service": dict(self.service),
            "service_shards": {
                k: dict(v) for k, v in self.service_shards.items()
            },
            "sim_time_s": self.sim_time_s,
            "wall_clock_s": self.wall_clock_s,
            "timing": dict(self.timing),
        }

    @classmethod
    def from_dict(
        cls, data: Optional[Mapping[str, object]]
    ) -> Optional["TrialMetrics"]:
        if data is None:
            return None
        return cls(**{f: data[f] for f in cls.__dataclass_fields__ if f in data})

    @classmethod
    def collect(
        cls,
        census: "MessageCensus",
        energy,
        root: int,
        planner: Optional[Dict[str, int]] = None,
        sim_time_s: float = 0.0,
        wall_clock_s: float = 0.0,
        tracker: Optional["DeliveryTracker"] = None,
        attributes: Optional[Dict[str, Dict[str, float]]] = None,
        oracle: Optional[Dict[str, float]] = None,
        service: Optional[Dict[str, float]] = None,
        service_shards: Optional[Dict[str, Dict[str, float]]] = None,
        timing: Optional[Dict[str, float]] = None,
    ) -> "TrialMetrics":
        """Fold one trial's accounting objects into a metrics record.

        ``energy`` is the network's :class:`~repro.sim.energy.EnergyMeter`
        (typed loosely to keep this module free of an energy import cycle).
        ``tracker`` supplies the data-survival breakdown, evaluated at the
        end of the trial (``sim_time_s``). ``attributes``/``oracle`` carry
        the per-attribute counters and the query-oracle scorecard
        (:mod:`repro.experiments.oracle`).
        """
        root_e = energy.node_energy(root)
        return cls(
            messages_sent={
                str(kind): count
                for kind, count in sorted(
                    census.sent_by_kind().items(), key=lambda kv: kv[0].value
                )
            },
            messages_received={
                str(kind): count
                for kind, count in sorted(
                    census.received_by_kind().items(), key=lambda kv: kv[0].value
                )
            },
            energy_j=energy.component_totals_j(),
            root_energy_j={
                "radio_tx": root_e.radio_tx_nj / 1e9,
                "radio_rx": root_e.radio_rx_nj / 1e9,
                "flash_write": root_e.flash_write_nj / 1e9,
                "flash_read": root_e.flash_read_nj / 1e9,
            },
            node_load={str(n): load for n, load in census.node_loads().items()},
            load_skew=census.skew(),
            planner=dict(planner or {}),
            survival=(
                tracker.survival_breakdown(sim_time_s) if tracker is not None else {}
            ),
            attributes=dict(attributes or {}),
            oracle=dict(oracle or {}),
            service=dict(service or {}),
            service_shards={
                k: dict(v) for k, v in (service_shards or {}).items()
            },
            sim_time_s=sim_time_s,
            wall_clock_s=wall_clock_s,
            timing=dict(timing or {}),
        )


@dataclass
class ReadingOutcome:
    """End-to-end fate of one produced sensor reading."""

    producer: int
    value: int
    produced_at: float
    intended_owner: Optional[int] = None
    stored_at: Optional[int] = None
    stored_time: Optional[float] = None
    #: attribute the reading belongs to (0 = the legacy single attribute).
    attr: int = 0

    @property
    def stored(self) -> bool:
        return self.stored_at is not None

    @property
    def stored_at_owner(self) -> bool:
        return self.stored and self.stored_at == self.intended_owner


@dataclass
class QueryOutcome:
    """End-to-end fate of one issued query."""

    query_id: int
    issued_at: float
    nodes_targeted: int = 0
    replies_received: int = 0
    tuples_expected: int = 0
    tuples_returned: int = 0
    answered_from_summaries: bool = False


class DeliveryTracker:
    """End-to-end success accounting for readings and queries (exp E6)."""

    def __init__(self) -> None:
        self.readings: List[ReadingOutcome] = []
        #: (producer, attr, value, produced_at) -> outcome awaiting storage.
        self._open: Dict[Tuple[int, int, int, float], ReadingOutcome] = {}
        self.queries: Dict[int, QueryOutcome] = {}
        #: closed downtime intervals per node: (failed_at, revived_at).
        self._downtime: Dict[int, List[Tuple[float, float]]] = {}
        #: nodes currently dead -> time of death.
        self._down_since: Dict[int, float] = {}

    # -- node lifecycle (failure injection) ------------------------------
    def node_failed(self, node: int, time: float) -> None:
        self._down_since.setdefault(node, time)

    def node_revived(self, node: int, time: float) -> None:
        started = self._down_since.pop(node, None)
        if started is not None:
            self._downtime.setdefault(node, []).append((started, time))

    def node_down(self, node: int, time: float) -> bool:
        """True when ``node`` is dark at ``time`` — its flash contents are
        orphaned (unreachable) for exactly these intervals."""
        since = self._down_since.get(node)
        if since is not None and time >= since:
            return True
        return any(lo <= time < hi for lo, hi in self._downtime.get(node, ()))

    def nodes_ever_failed(self) -> Set[int]:
        return set(self._down_since) | set(self._downtime)

    # -- readings --------------------------------------------------------
    def reading_produced(
        self,
        producer: int,
        value: int,
        time: float,
        intended_owner: Optional[int],
        attr: int = 0,
    ) -> ReadingOutcome:
        outcome = ReadingOutcome(
            producer=producer,
            value=value,
            produced_at=time,
            intended_owner=intended_owner,
            attr=attr,
        )
        self.readings.append(outcome)
        self._open[(producer, attr, value, time)] = outcome
        return outcome

    def reading_stored(
        self,
        producer: int,
        value: int,
        produced_at: float,
        stored_at: int,
        time: float,
        attr: int = 0,
    ) -> None:
        outcome = self._open.pop((producer, attr, value, produced_at), None)
        if outcome is not None:
            outcome.stored_at = stored_at
            outcome.stored_time = time

    def storage_success_rate(self) -> float:
        """Fraction of produced readings that were stored anywhere."""
        if not self.readings:
            return 0.0
        return sum(1 for r in self.readings if r.stored) / len(self.readings)

    def owner_hit_rate(self) -> float:
        """Of stored readings with a known intended owner, the fraction
        stored exactly there (paper: ~85%, rest fall back to the root)."""
        relevant = [
            r for r in self.readings if r.stored and r.intended_owner is not None
        ]
        if not relevant:
            return 0.0
        return sum(1 for r in relevant if r.stored_at_owner) / len(relevant)

    # -- data survival under churn ---------------------------------------
    def reading_retrievable(self, outcome: ReadingOutcome, time: float) -> bool:
        """A reading is retrievable at ``time`` iff it was stored and its
        storage node is not dark then. A killed node's flash contents are
        orphaned for as long as it stays down; they come back only if the
        node revives (flash is non-volatile)."""
        return outcome.stored and not self.node_down(outcome.stored_at, time)

    def retrieval_completeness(self, time: float) -> float:
        """Fraction of produced readings retrievable at ``time``."""
        if not self.readings:
            return 0.0
        retrievable = sum(1 for r in self.readings if self.reading_retrievable(r, time))
        return retrievable / len(self.readings)

    def survival_breakdown(self, time: float) -> Dict[str, float]:
        """The E14 data-survival record: what was produced, what got
        stored, what sits orphaned on dead flash, what a query issued at
        ``time`` could still reach."""
        produced = len(self.readings)
        stored = sum(1 for r in self.readings if r.stored)
        retrievable = sum(
            1 for r in self.readings if self.reading_retrievable(r, time)
        )
        return {
            "readings_produced": float(produced),
            "readings_stored": float(stored),
            "stored_on_dead_node": float(stored - retrievable),
            "retrievable": float(retrievable),
            "completeness": retrievable / produced if produced else 0.0,
            "nodes_failed": float(len(self.nodes_ever_failed())),
            "nodes_down_at_end": float(
                sum(1 for n in self.nodes_ever_failed() if self.node_down(n, time))
            ),
        }

    # -- queries ---------------------------------------------------------
    def query_issued(
        self, query_id: int, time: float, nodes_targeted: int
    ) -> QueryOutcome:
        outcome = QueryOutcome(
            query_id=query_id, issued_at=time, nodes_targeted=nodes_targeted
        )
        self.queries[query_id] = outcome
        return outcome

    def query_reply(self, query_id: int, tuples_returned: int) -> None:
        outcome = self.queries.get(query_id)
        if outcome is not None:
            outcome.replies_received += 1
            outcome.tuples_returned += tuples_returned

    def query_reply_rate(self) -> float:
        """Fraction of (query, node) reply obligations that came back."""
        targeted = sum(q.nodes_targeted for q in self.queries.values())
        if targeted == 0:
            return 0.0
        received = sum(
            min(q.replies_received, q.nodes_targeted) for q in self.queries.values()
        )
        return received / targeted
