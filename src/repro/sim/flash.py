"""Flash storage model: circular data buffer and recent-readings ring.

The paper distinguishes two on-mote buffers (Sections 5.2 and 5.4):

* a **recent-readings buffer** (size 30) holding the node's *own* latest
  samples, from which summary histograms are built;
* a separate **circular data buffer** in flash holding the readings the node
  *owns* under the storage index (its own and other nodes'), which queries
  scan linearly.

Capacity follows Section 5.5: "With a megabyte of Flash memory, a Scoop node
can store about 670,000 12-bit sensor readings." When the circular buffer
wraps, the oldest readings are overwritten — exactly the behaviour that
bounds how far back historical queries can reach.

Writes and reads are billed to an optional :class:`~repro.sim.energy.EnergyMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.sim.energy import EnergyMeter

#: Bits per stored reading: 12-bit value plus timestamp/origin bookkeeping.
#: 1 MB / 670,000 readings ~= 12.5 bits of payload; we bill the 12-bit value
#: per the paper's sizing and keep metadata in the same figure.
READING_BITS = 12


@dataclass(frozen=True)
class StoredReading:
    """One tuple in a node's data buffer."""

    origin: int
    value: int
    timestamp: float
    #: attribute the value belongs to (0 = the legacy single attribute).
    attr: int = 0


class RecentReadings:
    """Fixed-size ring of the node's own most recent samples (paper: 30)."""

    def __init__(self, capacity: int = 30):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: List[Tuple[float, int]] = []
        self._next = 0

    def add(self, timestamp: float, value: int) -> None:
        if len(self._ring) < self.capacity:
            self._ring.append((timestamp, value))
        else:
            self._ring[self._next] = (timestamp, value)
        self._next = (self._next + 1) % self.capacity

    def values(self) -> List[int]:
        return [v for _, v in self._ring]

    def __len__(self) -> int:
        return len(self._ring)


class Flash:
    """A mote's flash chip holding the circular data buffer.

    Parameters
    ----------
    capacity_readings:
        Maximum number of readings before the circular buffer wraps.
        Defaults to the paper's 670,000-per-MB figure for a 1 MB chip.
    meter / node_id:
        Optional energy accounting.
    """

    DEFAULT_CAPACITY = 670_000

    def __init__(
        self,
        capacity_readings: int = DEFAULT_CAPACITY,
        meter: Optional[EnergyMeter] = None,
        node_id: int = -1,
    ):
        if capacity_readings <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_readings
        self._buffer: List[StoredReading] = []
        self._next = 0
        self._meter = meter
        self._node_id = node_id
        self.writes = 0
        self.overwrites = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def store(self, reading: StoredReading) -> None:
        """Append a reading, overwriting the oldest once full."""
        if len(self._buffer) < self.capacity:
            self._buffer.append(reading)
        else:
            self._buffer[self._next] = reading
            self.overwrites += 1
        self._next = (self._next + 1) % self.capacity
        self.writes += 1
        if self._meter is not None:
            self._meter.flash_write(self._node_id, READING_BITS)

    def scan(
        self,
        time_range: Optional[Tuple[float, float]] = None,
        value_range: Optional[Tuple[int, int]] = None,
        predicate: Optional[Callable[[StoredReading], bool]] = None,
        attr: Optional[int] = None,
    ) -> List[StoredReading]:
        """Linear scan for matching tuples (paper: "linearly scans its data
        buffer for matching tuples"). Bills one flash read per scanned tuple.
        ``attr`` restricts matches to one attribute's readings (None = any).
        """
        if self._meter is not None and self._buffer:
            self._meter.flash_read(self._node_id, len(self._buffer) * READING_BITS)
        out = []
        for reading in self._buffer:
            if attr is not None and reading.attr != attr:
                continue
            if time_range is not None and not (
                time_range[0] <= reading.timestamp <= time_range[1]
            ):
                continue
            if value_range is not None and not (
                value_range[0] <= reading.value <= value_range[1]
            ):
                continue
            if predicate is not None and not predicate(reading):
                continue
            out.append(reading)
        return out

    def all_readings(self) -> List[StoredReading]:
        """All stored readings (no energy billing; diagnostic use)."""
        return list(self._buffer)
