"""Batched uniform random stream for the radio hot path.

The radio consumes randomness at very high rate (every transmission draws
per-receiver loss outcomes plus CSMA backoffs). Drawing those one at a time
from :class:`random.Random` dominated profile time, so the radio uses this
dedicated stream, which fills fixed-size blocks from numpy's PCG64 and
serves draws out of the block.

Determinism contract (the "stream-refill discipline")
-----------------------------------------------------

The stream is one flat sequence ``u0, u1, u2, ...`` of uniforms in
``[0, 1)``, fixed entirely by the seed. Blocks are an implementation
detail: ``take(k)`` returns exactly the next ``k`` elements of that
sequence, and is therefore draw-for-draw identical to ``k`` successive
:meth:`random` calls. Consumers keep serial ≡ parallel and vectorized ≡
scalar determinism by obeying one rule: *the number and order of draws
consumed must be a pure function of simulation state that both code paths
share* — e.g. the radio draws exactly ``len(audible_neighbors(src))`` loss
uniforms per transmission, in ascending receiver id order, regardless of
whether a collision already doomed the frame.

When numpy is unavailable the same interface is served by
:class:`random.Random` (``take`` returns a list); the sequence differs from
the numpy one, but every discipline above still holds, so results remain
deterministic per (seed, backend).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

try:  # gate, don't require: the container may lack numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Mixed into the seed so the radio stream never aliases ``Simulator.rng``
#: (which is seeded with the bare trial seed).
_STREAM_DOMAIN = 0x5C00B

_BLOCK = 4096


class BatchedUniformStream:
    """Uniform [0, 1) draws served from pre-generated blocks."""

    __slots__ = ("seed", "_gen", "_block", "_pos", "_size")

    def __init__(self, seed: int, block_size: int = _BLOCK):
        self.seed = seed
        self._size = block_size
        self._pos = block_size  # empty: first draw triggers a refill
        self._block: Optional[Sequence[float]] = None
        if _np is not None:
            entropy = _np.random.SeedSequence(
                [seed & 0xFFFFFFFFFFFFFFFF, _STREAM_DOMAIN]
            )
            self._gen = _np.random.Generator(_np.random.PCG64(entropy))
        else:  # pragma: no cover - exercised only without numpy
            self._gen = random.Random((seed, _STREAM_DOMAIN))

    def _refill(self) -> None:
        if _np is not None:
            self._block = self._gen.random(self._size)
        else:  # pragma: no cover
            rand = self._gen.random
            self._block = [rand() for _ in range(self._size)]
        self._pos = 0

    def random(self) -> float:
        """The next uniform in the sequence, as a Python float."""
        if self._pos >= self._size:
            self._refill()
        value = self._block[self._pos]
        self._pos += 1
        return float(value)

    def uniform(self, lo: float, hi: float) -> float:
        """One draw scaled to ``[lo, hi)``."""
        return lo + (hi - lo) * self.random()

    def take(self, k: int):
        """The next ``k`` uniforms as an array (numpy when available).

        Identical draws to ``k`` successive :meth:`random` calls — this is
        what lets the vectorized and scalar radio paths share trajectories.
        """
        if k <= 0:
            return _np.empty(0) if _np is not None else []
        if _np is not None:
            out = _np.empty(k)
            filled = 0
            while filled < k:
                if self._pos >= self._size:
                    self._refill()
                n = min(self._size - self._pos, k - filled)
                out[filled : filled + n] = self._block[self._pos : self._pos + n]
                self._pos += n
                filled += n
            return out
        out_list: List[float] = []  # pragma: no cover
        while len(out_list) < k:
            out_list.append(self.random())
        return out_list


def numpy_available() -> bool:
    """Whether the vectorized (numpy) backend is usable."""
    return _np is not None
