"""The Deployment facade is the batch runner, byte for byte.

The refactor contract of the serving layer: ``run_experiment`` became a
thin driver over :class:`repro.service.Deployment`, and the facade must
reproduce the pre-facade monolith's trial trajectories exactly —
``_legacy_run`` below *is* that monolith (inlined verbatim from the
pre-facade runner, built from the public builders), and the differential
test asserts full ``deterministic_dict`` identity on the E13 smoke spec.

Also covers the facade's incremental-driving guarantee (many small
``advance`` steps ≡ one big run) and the E16 load-driver's determinism
(service metrics are a pure function of the spec).
"""

import dataclasses

from repro.experiments.runner import (
    _collect,
    build_failure_schedule,
    build_motes,
    build_topology,
    build_workload,
    run_experiment,
)
from repro.experiments.scenarios import query_service, scale_spec, scaling_xl
from repro.service import Deployment
from repro.sim.failure import FailureInjector
from repro.sim.network import Network
from repro.workloads.queries import QueryGenerator

SMOKE_SCALE = 0.15


def e13_smoke_spec(seed: int):
    series = scaling_xl(seed=seed, sizes=(64,))
    spec = series[0][1][0]  # (n, [scoop, local]) -> the scoop trial
    unscaled = dataclasses.replace(
        spec,
        scoop=dataclasses.replace(spec.scoop, duration=2400.0, stabilization=600.0),
    )
    return scale_spec(unscaled, SMOKE_SCALE)


def e16_smoke_spec(seed: int, qps: float = 0.6):
    series = query_service(seed=seed, loads=(qps,))
    return series[0][1][0]  # (qps, [scoop, local]) -> the scoop trial


def _legacy_run(spec):
    """The pre-facade ``run_experiment`` body, verbatim: every simulator
    call in the exact order the monolith made them."""
    config = spec.scoop
    topo = build_topology(spec)
    if topo.n != config.n_nodes:
        raise ValueError(
            f"topology has {topo.n} nodes but config expects {config.n_nodes}"
        )
    net = Network(topo, seed=spec.seed)
    workload = build_workload(spec, topo)
    base, nodes = build_motes(spec, net, workload)

    schedule = build_failure_schedule(spec)
    if schedule is not None:
        FailureInjector(net, schedule).arm()

    net.boot_all(within=config.beacon_interval)
    net.run(config.stabilization)

    for node in nodes:
        node.start_sampling()
    base.start_scoop()

    generator = QueryGenerator(
        spec.query_plan,
        config.domain,
        list(config.sensor_ids),
        rng=net.sim.rng,
        attribute_domains=[config.domain_of(a) for a in config.attribute_ids],
    )
    queries_issued = 0

    def query_tick() -> None:
        nonlocal queries_issued
        if net.sim.now >= config.stabilization + config.duration:
            return
        base.issue_query(generator.next_query(net.sim.now))
        queries_issued += 1
        net.sim.schedule(config.query_interval, query_tick)

    net.sim.schedule(config.query_interval, query_tick)
    net.run(config.stabilization + config.duration)

    for node in nodes:
        if node.booted:
            node.stop_sampling()
    net.run(net.sim.now + config.query_reply_window + 5.0)

    return _collect(spec, net, base, queries_issued)


class TestFacadeIdentity:
    def test_facade_trial_bit_identical_to_legacy_runner(self):
        spec = e13_smoke_spec(seed=1)
        legacy = _legacy_run(spec).deterministic_dict()
        facade = run_experiment(spec).deterministic_dict()
        assert facade == legacy

    def test_chunked_advance_identical_to_single_run(self):
        spec = e13_smoke_spec(seed=2)
        reference = run_experiment(spec).deterministic_dict()

        dep = Deployment.create(spec)
        dep.boot()
        dep.stabilize()
        dep.start_query_stream()
        config = spec.scoop
        end = config.stabilization + config.duration
        # Drive the measured phase in ragged little steps — a resident
        # deployment advanced on demand must tick every timer in the same
        # order as one big run.
        for step in (7.0, 31.0, 3.5, 97.0, 13.0):
            if dep.now + step < end:
                dep.advance(step)
        dep.run_until(end)
        dep.drain()
        assert dep.collect().deterministic_dict() == reference


class TestLifecycleGuards:
    def test_lifecycle_misuse_raises_with_phase_message(self):
        spec = e16_smoke_spec(seed=1)
        dep = Deployment.create(spec)
        assert dep.phase == "created"
        for doing in (dep.stabilize, dep.drain, dep.start_query_stream):
            try:
                doing()
                raise AssertionError("expected RuntimeError")
            except RuntimeError as exc:
                assert "'created'" in str(exc)
                assert "lifecycle" in str(exc)
        try:
            dep.query()
            raise AssertionError("expected RuntimeError")
        except RuntimeError as exc:
            assert "query()" in str(exc)

    def test_create_rejects_overwide_query_plan(self):
        spec = e13_smoke_spec(seed=1)
        bad = dataclasses.replace(
            spec, query_plan=dataclasses.replace(spec.query_plan, n_attributes=3)
        )
        try:
            Deployment.create(bad)
            raise AssertionError("expected ValueError")
        except ValueError as exc:
            assert "query plan names 3 attributes" in str(exc)


class TestExternalQueries:
    def test_external_query_returns_closed_structured_result(self):
        spec = e16_smoke_spec(seed=3)
        dep = Deployment.create(spec)
        dep.boot()
        dep.stabilize()
        dep.advance(60.0)
        result = dep.query(attr=0, lo=10, hi=40)
        assert result.closed
        assert result.query.value_range == (10, 40)
        assert all(10 <= value <= 40 for value, _ts, _origin in result.readings)
        assert dep.queries_issued == 1

    def test_out_of_domain_query_errors(self):
        spec = e16_smoke_spec(seed=3)
        dep = Deployment.create(spec)
        dep.boot()
        dep.stabilize()
        try:
            dep.query(attr=0, lo=-5, hi=10)
            raise AssertionError("expected ValueError")
        except ValueError as exc:
            assert "outside attribute 0's domain" in str(exc)
        try:
            dep.query(attr=7)
            raise AssertionError("expected ValueError")
        except ValueError as exc:
            assert "attribute id 7" in str(exc)

    def test_force_remap_bumps_index_epoch(self):
        spec = e16_smoke_spec(seed=4)
        dep = Deployment.create(spec)
        dep.boot()
        dep.stabilize()
        # Let enough statistics accumulate that a remap accepts an index.
        dep.advance(2 * spec.scoop.summary_interval)
        before = dep.index_epoch
        dep.force_remap()
        assert dep.index_epoch > before


class TestServiceTrialDeterminism:
    def test_e16_trial_deterministic_and_exports_service_metrics(self):
        spec = e16_smoke_spec(seed=1, qps=0.6)
        first = run_experiment(spec)
        second = run_experiment(spec)
        assert first.deterministic_dict() == second.deterministic_dict()
        service = first.metrics.service
        assert service["requests_offered"] > 0
        assert service["requests_served"] > 0
        assert service["latency_p95_s"] >= service["latency_p50_s"] > 0
        assert service["cache_hit_rate"] > 0
        # The serving layer never fabricates readings: the oracle's
        # precision check stays clean under external query traffic.
        assert first.metrics.oracle["precision_violations"] == 0

    def test_offered_load_does_not_touch_simulation_rng(self):
        # Arrival traces come from a dedicated RNG stream; two loads give
        # different serving scorecards but both runs stay deterministic.
        low = run_experiment(e16_smoke_spec(seed=2, qps=0.05))
        high = run_experiment(e16_smoke_spec(seed=2, qps=1.5))
        assert (
            high.metrics.service["requests_offered"]
            > low.metrics.service["requests_offered"]
        )
