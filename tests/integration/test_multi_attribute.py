"""E15 integration tests: multi-attribute indexing, end to end.

Covers the ISSUE-5 differential harness:

* (a) a k=1 run with an *explicit* one-entry attribute registry is
  metric-identical to the legacy implicit single-attribute path;
* (b) multi-attribute campaigns stay bit-identical between ``jobs=1``
  and ``jobs=4``;
* (c) a reading is never indexed under the wrong attribute's storage
  index — every remotely stored reading's location is justified by its
  own attribute's index history;

plus the ground-truth oracle over a full multi-attribute SCOOP run.
"""

import pytest

from repro.core.config import AttributeSpec, ScoopConfig, ValueDomain
from repro.core.query import Query
from repro.core.storage_index import STORE_LOCAL
from repro.experiments.cache import ResultCache
from repro.experiments.campaign import Campaign, run_campaign
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.sim.topology import perfect
from repro.workloads.multi import MultiAttributeWorkload
from tests.conftest import build_scoop_network
from tests.oracle import QueryOracle

DOMAIN = ValueDomain(0, 40)
ATTRS = (
    AttributeSpec("temperature", DOMAIN),
    AttributeSpec("light", ValueDomain(0, 60)),
)

FAST = dict(
    sample_interval=5.0,
    query_interval=10.0,
    summary_interval=20.0,
    remap_interval=40.0,
    stabilization=60.0,
    duration=160.0,
    beacon_interval=5.0,
    query_reply_window=8.0,
    batch_flush_timeout=30.0,
)


def two_attr_config(n_nodes=8, **overrides):
    kw = dict(FAST, n_nodes=n_nodes, domain=DOMAIN, attributes=ATTRS)
    kw.update(overrides)
    return ScoopConfig(**kw)


def run_two_attr_scoop(seed=1, n_nodes=8, query_every=10.0):
    """A full SCOOP loop over two attributes on a clean 8-node channel,
    issuing alternating per-attribute queries; returns everything the
    assertions need."""
    config = two_attr_config(n_nodes=n_nodes)
    workload = MultiAttributeWorkload(
        "gaussian", config.attribute_specs, n_nodes, seed=seed
    )
    net, base, nodes = build_scoop_network(
        perfect(n_nodes),
        config=config,
        seed=seed,
        multi_source=workload.sample_attr,
    )
    net.boot_all(within=config.beacon_interval)
    net.run(config.stabilization)
    for node in nodes:
        node.start_sampling()
    base.start_scoop()
    results = []

    def tick():
        if net.sim.now >= config.stabilization + config.duration:
            return
        attr = len(results) % config.n_attributes
        domain = config.domain_of(attr)
        width = max(2, domain.size // 8)
        center = (len(results) * 7) % (domain.size - width)
        results.append(
            base.issue_query(
                Query(
                    time_range=(max(0.0, net.sim.now - 120.0), net.sim.now),
                    value_range=(domain.lo + center, domain.lo + center + width),
                    attr=attr,
                    domain=domain,
                )
            )
        )
        net.sim.schedule(query_every, tick)

    net.sim.schedule(query_every, tick)
    net.run(config.stabilization + config.duration)
    for node in nodes:
        node.stop_sampling()
    net.run(net.sim.now + config.query_reply_window + 5.0)
    return net, base, nodes, results, config


class TestMultiAttributeLoop:
    @pytest.fixture(scope="class")
    def loop(self):
        return run_two_attr_scoop()

    def test_every_attribute_gets_an_index_everywhere(self, loop):
        net, base, nodes, results, config = loop
        for attr in config.attribute_ids:
            assert base.index_for(attr) is not None
            assert base.index_for(attr).attr == attr
            for node in nodes:
                index = node.index_for(attr)
                assert index is not None, (node.node_id, attr)
                assert index.attr == attr
                assert index.domain == config.domain_of(attr)

    def test_index_ids_unique_across_attributes(self, loop):
        """Shared epoch, per-attribute index ids: every disseminated
        index draws its sid from one monotonic counter."""
        net, base, nodes, results, config = loop
        sids = [
            index.sid
            for attr in config.attribute_ids
            for _t, index in base.index_histories[attr]
        ]
        assert len(sids) == len(set(sids))

    def test_readings_never_under_wrong_attribute_index(self, loop):
        """Differential check (c): a reading stored away from its
        producer must sit at a node its OWN attribute's index history
        justifies — never at one only another attribute's index maps."""
        net, base, nodes, results, config = loop
        justified_by_attr = {}
        for attr in config.attribute_ids:
            owners_by_value = {}
            for _t, index in base.index_histories[attr]:
                for v in index.domain:
                    owners_by_value.setdefault(v, set()).update(
                        index.owners_of(v)
                    )
            justified_by_attr[attr] = owners_by_value
        checked = 0
        for node in nodes:
            for reading in node.flash.all_readings():
                if reading.origin == node.node_id:
                    continue  # stored locally: no index involved
                owners = justified_by_attr[reading.attr].get(
                    reading.value, set()
                )
                assert node.node_id in owners or STORE_LOCAL in owners, (
                    f"node {node.node_id} holds attr {reading.attr} value "
                    f"{reading.value} but no attr-{reading.attr} index ever "
                    f"mapped it there"
                )
                checked += 1
        assert checked > 0, "no remotely stored readings to check"

    def test_attribute_statistics_flow_to_base(self, loop):
        net, base, nodes, results, config = loop
        for attr in config.attribute_ids:
            producers = base.stats.producer_nodes(attr=attr)
            assert len(producers) >= config.n_nodes - 2, (attr, producers)
            assert base.stats.max_value_seen(attr=attr) is not None

    def test_oracle_subset_and_recall(self, loop):
        net, base, nodes, results, config = loop
        oracle = QueryOracle(net.tracker, config)
        recalls = oracle.check_results(results, min_mean_recall=0.5)
        assert len(recalls) >= 10
        scorecard, per_attr = oracle.scorecard(base.query_log)
        assert scorecard["precision_violations"] == 0
        assert set(per_attr) == {"a0", "a1"}
        for row in per_attr.values():
            assert row["readings_produced"] > 0
            assert row["queries_scored"] > 0

    def test_replies_respect_query_attribute(self, loop):
        """A query for one attribute only ever returns values from that
        attribute's domain-tagged readings (cross-checked against the
        produced record, not just the domain bounds)."""
        net, base, nodes, results, config = loop
        produced = {
            (r.attr, r.value, r.produced_at, r.producer)
            for r in net.tracker.readings
        }
        answered = 0
        for result in results:
            for value, timestamp, producer in result.readings:
                assert (
                    result.query.attr,
                    value,
                    timestamp,
                    producer,
                ) in produced
                answered += 1
        assert answered > 0


class TestDifferentialIdentity:
    def _spec(self, attributes, seed=1, policy="scoop"):
        return ExperimentSpec(
            policy=policy,
            workload="gaussian",
            scoop=ScoopConfig(
                n_nodes=14, domain=ValueDomain(0, 20), attributes=attributes, **FAST
            ),
            seed=seed,
        )

    def test_k1_registry_matches_legacy_path(self):
        """(a) an explicit one-entry registry and the legacy implicit
        attribute produce metric-identical trials (only the spec differs,
        so the cache keys differ — everything measured is equal)."""
        legacy = run_experiment(self._spec(attributes=()))
        explicit = run_experiment(
            self._spec(attributes=(AttributeSpec("value", ValueDomain(0, 20)),))
        )
        legacy_dict = legacy.deterministic_dict()
        explicit_dict = explicit.deterministic_dict()
        legacy_dict.pop("spec")
        explicit_dict.pop("spec")
        assert legacy_dict == explicit_dict

    def test_campaign_parallel_matches_serial(self, tmp_path):
        """(b) a multi-attribute campaign is bit-identical between
        jobs=1 and jobs=4."""
        attrs = (
            AttributeSpec("temperature", ValueDomain(0, 20)),
            AttributeSpec("light", ValueDomain(0, 30)),
        )
        specs = [
            self._spec(attributes=attrs, seed=seed, policy=policy)
            for seed in (1, 2)
            for policy in ("scoop", "local")
        ]
        def campaign():
            return Campaign.from_specs("multi-deterministic", list(specs))

        serial = run_campaign(
            campaign(), jobs=1, cache=ResultCache(tmp_path / "serial")
        )
        parallel = run_campaign(
            campaign(), jobs=4, cache=ResultCache(tmp_path / "parallel")
        )
        assert serial.executed == parallel.executed == len(specs)
        for s, p in zip(serial.trials, parallel.trials):
            assert s.trial.key == p.trial.key
            assert s.result.deterministic_dict() == p.result.deterministic_dict()
