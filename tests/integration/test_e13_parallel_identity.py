"""E13-scale serial ≡ parallel campaign identity.

The unit suite pins jobs=1 ≡ jobs=4 bit-identity on 14-node trials; this
integration test re-asserts it at the scaling grid's 64-node point (the
E13 smoke configuration the perf benchmark measures), where the radio's
batched RNG stream, the vectorized reception fan-out, and the process-pool
fan-out all interact at realistic densities.
"""

import dataclasses

from repro.experiments.cache import ResultCache
from repro.experiments.campaign import Campaign, run_campaign
from repro.experiments.runner import scale_spec
from repro.experiments.scenarios import scaling_xl

#: The committed E13 smoke time scale (matches benchmarks/bench_kernel.py).
SMOKE_SCALE = 0.15


def e13_smoke_spec(seed: int):
    series = scaling_xl(seed=seed, sizes=(64,))
    spec = series[0][1][0]  # (n, [scoop, local]) -> the scoop trial
    unscaled = dataclasses.replace(
        spec,
        scoop=dataclasses.replace(spec.scoop, duration=2400.0, stabilization=600.0),
    )
    return scale_spec(unscaled, SMOKE_SCALE)


def test_jobs1_and_jobs4_bit_identical_at_e13_scale(tmp_path):
    specs = [e13_smoke_spec(seed) for seed in (1, 2)]
    campaign = Campaign.from_specs("e13_parallel_identity", specs)
    serial = run_campaign(campaign, jobs=1, cache=ResultCache(tmp_path / "serial"))
    parallel = run_campaign(campaign, jobs=4, cache=ResultCache(tmp_path / "par"))
    assert serial.executed == parallel.executed == len(specs)
    for s, p in zip(serial.trials, parallel.trials):
        assert s.trial.key == p.trial.key
        assert s.result.deterministic_dict() == p.result.deterministic_dict()
        # The deterministic view still carries the kernel's event count —
        # a pure function of the spec, so it must survive the pool fan-out.
        assert s.result.metrics.timing["events_processed"] > 0
