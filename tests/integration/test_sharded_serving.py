"""End-to-end tests for the sharded serving stack over real sockets.

The contract under test, from ISSUE 8:

* the hello/WELCOME handshake doubles as the readiness barrier — a
  client that connects while shards are still booting blocks, never
  errors;
* answers are a function of each tenant's ordered request stream, so a
  fixed client program gets bit-identical transcripts from ``workers=1``
  and ``workers=4``;
* overload and misuse surface as typed faults over the wire (socket
  credit shed → :class:`ShedError`, version skew →
  :class:`ProtocolVersionError`, unknown tenant →
  :class:`MalformedRequestError`);
* metrics subscribers receive per-shard scorecard pushes.

ISSUE 10 adds the supervision contract (:class:`TestShardSupervision`):
a worker killed at any point — before ready, mid-batch, mid-stats-probe
— is respawned and the service keeps answering; with the respawn budget
exhausted its tenants are re-placed onto survivors; in every case no
request hangs (they fail typed and retryable) and no worker process
outlives its gateway.

The protocol-behavior tests run against the in-process
:class:`QueryGateway` (same server, same frames, no process spawn); the
determinism test boots real :class:`ShardedGateway` worker processes.
"""

import asyncio

import pytest

from repro.core.config import ScoopConfig, ValueDomain
from repro.experiments.runner import ExperimentSpec
from repro.service.api import (
    PROTOCOL_VERSION,
    MalformedRequestError,
    ProtocolVersionError,
    ServiceUnavailableError,
    ShedError,
)
from repro.service.client import AsyncScoopClient
from repro.service.gateway import QueryGateway
from repro.service.loadtest import drive_socket_load
from repro.service.server import serve_framed
from repro.service.shard import BackoffPolicy, ShardedGateway


def assert_no_zombies(gateway: ShardedGateway) -> None:
    """After close(), no worker may survive (the kill-fallback bug):
    every process is dead *and* reaped (exitcode set = waited on)."""
    for shard in gateway._shards.values():
        process = shard.process
        if process is None:
            continue
        assert not process.is_alive(), f"{shard.name} worker outlived close()"
        assert process.exitcode is not None, f"{shard.name} worker not reaped"


async def poll_until(predicate, timeout: float = 30.0, interval: float = 0.05):
    """Await ``predicate()`` turning truthy; fail loudly on timeout."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert (
            asyncio.get_running_loop().time() < deadline
        ), f"condition not reached within {timeout}s"
        await asyncio.sleep(interval)


def tiny_spec(seed: int = 3) -> ExperimentSpec:
    """The smallest spec that still serves queries: 8 motes, short
    warm-up, one attribute over [0, 100]. Worker boot stays well under a
    second, which is what makes multi-process tests affordable."""
    config = ScoopConfig(
        domain=ValueDomain(0, 100),
        n_nodes=8,
        sample_interval=10.0,
        summary_interval=60.0,
        remap_interval=180.0,
        query_interval=12.0,
        query_reply_window=8.0,
        duration=120.0,
        stabilization=40.0,
    )
    return ExperimentSpec(
        policy="scoop",
        workload="gaussian",
        scoop=config,
        seed=seed,
        topology_kind="grid",
    )


def in_process_gateway(tenants: int = 1) -> QueryGateway:
    return QueryGateway.from_spec(tiny_spec(), tenants=tenants, batch_delay=0.0)


class TestFramedServer:
    """Protocol behavior over a real socket, in-process gateway."""

    def test_query_stats_ping_round_trip(self):
        async def program():
            gateway = in_process_gateway()
            await gateway.start()
            server = await serve_framed(gateway)
            try:
                async with AsyncScoopClient(port=server.port) as client:
                    assert client.tenants == ["tenant0"]
                    assert client.workers == 1
                    answer = await client.query(tenant="tenant0", lo=10, hi=60)
                    assert answer.ok and answer.shard == "shard0"
                    assert answer.seq == 1
                    assert await client.ping() == ["tenant0"]
                    stats = await client.stats()
                    assert "tenant0" in stats.tenants
                    assert "shard0" in stats.shards
                    assert stats.protocol["requests"] >= 1
            finally:
                await server.close()
                await gateway.close()

        asyncio.run(program())

    def test_socket_credit_shed(self):
        """With a zero-credit window every request sheds at the socket:
        the client sees ShedError, the server counts it, and the
        connection stays usable for control frames."""

        async def program():
            gateway = in_process_gateway()
            await gateway.start()
            server = await serve_framed(gateway, credits=0)
            try:
                async with AsyncScoopClient(port=server.port) as client:
                    assert client.credits == 0
                    with pytest.raises(ShedError):
                        await client.query(tenant="tenant0")
                    assert server.counters["sheds_socket"] == 1
                    # Sheds don't poison the stream — PING still works.
                    assert await client.ping() == ["tenant0"]
            finally:
                await server.close()
                await gateway.close()

        asyncio.run(program())

    def test_version_skew_is_typed_and_fatal(self):
        async def program():
            gateway = in_process_gateway()
            await gateway.start()
            server = await serve_framed(gateway)
            try:
                client = AsyncScoopClient(
                    port=server.port, version=PROTOCOL_VERSION + 1
                )
                with pytest.raises(ProtocolVersionError):
                    await client.connect()
                await client.aclose()
            finally:
                await server.close()
                await gateway.close()

        asyncio.run(program())

    def test_unknown_tenant_is_malformed(self):
        async def program():
            gateway = in_process_gateway()
            await gateway.start()
            server = await serve_framed(gateway)
            try:
                async with AsyncScoopClient(port=server.port) as client:
                    with pytest.raises(MalformedRequestError, match="martian"):
                        await client.query(tenant="martian")
                    # The fault is per-request: the connection survives.
                    answer = await client.query(tenant="tenant0")
                    assert answer.ok
            finally:
                await server.close()
                await gateway.close()

        asyncio.run(program())

    def test_metrics_subscription_pushes_shard_scorecards(self):
        async def program():
            gateway = in_process_gateway()
            await gateway.start()
            server = await serve_framed(gateway, metrics_interval=0.02)
            try:
                async with AsyncScoopClient(
                    port=server.port, metrics=True
                ) as client:
                    await client.query(tenant="tenant0")
                    deadline = asyncio.get_running_loop().time() + 5.0
                    while not client.metrics:
                        assert (
                            asyncio.get_running_loop().time() < deadline
                        ), "no METRICS frame within 5s"
                        await asyncio.sleep(0.02)
                    push = client.metrics[0]
                    assert push["shard"] == "shard0"
                    assert "tick" in push
                    assert "requests_offered" in push["stats"]
                assert server.counters["metrics_pushed"] >= 1
            finally:
                await server.close()
                await gateway.close()

        asyncio.run(program())


class TestShardedGateway:
    """Real worker processes behind the framed server."""

    def test_readiness_gates_welcome(self):
        """The server accepts connections the moment it binds — before
        any shard has booted — and parks the WELCOME behind the
        readiness barrier, so connect() blocking is the handshake."""

        async def program():
            gateway = ShardedGateway(tiny_spec(), tenants=2, workers=2)
            await gateway.start()
            server = await serve_framed(gateway)
            try:
                # Spawned workers take ≥100ms to even import; the bind
                # happened synchronously above, so this races nothing.
                assert not gateway.ready.is_set()
                async with AsyncScoopClient(port=server.port) as client:
                    assert gateway.ready.is_set()
                    assert client.tenants == ["tenant0", "tenant1"]
                    assert client.workers == 2
                    answer = await client.query(tenant="tenant1", lo=0, hi=50)
                    assert answer.ok and answer.shard == "shard1"
            finally:
                await server.close()
                await gateway.close()
                assert_no_zombies(gateway)

        asyncio.run(program())

    def test_workers_1_and_4_answer_identically(self):
        """The shard-determinism gate: one sequential client per tenant
        replaying a fixed program gets byte-identical per-tenant
        transcripts whatever the worker count."""

        async def serve_and_drive(workers: int):
            gateway = ShardedGateway(tiny_spec(), tenants=4, workers=workers)
            await gateway.start()
            server = await serve_framed(gateway)
            try:
                await gateway.wait_ready()
                report = await asyncio.get_running_loop().run_in_executor(
                    None,
                    lambda: drive_socket_load(
                        "127.0.0.1",
                        server.port,
                        clients=4,
                        requests=6,
                        seed=11,
                    ),
                )
            finally:
                await server.close()
                await gateway.close()
                assert_no_zombies(gateway)
            return report

        report1 = asyncio.run(serve_and_drive(1))
        report4 = asyncio.run(serve_and_drive(4))

        for report, workers in ((report1, 1), (report4, 4)):
            assert report["workers"] == workers
            assert report["counts"]["failed"] == 0, report["errors"]
            assert report["counts"]["ok"] == 4 * 6
            assert report["stats"]["protocol"]["protocol_errors"] == 0
        # 1 worker hosts every tenant on shard0; 4 spread one per shard.
        assert set(report1["stats"]["shards"]) == {"shard0"}
        assert set(report4["stats"]["shards"]) == {
            "shard0",
            "shard1",
            "shard2",
            "shard3",
        }
        # The tentpole invariant: identical transcripts, hence digests.
        assert report1["answers"] == report4["answers"]
        assert report1["answers_digest"] == report4["answers_digest"]


class TestShardSupervision:
    """The death/recovery matrix: real workers, really killed."""

    def test_kill_before_ready_respawns(self):
        """A worker killed while still booting is respawned: the
        readiness barrier eventually opens and the shard serves."""

        async def program():
            gateway = ShardedGateway(
                tiny_spec(),
                tenants=2,
                workers=2,
                backoff=BackoffPolicy(base_s=0.05, cap_s=0.2, budget=3),
            )
            await gateway.start()
            try:
                assert not gateway.ready.is_set()
                gateway._shards["shard0"].process.kill()
                await gateway.wait_ready(timeout=60.0)
                answer = await gateway.answer(
                    _request(gateway, "tenant0", seq=1)
                )
                assert answer.ok and answer.shard == "shard0"
                stats = await gateway.service_stats()
                assert stats.shards["shard0"]["restarts"] >= 1
                assert stats.shards["shard0"]["last_exit"] == -9
                assert stats.shards["shard1"]["restarts"] == 0
            finally:
                await gateway.close()
                assert_no_zombies(gateway)

        asyncio.run(program())

    def test_kill_mid_batch_clients_retry_to_success(self):
        """Kill a worker while concurrent client queries are on the
        wire, over a real socket: every in-flight and queued request is
        failed retryable (nothing hangs), the clients' retry policy
        resends, and all of them ultimately succeed."""

        async def program():
            gateway = ShardedGateway(
                tiny_spec(),
                tenants=2,
                workers=2,
                # batch_delay holds the lockstep batch open long enough
                # that the kill below reliably lands mid-batch.
                batch_delay=0.3,
                backoff=BackoffPolicy(base_s=0.05, cap_s=0.5, budget=3),
            )
            await gateway.start()
            server = await serve_framed(gateway)
            try:
                async with AsyncScoopClient(
                    port=server.port, retries=30
                ) as client:
                    half = asyncio.gather(
                        *(client.query(tenant="tenant0", lo=0, hi=80)
                          for _ in range(8))
                    )
                    # Kill while the batch is still being assembled:
                    # those 8 requests are in flight, none answered.
                    await asyncio.sleep(0.1)
                    killed = gateway.chaos_kill_worker("shard0")
                    assert killed == "shard0"
                    answers = await asyncio.wait_for(half, timeout=120.0)
                    assert len(answers) == 8
                    assert all(a.tenant == "tenant0" for a in answers)
                    assert client.retries_used >= 1
                    stats = await client.stats()
                    assert stats.shards["shard0"]["restarts"] >= 1
                    assert stats.protocol["retries_signalled"] >= 1
            finally:
                await server.close()
                await gateway.close()
                assert_no_zombies(gateway)

        asyncio.run(program())

    def test_kill_during_stats_probe_does_not_raise(self):
        """A stats probe racing a worker death falls back to the cached
        scorecard (with supervision counters) instead of raising."""

        async def program():
            gateway = ShardedGateway(
                tiny_spec(),
                tenants=2,
                workers=2,
                backoff=BackoffPolicy(base_s=0.05, cap_s=0.2, budget=3),
            )
            await gateway.start()
            try:
                await gateway.wait_ready(timeout=60.0)
                # Prime the cached scorecards, then race kills against
                # probes: none may raise, every report covers the fleet.
                await gateway.service_stats()
                gateway.chaos_kill_worker("shard0")
                for _ in range(5):
                    stats = await gateway.service_stats()
                    assert set(stats.shards) == {"shard0", "shard1"}
                    assert "restarts" in stats.shards["shard0"]
                    await asyncio.sleep(0.05)
                await poll_until(
                    lambda: gateway.shard_states()["shard0"] == "ready"
                )
                stats = await gateway.service_stats()
                assert stats.shards["shard0"]["restarts"] >= 1
            finally:
                await gateway.close()
                assert_no_zombies(gateway)

        asyncio.run(program())

    def test_budget_exhausted_replaces_tenants_onto_survivor(self):
        """With a zero respawn budget, a worker death re-places the dead
        shard's tenants onto the survivor: the routing table flips, the
        tenant keeps answering (from the other shard), and the
        supervision counters record the whole story."""

        async def program():
            gateway = ShardedGateway(
                tiny_spec(),
                tenants=2,
                workers=2,
                backoff=BackoffPolicy(base_s=0.05, cap_s=0.2, budget=0),
            )
            await gateway.start()
            try:
                await gateway.wait_ready(timeout=60.0)
                before = await gateway.answer(
                    _request(gateway, "tenant0", seq=1)
                )
                assert before.shard == "shard0"
                assert gateway.chaos_kill_worker("shard0") == "shard0"
                await poll_until(
                    lambda: gateway.shard_states()["shard0"] == "replaced"
                )
                assert gateway.shard_of("tenant0") == "shard1"
                after = await gateway.answer(
                    _request(gateway, "tenant0", seq=2)
                )
                assert after.ok and after.shard == "shard1"
                # The survivor still serves its own tenant too.
                own = await gateway.answer(_request(gateway, "tenant1", seq=3))
                assert own.ok and own.shard == "shard1"
                stats = await gateway.service_stats()
                assert stats.shards["shard0"]["restarts"] == 0
                assert stats.shards["shard0"]["last_exit"] == -9
                assert stats.shards["shard1"]["replacements"] == 1
                # Both tenants report through the adopting shard now.
                assert set(stats.tenants) == {"tenant0", "tenant1"}
            finally:
                await gateway.close()
                assert_no_zombies(gateway)

        asyncio.run(program())

    def test_wait_ready_timeout_is_typed(self):
        """The readiness timeout surfaces as ServiceUnavailableError,
        not a bare asyncio.TimeoutError leaking through the ladder."""

        async def program():
            gateway = ShardedGateway(tiny_spec(), tenants=1, workers=1)
            await gateway.start()
            try:
                with pytest.raises(ServiceUnavailableError, match="not ready"):
                    await gateway.wait_ready(timeout=0.001)
                # The boot itself is unharmed: it completes afterwards.
                await gateway.wait_ready(timeout=60.0)
            finally:
                await gateway.close()
                assert_no_zombies(gateway)

        asyncio.run(program())


def _request(gateway: ShardedGateway, tenant: str, seq: int):
    from repro.service.api import QueryRequest

    return QueryRequest(tenant=tenant, attr=0, lo=0, hi=100, seq=seq)
