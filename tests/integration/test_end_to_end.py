"""Integration tests: the full Scoop loop on small simulated networks.

These exercise the complete pipeline — tree formation, sampling, summaries,
index construction, Trickle dissemination, the six routing rules, query
planning, selective flooding, and reply assembly — end to end.
"""

import pytest

from repro.core.config import ScoopConfig, ValueDomain
from repro.core.query import Query
from repro.sim.topology import line, perfect, random_geometric
from repro.workloads.synthetic import GaussianWorkload, UniqueWorkload
from tests.conftest import build_scoop_network

DOMAIN = ValueDomain(0, 100)


def run_scoop(topo, config, workload, run_for=300.0, seed=1, query_every=None):
    net, base, nodes = build_scoop_network(
        topo, config=config, seed=seed, data_source=workload.as_data_source()
    )
    net.boot_all(within=config.beacon_interval)
    net.run(config.stabilization)
    for node in nodes:
        node.start_sampling()
    base.start_scoop()
    results = []
    if query_every is not None:
        def tick():
            if net.sim.now >= config.stabilization + run_for:
                return
            results.append(
                base.issue_query(
                    Query(
                        time_range=(max(0.0, net.sim.now - 120.0), net.sim.now),
                        value_range=(40, 60),
                    )
                )
            )
            net.sim.schedule(query_every, tick)
        net.sim.schedule(query_every, tick)
    net.run(config.stabilization + run_for)
    for node in nodes:
        node.stop_sampling()
    net.run(net.sim.now + config.query_reply_window + 5.0)
    return net, base, nodes, results


@pytest.fixture
def fast_config():
    return ScoopConfig(
        n_nodes=8,
        domain=DOMAIN,
        sample_interval=5.0,
        query_interval=10.0,
        summary_interval=20.0,
        remap_interval=45.0,
        stabilization=40.0,
        duration=300.0,
        beacon_interval=5.0,
        query_reply_window=8.0,
        batch_flush_timeout=30.0,
    )


class TestScoopLifecycle:
    def test_index_disseminates_to_all_nodes(self, fast_config):
        workload = UniqueWorkload(DOMAIN, 8)
        net, base, nodes, _ = run_scoop(perfect(8), fast_config, workload)
        assert base.current_index is not None
        for node in nodes:
            assert node.current_index is not None
            assert node.current_index.sid >= 1

    def test_unique_workload_stores_at_producers(self, fast_config):
        workload = UniqueWorkload(DOMAIN, 8)
        net, base, nodes, _ = run_scoop(perfect(8), fast_config, workload)
        # After the first remap each node owns its own value: late readings
        # stay at home, so every node's flash holds its own value.
        for node in nodes:
            own = [r for r in node.flash.all_readings() if r.value == node.node_id]
            assert own, f"node {node.node_id} stores none of its own readings"

    def test_storage_success_high_on_clean_channel(self, fast_config):
        workload = GaussianWorkload(DOMAIN, 8, seed=3)
        net, base, nodes, _ = run_scoop(perfect(8), fast_config, workload)
        assert net.tracker.storage_success_rate() > 0.95

    def test_summaries_reach_base_from_every_node(self, fast_config):
        workload = GaussianWorkload(DOMAIN, 8, seed=3)
        net, base, nodes, _ = run_scoop(perfect(8), fast_config, workload)
        assert set(base.stats.records) == {n.node_id for n in nodes}

    def test_queries_return_correct_values(self, fast_config):
        """Every answer is ⊆ the ground-truth oracle's answer set, and a
        clean channel retrieves most of what was reachable (the oracle
        replaces the old hand-written range/time assertions)."""
        from tests.oracle import QueryOracle

        workload = GaussianWorkload(DOMAIN, 8, seed=3)
        net, base, nodes, results = run_scoop(
            perfect(8), fast_config, workload, query_every=15.0
        )
        answered = [r for r in results if r.readings]
        assert answered, "no query returned any readings"
        oracle = QueryOracle(net.tracker, fast_config)
        recalls = oracle.check_results(results, min_mean_recall=0.5)
        assert recalls, "no closed query to score"

    def test_remaps_eventually_suppressed_on_stable_data(self, fast_config):
        workload = UniqueWorkload(DOMAIN, 8)
        net, base, nodes, _ = run_scoop(
            perfect(8), fast_config, workload, run_for=400.0
        )
        # Stationary data -> consecutive indices identical -> suppression.
        assert base.remaps_suppressed >= 1

    def test_multihop_line_delivers(self, fast_config):
        workload = UniqueWorkload(DOMAIN, 8)
        net, base, nodes, _ = run_scoop(line(8), fast_config, workload)
        assert net.tracker.storage_success_rate() > 0.9
        # deep nodes joined through the chain
        assert all(node.tree.joined for node in nodes)


class TestLossyNetwork:
    def test_full_loop_on_lossy_geometric(self):
        config = ScoopConfig(
            n_nodes=16,
            domain=DOMAIN,
            sample_interval=10.0,
            query_interval=15.0,
            summary_interval=30.0,
            remap_interval=120.0,
            stabilization=120.0,
            duration=400.0,
            beacon_interval=8.0,
        )
        # Chunk dissemination over a 400 s horizon (6x shorter than the
        # paper's runs) is strongly seed-dependent on a 16-node lossy
        # geometric layout; this seed is a representative healthy draw.
        # (Re-pinned when the Timer explicit-delay fix shifted the RNG
        # stream; the spread across seeds is unchanged by that fix.)
        topo = random_geometric(16, seed=6)
        workload = GaussianWorkload(DOMAIN, 16, seed=6)
        net, base, nodes, results = run_scoop(
            topo, config, workload, run_for=400.0, query_every=15.0
        )
        # The paper's regimes, with slack for the harsher channel.
        assert net.tracker.storage_success_rate() > 0.7
        assert base.current_index is not None
        disseminated = sum(1 for n in nodes if n.current_index is not None)
        assert disseminated >= len(nodes) * 0.6

    def test_adaptation_to_query_rate_spike(self):
        """P2 end-to-end: when the query rate explodes, the rebuilt index
        moves queried values toward the basestation."""
        config = ScoopConfig(
            n_nodes=8,
            domain=DOMAIN,
            sample_interval=8.0,
            summary_interval=20.0,
            remap_interval=50.0,
            stabilization=40.0,
            duration=600.0,
            beacon_interval=5.0,
        )
        topo = line(8)
        workload = UniqueWorkload(DOMAIN, 8)  # node 7 produces value 7
        net, base, nodes = build_scoop_network(
            topo, config=config, data_source=workload.as_data_source()
        )
        net.boot_all(within=5.0)
        net.run(config.stabilization)
        for node in nodes:
            node.start_sampling()
        base.start_scoop()
        net.run(config.stabilization + 120.0)
        owner_before = (
            base.current_index.owner_of(7) if base.current_index else None
        )
        # Hammer value 7 with queries (far more often than data is made).
        def spam():
            if net.sim.now >= config.stabilization + 500.0:
                return
            base.issue_query(
                Query(time_range=(net.sim.now - 60.0, net.sim.now), value_range=(7, 7))
            )
            net.sim.schedule(2.0, spam)
        net.sim.schedule(1.0, spam)
        net.run(config.stabilization + 600.0)
        assert base.current_index is not None
        owner_after = base.current_index.owner_of(7)
        # Node 7 is the far end of the line; the owner must have moved
        # strictly closer to the base (or to the base itself).
        assert owner_after < 7
        if owner_before is not None:
            assert owner_after <= owner_before


class TestBaselineComparison:
    def test_scoop_beats_base_on_unique(self, fast_config):
        from repro.baselines.send_base import (
            SendToBaseBasestation,
            SendToBaseNode,
        )
        from repro.sim.network import Network

        workload = UniqueWorkload(DOMAIN, 8)
        net, base, nodes, _ = run_scoop(perfect(8), fast_config, workload)
        scoop_total = net.census.total_sent()

        net2 = Network(perfect(8), seed=1)
        base2 = SendToBaseBasestation(
            net2.sim, net2.radio, fast_config, tracker=net2.tracker
        )
        nodes2 = [
            SendToBaseNode(
                i,
                net2.sim,
                net2.radio,
                fast_config,
                data_source=workload.as_data_source(),
                tracker=net2.tracker,
            )
            for i in fast_config.sensor_ids
        ]
        net2.add_mote(base2)
        for node in nodes2:
            net2.add_mote(node)
        net2.boot_all(within=5.0)
        net2.run(fast_config.stabilization)
        for node in nodes2:
            node.start_sampling()
        net2.run(fast_config.stabilization + 300.0)
        base_total = net2.census.total_sent()

        # UNIQUE is Scoop's best case: everything stays local after the
        # first index, while BASE ships every reading.
        assert scoop_total < base_total

    def test_energy_accounting_consistent(self, fast_config):
        workload = GaussianWorkload(DOMAIN, 8, seed=5)
        net, base, nodes, _ = run_scoop(perfect(8), fast_config, workload)
        total_bits_sent = sum(net.census.sent_bits.values())
        assert total_bits_sent > 0
        # Energy ledger matches the census bit count exactly (700 nJ/bit).
        from repro.sim.energy import RADIO_NJ_PER_BIT

        ledger_tx_nj = sum(
            net.energy.node_energy(i).radio_tx_nj for i in range(8)
        )
        assert ledger_tx_nj == pytest.approx(total_bits_sent * RADIO_NJ_PER_BIT)
