"""Differential and regression tests for the performance stack.

The optimized hot paths must be drop-in replacements, and these tests pin
the equivalences the optimization relies on:

* the kernel's two queue backends (binary heap, calendar queue) pop in
  bit-identical ``(time, seq)`` order, on synthetic churn workloads and on
  full trials (``REPRO_SIM_SCHEDULER``);
* the radio's vectorized and scalar loss paths consume the same RNG draws
  (see the stream-refill discipline in ``repro.sim.rngstream``) and
  therefore produce metric-identical trials on pinned seeds
  (``REPRO_RADIO_PATH``);
* same-timestamp events never fall through to comparing callbacks or
  payloads — the classic ``heapq`` ``TypeError`` hazard the monotonic
  sequence tie-break exists to prevent;
* the per-trial timing record (``events_processed`` / ``events_per_sec``)
  is populated, and determinism checks exclude exactly the wall-clock
  derived fields.
"""

from random import Random

import pytest

from repro.core.config import ScoopConfig, ValueDomain
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.sim.kernel import Simulator
from repro.sim.rngstream import BatchedUniformStream, numpy_available


def small_spec(seed: int = 1, **overrides) -> ExperimentSpec:
    """A 14-node SCOOP spec that simulates in a fraction of a second."""
    config = dict(
        n_nodes=14,
        domain=ValueDomain(0, 20),
        sample_interval=5.0,
        query_interval=10.0,
        summary_interval=20.0,
        remap_interval=40.0,
        stabilization=60.0,
        duration=120.0,
        beacon_interval=5.0,
        query_reply_window=8.0,
    )
    config.update(overrides)
    return ExperimentSpec(
        policy="scoop", workload="gaussian", scoop=ScoopConfig(**config), seed=seed
    )


class _Unorderable:
    """A callback argument with no ordering — entries must never compare it."""

    __lt__ = None  # type: ignore[assignment]


class TestTieBreak:
    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_same_timestamp_unorderable_payloads(self, scheduler):
        # Many events at the same instant force the queue to order entries
        # by the (time, seq) prefix alone; reaching the event object (whose
        # args are unorderable) would raise TypeError.
        sim = Simulator(seed=0, scheduler=scheduler)
        fired = []
        for i in range(200):
            sim.schedule(1.0, lambda i=i, _p=_Unorderable(): fired.append(i))
        sim.run(2.0)
        assert fired == list(range(200))

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_interleaved_times_and_ties_fifo(self, scheduler):
        sim = Simulator(seed=0, scheduler=scheduler)
        fired = []
        for i in range(50):
            sim.schedule(2.0, fired.append, ("late", i))
            sim.schedule(1.0, fired.append, ("early", i))
        sim.run(3.0)
        assert fired == [("early", i) for i in range(50)] + [
            ("late", i) for i in range(50)
        ]


class TestSchedulerDifferential:
    def _churn_trace(self, scheduler: str):
        """Run a randomized schedule/cancel workload; return the pop trace."""
        sim = Simulator(seed=0, scheduler=scheduler)
        rng = Random(1234)
        trace = []
        handles = []

        def fire(tag):
            trace.append((round(sim.now, 9), tag))
            # Events schedule more events, at wildly mixed horizons (the
            # calendar queue must resize and skip sparse stretches).
            if len(trace) < 3000:
                delay = rng.choice([0.0, 1e-4, 0.013, 0.4, 7.0, 120.0])
                handles.append(sim.schedule(delay, fire, len(trace)))
                if len(handles) > 16 and rng.random() < 0.3:
                    handles.pop(rng.randrange(len(handles))).cancel()

        for i in range(40):
            sim.schedule(rng.random() * 5.0, fire, -i)
        sim.run_until_idle()
        return trace

    def test_heap_and_calendar_pop_identically(self):
        assert self._churn_trace("heap") == self._churn_trace("calendar")

    def test_full_trial_identical_across_backends(self, monkeypatch):
        results = {}
        for backend in ("heap", "calendar"):
            monkeypatch.setenv("REPRO_SIM_SCHEDULER", backend)
            results[backend] = run_experiment(small_spec(seed=3))
        assert (
            results["heap"].deterministic_dict()
            == results["calendar"].deterministic_dict()
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception):
            Simulator(seed=0, scheduler="splay-tree")


class TestRadioPathDifferential:
    @pytest.mark.skipif(not numpy_available(), reason="vector path needs numpy")
    @pytest.mark.parametrize("seed", [1, 2])
    def test_vector_and_scalar_paths_identical(self, monkeypatch, seed):
        results = {}
        for path in ("vector", "scalar"):
            monkeypatch.setenv("REPRO_RADIO_PATH", path)
            results[path] = run_experiment(small_spec(seed=seed))
        assert (
            results["vector"].deterministic_dict()
            == results["scalar"].deterministic_dict()
        )

    def test_stream_take_matches_sequential_draws(self):
        # The discipline both paths rely on: take(k) consumes exactly the
        # same underlying uniforms as k successive random() calls, across
        # block-refill boundaries.
        a = BatchedUniformStream(99)
        b = BatchedUniformStream(99)
        for k in (1, 3, 4093, 17, 5000):
            block = a.take(k)
            singles = [b.random() for _ in range(k)]
            assert [float(x) for x in block] == singles


class TestTimingRecord:
    def test_events_processed_exported_and_rate_excluded(self):
        result = run_experiment(small_spec(seed=5))
        timing = result.metrics.timing
        assert timing["events_processed"] > 0
        assert timing["events_per_sec"] > 0
        det = result.deterministic_dict()
        det_timing = det["metrics"]["timing"]
        # The deterministic view keeps the event count (a pure function of
        # the spec) and drops only the wall-clock derived rate.
        assert det_timing["events_processed"] == timing["events_processed"]
        assert "events_per_sec" not in det_timing
        assert det["metrics"]["wall_clock_s"] == 0.0
