"""Unit tests for the shard supervisor's pure machinery (ISSUE 10).

Everything here runs without worker processes: the backoff schedule is
plain math, the re-placement plan is a pure function, and the supervisor
loop is driven with a scripted ``_run_worker`` plus a fake clock (the
injectable ``gateway._sleep``) — so the respawn/replace decisions and
the queue-drain guarantees are pinned deterministically. The matching
real-process matrix (actual SIGKILLs over real sockets) lives in
``tests/integration/test_sharded_serving.py``.
"""

import asyncio

import pytest

from repro.core.config import ScoopConfig, ValueDomain
from repro.experiments.runner import ExperimentSpec
from repro.service.api import (
    ServiceUnavailableError,
    ShardRestartingError,
)
from repro.service.shard import (
    BOOTING,
    FAILED,
    READY,
    RESTARTING,
    BackoffPolicy,
    ShardedGateway,
    _Shard,
    plan_placement,
    plan_replacement,
)


def tiny_spec(seed: int = 3) -> ExperimentSpec:
    config = ScoopConfig(
        domain=ValueDomain(0, 100),
        n_nodes=8,
        sample_interval=10.0,
        summary_interval=60.0,
        remap_interval=180.0,
        query_interval=12.0,
        query_reply_window=8.0,
        duration=120.0,
        stabilization=40.0,
    )
    return ExperimentSpec(
        policy="scoop",
        workload="gaussian",
        scoop=config,
        seed=seed,
        topology_kind="grid",
    )


class FakeProcess:
    """Stands in for a dead multiprocessing.Process."""

    def __init__(self, exitcode: int = -9):
        self.exitcode = exitcode
        self.killed = 0

    def is_alive(self) -> bool:
        return False

    def join(self, timeout=None) -> None:
        pass

    def kill(self) -> None:
        self.killed += 1


class TestBackoffPolicy:
    def test_delay_schedule_doubles_up_to_cap(self):
        policy = BackoffPolicy(base_s=0.25, cap_s=5.0, budget=6)
        assert policy.delays() == [0.25, 0.5, 1.0, 2.0, 4.0, 5.0]

    def test_cap_binds_immediately_when_base_exceeds_it(self):
        policy = BackoffPolicy(base_s=10.0, cap_s=3.0, budget=2)
        assert policy.delays() == [3.0, 3.0]

    def test_zero_budget_means_no_respawns(self):
        assert BackoffPolicy(budget=0).delays() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(budget=-1)
        with pytest.raises(ValueError):
            BackoffPolicy().delay(-1)


class TestPlacementPlans:
    def test_round_robin_placement(self):
        assert plan_placement(["t0", "t1", "t2"], 2) == [["t0", "t2"], ["t1"]]

    def test_replacement_round_robins_over_survivors(self):
        plan = plan_replacement(["t0", "t1", "t2"], ["shard1", "shard2"])
        assert plan == {"shard1": ["t0", "t2"], "shard2": ["t1"]}

    def test_replacement_is_deterministic(self):
        args = (["a", "b", "c", "d"], ["s2", "s5"])
        assert plan_replacement(*args) == plan_replacement(*args)

    def test_no_survivors_raises(self):
        with pytest.raises(ValueError, match="no surviving"):
            plan_replacement(["t0"], [])


def _bare_gateway(**kwargs) -> ShardedGateway:
    return ShardedGateway(tiny_spec(), tenants=2, workers=2, **kwargs)


class TestSupervisorLoop:
    """The respawn state machine, driven by a scripted worker and a
    recording fake clock — no processes, no wall time."""

    def test_respawns_with_backoff_then_serves(self):
        """Two deaths then a clean run: the supervisor sleeps the
        backoff ladder's first two delays, respawns twice, and counts
        both restarts."""

        async def program():
            gateway = _bare_gateway(
                backoff=BackoffPolicy(base_s=0.25, cap_s=5.0, budget=3)
            )
            shard = _Shard("shard0", ["tenant0"])
            shard.process = FakeProcess(exitcode=-9)
            gateway._shards["shard0"] = shard

            outcomes = [("died", "kill 1"), ("died", "kill 2"), None]
            spawns = []
            sleeps = []

            async def scripted_run(s):
                return outcomes.pop(0)

            async def fake_sleep(delay):
                sleeps.append(delay)

            gateway._run_worker = scripted_run
            gateway._spawn = lambda s: spawns.append(s.name)
            gateway._sleep = fake_sleep

            await gateway._supervise(shard)

            assert spawns == ["shard0", "shard0"]
            assert sleeps == [0.25, 0.5]
            assert shard.restarts == 2
            assert shard.respawns_used == 2
            assert shard.last_exit == -9

        asyncio.run(program())

    def test_budget_exhausted_hands_off_to_replacement(self):
        """Once respawns_used hits the budget, the next death goes to
        _replace() instead of another spawn."""

        async def program():
            gateway = _bare_gateway(
                backoff=BackoffPolicy(base_s=0.01, cap_s=0.01, budget=1)
            )
            shard = _Shard("shard0", ["tenant0"])
            shard.process = FakeProcess()
            gateway._shards["shard0"] = shard

            outcomes = [("died", "kill 1"), ("died", "kill 2")]
            replaced = []

            async def scripted_run(s):
                return outcomes.pop(0)

            async def fake_replace(s):
                replaced.append(s.name)
                s.state = FAILED  # terminal: ends the drain loop fast
                s.failed = "replaced in test"

            async def fake_sleep(delay):
                pass

            gateway._run_worker = scripted_run
            gateway._replace = fake_replace
            gateway._sleep = fake_sleep
            gateway._spawn = lambda s: None
            gateway._closed = False

            supervise = asyncio.create_task(gateway._supervise(shard))
            # The terminal drain loop parks on the queue; closing
            # releases it.
            await asyncio.sleep(0)
            while not replaced:
                await asyncio.sleep(0.001)
            shard.queue.put_nowait(None)
            await asyncio.wait_for(supervise, timeout=5.0)

            assert replaced == ["shard0"]
            assert shard.restarts == 1  # only the budgeted respawn

        asyncio.run(program())

    def test_boot_error_is_terminal_not_respawned(self):
        """A worker-reported boot exception is deterministic: the shard
        fails permanently instead of burning the respawn budget."""

        async def program():
            gateway = _bare_gateway()
            shard = _Shard("shard0", ["tenant0"])
            shard.process = FakeProcess(exitcode=1)
            gateway._shards["shard0"] = shard

            async def scripted_run(s):
                return ("boot_error", "ValueError: bad spec")

            gateway._run_worker = scripted_run
            gateway._spawn = lambda s: pytest.fail("must not respawn")

            supervise = asyncio.create_task(gateway._supervise(shard))
            while shard.state != FAILED:
                await asyncio.sleep(0.001)
            shard.queue.put_nowait(None)
            await asyncio.wait_for(supervise, timeout=5.0)

            assert shard.restarts == 0
            assert "bad spec" in gateway._boot_error
            assert gateway.ready.is_set()
            assert shard.ready.is_set()  # waiters wake to see the failure

        asyncio.run(program())


class TestQueueDraining:
    """The satellite bug: nothing queued on a dead shard may hang."""

    def test_drain_fails_queued_futures_retryable(self):
        async def program():
            gateway = _bare_gateway()
            shard = _Shard("shard0", ["tenant0"])
            shard.state = RESTARTING
            shard.failed = "worker died"
            loop = asyncio.get_running_loop()
            futures = [loop.create_future() for _ in range(3)]
            for future in futures:
                shard.queue.put_nowait(("req", future, None))
            # A liveness sentinel mixed in must be skipped, not failed.
            shard.queue.put_nowait(("dead", "exitcode -9"))

            gateway._drain_queue(shard)

            assert shard.queue.empty()
            for future in futures:
                with pytest.raises(ShardRestartingError, match="restarting"):
                    future.result()

        asyncio.run(program())

    def test_drain_on_terminal_shard_fails_unavailable(self):
        async def program():
            gateway = _bare_gateway()
            shard = _Shard("shard0", ["tenant0"])
            shard.state = FAILED
            shard.failed = "no survivors"
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            shard.queue.put_nowait(("req", future, None))

            gateway._drain_queue(shard)

            with pytest.raises(ServiceUnavailableError, match="no survivors"):
                future.result()

        asyncio.run(program())

    def test_fail_inflight_clears_the_live_batch(self):
        async def program():
            gateway = _bare_gateway()
            shard = _Shard("shard0", ["tenant0"])
            shard.state = RESTARTING
            loop = asyncio.get_running_loop()
            futures = [loop.create_future() for _ in range(2)]
            shard.inflight = [("req", f, None) for f in futures]

            gateway._fail_inflight(shard)

            assert shard.inflight == []
            for future in futures:
                assert isinstance(future.exception(), ShardRestartingError)
            # Each future gets its OWN exception instance: seq stamping
            # in answer() mutates it, so sharing would cross-talk.
            assert futures[0].exception() is not futures[1].exception()

        asyncio.run(program())


class TestStateBookkeeping:
    def test_initial_state_and_counters(self):
        async def program():
            shard = _Shard("shard3", ["tenant0", "tenant2"])
            assert shard.state == BOOTING
            assert shard.restarts == 0
            assert shard.replacements == 0
            assert shard.last_exit is None
            assert shard.tenants == ["tenant0", "tenant2"]

        asyncio.run(program())

    def test_supervision_stats_overlay(self):
        async def program():
            gateway = _bare_gateway()
            shard = _Shard("shard0", ["tenant0"])
            shard.restarts = 2
            shard.replacements = 1
            shard.last_exit = -9
            overlay = gateway._supervision_stats(shard)
            assert overlay == {
                "restarts": 2.0,
                "replacements": 1.0,
                "last_exit": -9.0,
            }

        asyncio.run(program())

    def test_maybe_ready_counts_terminal_states(self):
        """A shard that dies terminally before ever being ready must not
        park wait_ready forever — terminal counts as concluded."""

        async def program():
            gateway = _bare_gateway()
            ready = _Shard("shard0", ["tenant0"])
            ready.state = READY
            dead = _Shard("shard1", ["tenant1"])
            dead.state = FAILED
            gateway._shards = {"shard0": ready, "shard1": dead}
            gateway._maybe_ready()
            assert gateway.ready.is_set()

        asyncio.run(program())
