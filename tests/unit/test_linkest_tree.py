"""Unit tests for the link estimator and routing-tree service."""

import math

from repro.sim.kernel import Simulator
from repro.sim.linkest import LinkEstimator
from repro.sim.routing_tree import BeaconPayload, RoutingTree


class TestLinkEstimator:
    def test_perfect_sequence_gives_quality_one(self):
        est = LinkEstimator()
        for seq in range(1, 11):
            est.hear(5, seq, now=float(seq))
        assert est.quality(5) > 0.95

    def test_gaps_reduce_quality(self):
        est = LinkEstimator()
        for seq in (1, 3, 5, 7, 9):  # every other packet missed
            est.hear(5, seq, now=float(seq))
        assert 0.3 < est.quality(5) < 0.8

    def test_unknown_neighbor_zero_quality(self):
        est = LinkEstimator()
        assert est.quality(9) == 0.0
        assert math.isinf(est.etx(9))

    def test_etx_is_inverse_square(self):
        est = LinkEstimator()
        for seq in range(1, 40):
            est.hear(1, seq, now=float(seq))
        quality = est.quality(1)
        assert est.etx(1) == 1.0 / (quality * quality)

    def test_silence_eviction(self):
        est = LinkEstimator(silence_timeout=10.0)
        est.hear(1, 1, now=0.0)
        est.hear(2, 1, now=9.0)
        est.expire(now=15.0)
        assert not est.knows(1)
        assert est.knows(2)

    def test_table_capacity_evicts_worst(self):
        est = LinkEstimator(max_neighbors=3)
        # Three good neighbors.
        for nbr in (1, 2, 3):
            for seq in range(1, 6):
                est.hear(nbr, seq, now=float(seq))
        # One with terrible quality (big gaps) - then a new arrival.
        est.hear(4, 100, now=6.0)
        est.hear(4, 200, now=7.0)  # gap of 99
        est.hear(5, 1, now=8.0)
        assert len(est) == 3
        assert not est.knows(4)  # the worst got evicted

    def test_best_neighbors_sorted(self):
        est = LinkEstimator()
        for seq in range(1, 10):
            est.hear(1, seq, now=float(seq))  # perfect
        for seq in (1, 4, 7):
            est.hear(2, seq, now=float(seq))  # gappy
        ranked = est.best_neighbors(2)
        assert [n for n, _ in ranked] == [1, 2]

    def test_decay_adapts_to_improvement(self):
        est = LinkEstimator(decay=0.9)
        for seq in (1, 10, 20):  # terrible
            est.hear(7, seq, now=float(seq))
        bad = est.quality(7)
        for seq in range(21, 70):  # now perfect
            est.hear(7, seq, now=float(seq))
        assert est.quality(7) > bad


def make_tree(node_id, sim=None, is_root=False, **kw):
    sim = sim or Simulator()
    est = LinkEstimator()
    # Give the estimator perfect knowledge of a few neighbors.
    for nbr in (0, 1, 2, 3, 4):
        if nbr != node_id:
            for seq in range(1, 8):
                est.hear(nbr, seq, now=float(seq))
    return RoutingTree(node_id, sim, est, is_root=is_root, **kw), sim


class TestRoutingTree:
    def test_root_has_zero_cost_no_parent(self):
        tree, _ = make_tree(0, is_root=True)
        assert tree.joined
        assert tree.path_etx == 0.0
        assert tree.parent is None

    def test_picks_cheapest_advertised_parent(self):
        tree, _ = make_tree(5)
        tree.on_beacon(1, BeaconPayload(path_etx=5.0, parent=0))
        tree.on_beacon(2, BeaconPayload(path_etx=1.0, parent=0))
        assert tree.parent == 2

    def test_refuses_child_as_parent(self):
        tree, _ = make_tree(5)
        tree.on_beacon(1, BeaconPayload(path_etx=0.5, parent=5))  # loop!
        assert tree.parent is None

    def test_hysteresis_keeps_current_parent(self):
        tree, _ = make_tree(5, switch_threshold=2.0)
        tree.on_beacon(1, BeaconPayload(path_etx=3.0, parent=0))
        first = tree.parent
        tree.on_beacon(2, BeaconPayload(path_etx=2.5, parent=0))  # marginally better
        assert tree.parent == first

    def test_switches_on_big_improvement(self):
        tree, _ = make_tree(5, switch_threshold=0.5)
        tree.on_beacon(1, BeaconPayload(path_etx=10.0, parent=0))
        tree.on_beacon(2, BeaconPayload(path_etx=1.0, parent=0))
        assert tree.parent == 2
        assert tree.parent_changes == 2

    def test_stale_parent_dropped(self):
        tree, sim = make_tree(5, beacon_interval=1.0, parent_timeout_beacons=2.0)
        tree.on_beacon(1, BeaconPayload(path_etx=1.0, parent=0))
        assert tree.parent == 1
        sim.run(10.0)  # way past timeout
        tree.on_beacon(2, BeaconPayload(path_etx=5.0, parent=0))
        assert tree.parent == 2

    def test_cycle_cost_ceiling(self):
        tree, _ = make_tree(5)
        tree.on_beacon(
            1, BeaconPayload(path_etx=RoutingTree.MAX_PATH_ETX + 1, parent=0)
        )
        assert tree.parent is None

    def test_neighbor_parents_tracked(self):
        tree, _ = make_tree(5)
        tree.on_beacon(3, BeaconPayload(path_etx=4.0, parent=5))
        assert tree.sender_is_child(3)
        tree.on_beacon(3, BeaconPayload(path_etx=4.0, parent=2))
        assert not tree.sender_is_child(3)


class TestDescendants:
    def test_uplink_learning(self):
        tree, _ = make_tree(1)
        tree.note_uplink(origin=9, via_child=3)
        assert tree.in_descendants(9)
        assert tree.next_hop_down(9) == 3
        assert tree.in_descendants(3)

    def test_origin_header_learning(self):
        tree, _ = make_tree(1)
        tree.note_origin_header(origin=7, origin_parent=1)
        assert tree.next_hop_down(7) == 7  # direct child

    def test_header_for_other_parent_ignored(self):
        tree, _ = make_tree(1)
        tree.note_origin_header(origin=7, origin_parent=2)
        assert not tree.in_descendants(7)

    def test_capacity_evicts_lru(self):
        tree, _ = make_tree(1, max_descendants=3)
        for origin in (10, 11, 12, 13):
            tree.note_uplink(origin=origin, via_child=2)
        assert not tree.in_descendants(10)
        assert tree.in_descendants(13)

    def test_forget_descendant(self):
        tree, _ = make_tree(1)
        tree.note_uplink(origin=9, via_child=3)
        tree.forget_descendant(9)
        assert tree.next_hop_down(9) is None

    def test_self_never_a_descendant(self):
        tree, _ = make_tree(1)
        tree.note_uplink(origin=1, via_child=2)
        assert not tree.in_descendants(1)

    def test_neighbor_list_from_estimator(self):
        tree, _ = make_tree(1)
        assert set(tree.neighbor_list()) == {0, 2, 3, 4}
        assert tree.in_neighbor_list(2)
        assert not tree.in_neighbor_list(99)
