"""Unit tests for topology generation and ground-truth connectivity."""

import math

import pytest

from repro.sim.topology import (
    Topology,
    degrade,
    from_loss_matrix,
    grid,
    indoor_testbed,
    line,
    near_square_grid,
    perfect,
    random_geometric,
)


class TestPerfect:
    def test_all_pairs_audible(self):
        topo = perfect(5)
        for i in range(5):
            for j in range(5):
                if i != j:
                    assert topo.audible(i, j)
                    assert topo.delivery(i, j) == 1.0

    def test_no_self_links(self):
        topo = perfect(4)
        for i in range(4):
            assert not topo.audible(i, i)

    def test_connected(self):
        assert perfect(6).is_connected()


class TestLine:
    def test_chain_connectivity(self):
        topo = line(5)
        assert topo.audible(0, 1) and topo.audible(1, 0)
        assert topo.audible(3, 4)
        assert not topo.audible(0, 2)

    def test_path_etx_sums_hops(self):
        topo = line(4)  # lossless: ETX 1 per hop
        assert topo.path_etx(0, 3) == pytest.approx(3.0)

    def test_lossy_line_etx(self):
        topo = line(3, link_loss=0.5)
        # per-hop ETX = 1 / (0.5 * 0.5) = 4
        assert topo.path_etx(0, 2) == pytest.approx(8.0)


class TestGrid:
    def test_four_connectivity(self):
        topo = grid(3, 3)
        # center node 4 hears its 4 lattice neighbors only
        assert sorted(topo.neighbors(4)) == [1, 3, 5, 7]

    def test_diagonal_adds_links(self):
        topo = grid(3, 3, diagonal=True)
        assert 0 in topo.neighbors(4) and 8 in topo.neighbors(4)

    def test_connected(self):
        assert grid(4, 5).is_connected()


class TestRandomGeometric:
    def test_connected_and_sized(self):
        topo = random_geometric(30, seed=5)
        assert topo.n == 30
        assert topo.is_connected()

    def test_target_degree_fraction(self):
        topo = random_geometric(40, seed=2, target_degree_fraction=0.20)
        assert 0.10 < topo.mean_degree_fraction() < 0.35

    def test_loss_rates_in_paper_band(self):
        topo = random_geometric(30, seed=4, loss_range=(0.25, 0.90))
        losses = [
            topo.loss[i][j]
            for i in range(topo.n)
            for j in range(topo.n)
            if topo.audible(i, j)
        ]
        assert min(losses) >= 0.02
        assert max(losses) <= 0.98

    def test_asymmetry_present(self):
        topo = random_geometric(30, seed=6)
        asym = [
            abs(topo.loss[i][j] - topo.loss[j][i])
            for i in range(topo.n)
            for j in range(i + 1, topo.n)
            if topo.audible(i, j) and topo.audible(j, i)
        ]
        assert any(a > 0.01 for a in asym)

    def test_deterministic_per_seed(self):
        a = random_geometric(20, seed=9)
        b = random_geometric(20, seed=9)
        assert a.loss == b.loss

    def test_different_seeds_differ(self):
        a = random_geometric(20, seed=1)
        b = random_geometric(20, seed=2)
        assert a.loss != b.loss


class TestIndoorTestbed:
    def test_paper_size_connected(self):
        topo = indoor_testbed(63)
        assert topo.n == 63
        assert topo.is_connected()
        assert topo.name.startswith("testbed-")

    def test_has_positions(self):
        topo = indoor_testbed(30)
        assert topo.positions is not None
        assert len(topo.positions) == 30

    def test_disconnected_fallback_warns_and_labels_honestly(self):
        # At n=9, seed=0 the two "rooms" land beyond radio range of the
        # corner basestation, so the generated testbed is disconnected and
        # the generator must fall back — loudly, under a fallback name,
        # never silently pretending a geo-* layout is the testbed.
        with pytest.warns(RuntimeWarning, match="disconnected"):
            topo = indoor_testbed(9, seed=0)
        assert topo.is_connected()
        assert topo.name.startswith("testbed-fallback-")

    def test_fallback_passes_asymmetry_through(self):
        with pytest.warns(RuntimeWarning):
            topo = indoor_testbed(9, seed=0, asymmetry=0.0)
        for i in range(topo.n):
            for j in range(topo.n):
                if topo.audible(i, j):
                    assert topo.loss[i][j] == pytest.approx(topo.loss[j][i])


class TestValidationAndQueries:
    def test_bad_matrix_shape_rejected(self):
        with pytest.raises(ValueError):
            Topology(n=3, loss=[[0.0, 0.0], [0.0, 0.0]])

    def test_constructor_never_mutates_callers_matrix(self):
        # Regression: the diagonal write in __post_init__ used to land in
        # the caller's rows when a matrix was passed to Topology directly.
        mine = [[0.5] * 3 for _ in range(3)]
        topo = Topology(n=3, loss=mine)
        assert mine == [[0.5] * 3 for _ in range(3)]
        assert all(topo.loss[i][i] == 1.0 for i in range(3))
        topo.loss[0][1] = 0.9
        assert mine[0][1] == 0.5

    def test_from_loss_matrix(self):
        topo = from_loss_matrix([[1.0, 0.2], [0.3, 1.0]])
        assert topo.delivery(0, 1) == pytest.approx(0.8)
        assert topo.delivery(1, 0) == pytest.approx(0.7)

    def test_in_neighbors(self):
        topo = from_loss_matrix([[1.0, 0.1, 1.0], [1.0, 1.0, 0.1], [1.0, 1.0, 1.0]])
        assert topo.in_neighbors(1) == [0]
        assert topo.in_neighbors(2) == [1]

    def test_unreachable_path_is_inf(self):
        topo = from_loss_matrix([[1.0, 0.0, 1.0], [0.0, 1.0, 1.0], [1.0, 1.0, 1.0]])
        assert math.isinf(topo.path_etx(0, 2))

    def test_path_etx_self_is_zero(self):
        assert perfect(3).path_etx(1, 1) == 0.0

    def test_link_etx_requires_both_directions(self):
        topo = from_loss_matrix([[1.0, 0.0], [1.0, 1.0]])  # one-way link
        assert math.isinf(topo.link_etx(0, 1))


class TestNearSquareGrid:
    def test_divisor_pair_closest_to_square(self):
        topo = near_square_grid(63)  # 7 x 9
        assert topo.n == 63
        assert topo.name == "grid-7x9"

    def test_prime_degenerates_to_line(self):
        topo = near_square_grid(13)
        assert topo.n == 13
        assert topo.name == "grid-1x13"
        assert topo.is_connected()

    def test_square_and_loss(self):
        topo = near_square_grid(16, link_loss=0.3)
        assert topo.name == "grid-4x4"
        assert topo.loss[0][1] == pytest.approx(0.3)


class TestDegrade:
    def test_compounds_loss_on_audible_links(self):
        topo = degrade(line(4, link_loss=0.2), 0.5)
        assert topo.loss[0][1] == pytest.approx(1.0 - 0.8 * 0.5)
        # Out-of-range pairs stay out of range.
        assert not topo.audible(0, 2)
        assert topo.name.endswith("+loss0.5")

    def test_zero_is_identity(self):
        topo = line(4)
        assert degrade(topo, 0.0) is topo

    def test_preserves_connectivity(self):
        topo = degrade(indoor_testbed(63, seed=8), 0.5)
        assert topo.is_connected()

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            degrade(line(3), 1.0)
        with pytest.raises(ValueError):
            degrade(line(3), -0.1)


class TestXLSizes:
    """Generator invariants at the scaling_xl grid's sizes: connected,
    correctly sized, basestation reachable both ways."""

    @pytest.mark.parametrize("n", [128, 192, 256])
    def test_testbed_connected_past_paper_scale(self, n):
        topo = indoor_testbed(n, seed=8)
        assert topo.n == n
        assert topo.is_connected()

    def test_geometric_connected_at_double_scale(self):
        topo = random_geometric(128, seed=3)
        assert topo.n == 128
        assert topo.is_connected()
        # The degree target still holds well past the paper's sizes.
        assert 0.1 < topo.mean_degree_fraction() < 0.35

    @pytest.mark.parametrize("builder", [line, near_square_grid])
    def test_lattices_connected_at_256(self, builder):
        topo = builder(256)
        assert topo.n == 256
        assert topo.is_connected()
