"""The framing layer: encode/decode round trips, the incremental
decoder's defensive behavior (truncation waits, violations poison), and
the frame constructors' payload schemas.
"""

import json
import struct

import pytest

from repro.service.api import (
    PROTOCOL_VERSION,
    ProtocolError,
    ProtocolVersionError,
    QueryAnswer,
    QueryRequest,
    ServiceError,
    ServiceStats,
)
from repro.service.protocol import (
    HEADER_SIZE,
    MAX_FRAME_SIZE,
    FrameDecoder,
    FrameType,
    credit_frame,
    decode_frames,
    encode_frame,
    error_frame,
    hello_frame,
    metrics_frame,
    negotiate_hello,
    pong_frame,
    request_frame,
    response_frame,
    stats_frame,
    stats_request_frame,
    welcome_frame,
)


def one_frame(data: bytes):
    frames = decode_frames(data)
    assert len(frames) == 1
    return frames[0]


class TestEncodeDecode:
    def test_round_trip(self):
        data = encode_frame(FrameType.REQUEST, {"a": 1}, seq=7)
        frame = one_frame(data)
        assert frame.type == FrameType.REQUEST
        assert frame.seq == 7
        assert frame.version == PROTOCOL_VERSION
        assert frame.payload == {"a": 1}

    def test_empty_payload_defaults_to_object(self):
        frame = one_frame(encode_frame(FrameType.PING))
        assert frame.payload == {}

    def test_many_frames_one_buffer(self):
        blob = b"".join(
            encode_frame(FrameType.REQUEST, {"i": i}, seq=i) for i in range(20)
        )
        frames = decode_frames(blob)
        assert [f.payload["i"] for f in frames] == list(range(20))

    def test_oversize_payload_refused_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame(FrameType.REQUEST, {"x": "y" * MAX_FRAME_SIZE})

    def test_trailing_bytes_rejected_by_decode_frames(self):
        data = encode_frame(FrameType.PING) + b"\x00"
        with pytest.raises(ProtocolError, match="trailing"):
            decode_frames(data)


class TestFrameDecoder:
    def test_byte_at_a_time_feeding(self):
        data = encode_frame(FrameType.RESPONSE, {"ok": True}, seq=3) * 3
        decoder = FrameDecoder()
        frames = []
        for i in range(len(data)):
            frames.extend(decoder.feed(data[i : i + 1]))
        assert len(frames) == 3
        assert all(f.payload == {"ok": True} for f in frames)
        assert decoder.buffered == 0

    def test_truncated_frame_waits(self):
        data = encode_frame(FrameType.REQUEST, {"k": "v"})
        decoder = FrameDecoder()
        assert decoder.feed(data[:-1]) == []
        assert decoder.buffered == len(data) - 1
        frames = decoder.feed(data[-1:])
        assert len(frames) == 1

    def test_oversize_length_prefix_poisons(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(struct.pack(">I", MAX_FRAME_SIZE + 1))
        # Poisoned: even valid bytes now raise.
        with pytest.raises(ProtocolError, match="already failed"):
            decoder.feed(encode_frame(FrameType.PING))

    def test_undersize_length_prefix_poisons(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="shorter"):
            decoder.feed(struct.pack(">I", 2) + b"\x01\x01")

    def test_unknown_frame_type_poisons(self):
        data = bytearray(encode_frame(FrameType.PING))
        data[4] = 200  # type byte
        with pytest.raises(ProtocolError, match="unknown frame type"):
            FrameDecoder().feed(bytes(data))

    def test_version_skew_rejected_except_hello(self):
        wrong = encode_frame(FrameType.REQUEST, {}, version=PROTOCOL_VERSION + 1)
        with pytest.raises(ProtocolError, match="version"):
            FrameDecoder().feed(wrong)
        # HELLO is exempt: it carries the version under negotiation.
        hello = hello_frame(version=PROTOCOL_VERSION + 1)
        frames = FrameDecoder().feed(hello)
        assert frames[0].version == PROTOCOL_VERSION + 1

    def test_version_agnostic_mode(self):
        wrong = encode_frame(FrameType.REQUEST, {}, version=9)
        frames = FrameDecoder(require_version=None).feed(wrong)
        assert frames[0].version == 9

    def test_non_json_payload_poisons(self):
        body = b"\xff\xfe not json"
        header = struct.pack(">BBI", int(FrameType.REQUEST), PROTOCOL_VERSION, 0)
        data = struct.pack(">I", len(header) + len(body)) + header + body
        with pytest.raises(ProtocolError, match="JSON"):
            FrameDecoder().feed(data)

    def test_non_object_payload_poisons(self):
        body = json.dumps([1, 2, 3]).encode()
        header = struct.pack(">BBI", int(FrameType.REQUEST), PROTOCOL_VERSION, 0)
        data = struct.pack(">I", len(header) + len(body)) + header + body
        with pytest.raises(ProtocolError, match="object"):
            FrameDecoder().feed(data)

    def test_header_size_constant(self):
        # Length prefix + header, plus the 2-byte empty JSON object.
        data = encode_frame(FrameType.PING)
        assert len(data) == HEADER_SIZE + 2
        frame = one_frame(data)
        assert frame.payload == {}


class TestConstructors:
    def test_hello_welcome(self):
        hello = one_frame(hello_frame(client="c", subscribe_metrics=True))
        assert hello.type == FrameType.HELLO
        assert hello.payload["protocol"] == PROTOCOL_VERSION
        assert hello.payload["metrics"] is True
        version, wants = negotiate_hello(hello.payload)
        assert version == PROTOCOL_VERSION and wants is True

        welcome = one_frame(welcome_frame(["t0", "t1"], credits=8, workers=2))
        assert welcome.type == FrameType.WELCOME
        assert welcome.payload == {
            "protocol": PROTOCOL_VERSION,
            "tenants": ["t0", "t1"],
            "credits": 8,
            "workers": 2,
        }

    def test_negotiate_hello_version_skew(self):
        with pytest.raises(ProtocolVersionError):
            negotiate_hello({"protocol": PROTOCOL_VERSION + 1})
        with pytest.raises(ProtocolError):
            negotiate_hello({"protocol": "martian"})

    def test_request_response_error(self):
        request = QueryRequest(tenant="t0", attr=1, lo=2, hi=3, seq=5)
        frame = one_frame(request_frame(request))
        assert frame.type == FrameType.REQUEST and frame.seq == 5
        assert QueryRequest.from_wire(frame.payload) == request

        answer = QueryAnswer(
            tenant="t0", seq=5, attr=1, lo=2, hi=3, shard="shard0"
        )
        frame = one_frame(response_frame(answer))
        assert frame.type == FrameType.RESPONSE and frame.seq == 5
        assert QueryAnswer.from_wire(frame.payload) == answer

        error = ServiceError(code="shed", message="full", seq=5)
        frame = one_frame(error_frame(error))
        assert frame.type == FrameType.ERROR and frame.seq == 5
        assert ServiceError.from_wire(frame.payload) == error

    def test_stats_metrics_credit_pong(self):
        stats = ServiceStats(tenants={"t": {"x": 1.0}})
        frame = one_frame(stats_frame(stats, seq=2))
        assert frame.type == FrameType.STATS
        assert ServiceStats.from_wire(frame.payload) == stats
        assert one_frame(stats_request_frame(2)).payload == {}

        frame = one_frame(
            metrics_frame("shard1", 4, {"queue_depth": 1.0}, {"t": {"x": 2.0}})
        )
        assert frame.type == FrameType.METRICS
        assert frame.payload["shard"] == "shard1"
        assert frame.payload["tick"] == 4
        assert frame.payload["stats"] == {"queue_depth": 1.0}

        assert one_frame(credit_frame(16)).payload == {"credits": 16}
        pong = one_frame(pong_frame(seq=9, tenants=["t0"]))
        assert pong.seq == 9 and pong.payload == {"tenants": ["t0"]}
