"""The serving layer in isolation: cache, admission control, batching,
and the asyncio gateway — all against a fake deployment, so every
behavior (bucket math, epoch invalidation, shedding, coalescing,
concurrent-client determinism) is pinned without running a simulation.
"""

import asyncio
import json

from repro.core.config import ScoopConfig, ValueDomain
from repro.service.gateway import (
    AnswerCache,
    QueryGateway,
    ServiceLimits,
    TenantService,
    percentile,
    serve_gateway,
)

DOMAIN = ValueDomain(0, 100)


class FakeResult:
    def __init__(self, readings):
        self.readings = readings
        self.closed = True


class FakeDeployment:
    """Duck-typed stand-in: answers every query with one reading per
    value in the requested range, advances a fake clock, and lets tests
    bump the index epoch by hand."""

    def __init__(self, reply_window=8.0):
        self.config = ScoopConfig(domain=DOMAIN, query_reply_window=reply_window)
        self.now = 0.0
        self.index_epoch = 0
        self.queries = []

    def query(self, attr=0, lo=None, hi=None, wait=True, **_kw):
        self.queries.append((attr, lo, hi))
        return FakeResult([(value, self.now, 1) for value in range(lo, hi + 1, 5)])

    def advance(self, dt):
        self.now += dt


def make_service(name: str = "t", **limit_kw) -> TenantService:
    limits = ServiceLimits(**limit_kw) if limit_kw else ServiceLimits()
    return TenantService(name, FakeDeployment(), limits=limits)


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0


class TestAnswerCache:
    def test_bucket_range_alignment(self):
        cache = AnswerCache(buckets=16)
        # width = ceil(101 / 16) = 7: buckets [0,6], [7,13], ...
        assert cache.bucket_range(DOMAIN, 0, 0) == (0, 6)
        assert cache.bucket_range(DOMAIN, 10, 12) == (7, 13)
        assert cache.bucket_range(DOMAIN, 5, 10) == (0, 13)
        assert cache.bucket_range(DOMAIN, 98, 100) == (98, 100)

    def test_no_quantization_means_whole_domain(self):
        for buckets in (0, 1):
            cache = AnswerCache(buckets=buckets)
            assert cache.bucket_range(DOMAIN, 40, 42) == (0, 100)

    def test_epoch_keys_miss_across_epochs(self):
        cache = AnswerCache()
        cache.put(0, 0, 6, epoch=1, readings=[(3, 1.0, 2)], stored_at=1.0)
        assert cache.get(0, 0, 6, epoch=1) is not None
        assert cache.get(0, 0, 6, epoch=2) is None

    def test_lru_eviction(self):
        cache = AnswerCache(capacity=2)
        for i in range(3):
            cache.put(0, i, i, epoch=0, readings=[], stored_at=0.0)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(0, 0, 0, epoch=0) is None  # the oldest went


class TestAdmission:
    def test_miss_then_batch_then_hit(self):
        service = make_service()
        dep = service.deployment
        first = service.submit(attr=0, lo=10, hi=12)
        assert first.status == "pending"
        answered = service.process_batch()
        assert [t.seq for t in answered] == [first.seq]
        assert first.status == "ok" and not first.cache_hit
        assert first.latency_s == dep.config.query_reply_window
        assert all(10 <= value <= 12 for value, _ts, _n in first.readings)
        # Same bucket again: answered from cache, no new network query.
        dep.advance(4.0)
        hit = service.submit(attr=0, lo=11, hi=13)
        assert hit.status == "ok" and hit.cache_hit
        assert hit.staleness_s == 4.0
        assert len(dep.queries) == 1

    def test_forced_epoch_bump_invalidates_cache(self):
        service = make_service()
        dep = service.deployment
        service.submit(attr=0, lo=10, hi=12)
        service.process_batch()
        dep.index_epoch += 1  # a remap disseminated new indexes
        again = service.submit(attr=0, lo=10, hi=12)
        assert again.status == "pending"  # stale answer was not served
        service.process_batch()
        assert again.status == "ok"
        assert len(dep.queries) == 2

    def test_shed_beyond_queue_depth(self):
        service = make_service(queue_depth=2, cache_buckets=16)
        admitted = [service.submit(attr=0, lo=i * 20, hi=i * 20) for i in range(2)]
        shed = service.submit(attr=0, lo=90, hi=90)
        assert [t.status for t in admitted] == ["pending", "pending"]
        assert shed.status == "shed"
        snap = service.snapshot()
        assert snap["requests_shed"] == 1.0
        assert 0 < snap["shed_rate"] < 1

    def test_same_bucket_requests_coalesce_into_one_query(self):
        service = make_service()
        dep = service.deployment
        a = service.submit(attr=0, lo=10, hi=11)
        b = service.submit(attr=0, lo=12, hi=13)  # same [7, 13] bucket
        service.process_batch()
        assert a.status == b.status == "ok"
        assert len(dep.queries) == 1
        assert service.coalesced == 1

    def test_batch_capacity_leaves_remainder_queued(self):
        service = make_service(batch_capacity=1, queue_depth=8)
        a = service.submit(attr=0, lo=0, hi=0)
        b = service.submit(attr=0, lo=50, hi=50)  # different bucket
        service.process_batch()
        assert a.status == "ok"
        assert b.status == "pending"
        assert service.backlog == 1
        service.process_batch()
        assert b.status == "ok"

    def test_malformed_requests_raise_not_shed(self):
        service = make_service()
        for lo, hi in ((-1, 5), (5, 101), (30, 10)):
            try:
                service.submit(attr=0, lo=lo, hi=hi)
                raise AssertionError("expected ValueError")
            except ValueError as exc:
                assert "malformed request" in str(exc)
        try:
            service.submit(attr=9)
            raise AssertionError("expected ValueError")
        except ValueError as exc:
            assert "attribute id 9" in str(exc)
        assert service.offered == 0  # rejections are not load

    def test_backdated_arrival_gives_positive_hit_latency(self):
        service = make_service()
        dep = service.deployment
        service.submit(attr=0, lo=10, hi=12)
        service.process_batch()
        dep.advance(2.0)
        hit = service.submit(attr=0, lo=10, hi=12, arrival=dep.now - 3.0)
        assert hit.cache_hit
        assert hit.latency_s == 3.0


def run_gateway_program(n_clients=4, per_client=5):
    """One fixed concurrent-client program against a two-tenant gateway;
    returns the ordered list of (client, status, cache_hit) outcomes."""

    async def program():
        services = {
            "tenant0": make_service("tenant0"),
            "tenant1": make_service("tenant1"),
        }
        gateway = QueryGateway(services, batch_delay=0)
        await gateway.start()
        outcomes = []

        async def client(idx):
            tenant = f"tenant{idx % 2}"
            for i in range(per_client):
                lo = (idx * 17 + i * 11) % 90
                ticket = await gateway.query(tenant, 0, lo, lo + 5)
                outcomes.append((idx, ticket.status, ticket.cache_hit))

        await asyncio.gather(*(client(i) for i in range(n_clients)))
        stats = gateway.stats()
        await gateway.close()
        return outcomes, stats

    return asyncio.run(program())


class TestGateway:
    def test_concurrent_clients_deterministic(self):
        first_outcomes, first_stats = run_gateway_program()
        second_outcomes, second_stats = run_gateway_program()
        assert first_outcomes == second_outcomes
        assert first_stats == second_stats
        assert all(status == "ok" for _i, status, _hit in first_outcomes)
        served = sum(s["requests_served"] for s in first_stats.values())
        assert served == 20

    def test_unknown_tenant_rejected(self):
        async def program():
            gateway = QueryGateway({"tenant0": make_service("tenant0")}, batch_delay=0)
            await gateway.start()
            try:
                await gateway.query("nope", 0, 1, 2)
                raise AssertionError("expected ValueError")
            except ValueError as exc:
                assert "unknown tenant" in str(exc)
            finally:
                await gateway.close()

        asyncio.run(program())

    def test_closed_gateway_refuses_queries(self):
        async def program():
            gateway = QueryGateway({"tenant0": make_service("tenant0")}, batch_delay=0)
            await gateway.start()
            await gateway.close()
            try:
                await gateway.query("tenant0", 0, 1, 2)
                raise AssertionError("expected RuntimeError")
            except RuntimeError as exc:
                assert "closed" in str(exc)

        asyncio.run(program())


class TestServeGateway:
    def test_json_lines_protocol(self):
        async def program():
            gateway = QueryGateway({"tenant0": make_service("tenant0")}, batch_delay=0)
            await gateway.start()
            server = await serve_gateway(gateway, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def roundtrip(payload):
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            pong = await roundtrip({"op": "ping"})
            assert pong == {"status": "ok", "op": "ping", "tenants": ["tenant0"]}

            answer = await roundtrip({"op": "query", "lo": 10, "hi": 14})
            assert answer["status"] == "ok"
            assert answer["tenant"] == "tenant0"
            assert answer["n_readings"] == len(answer["readings"])
            assert all(10 <= r[0] <= 14 for r in answer["readings"])

            bad = await roundtrip({"op": "query", "lo": -4, "hi": 5})
            assert bad["status"] == "error"
            assert "malformed request" in bad["error"]

            unknown = await roundtrip({"op": "frobnicate"})
            assert unknown["status"] == "error"
            assert "unknown op" in unknown["error"]

            stats = await roundtrip({"op": "stats"})
            assert stats["status"] == "ok"
            assert stats["stats"]["tenant0"]["requests_served"] == 1.0

            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await gateway.close()

        asyncio.run(program())


class TestSnapshot:
    def test_snapshot_shape(self):
        service = make_service()
        service.submit(attr=0, lo=10, hi=12)
        service.process_batch()
        service.submit(attr=0, lo=10, hi=12)
        snap = service.snapshot()
        assert all(isinstance(v, float) for v in snap.values())
        assert snap["requests_offered"] == 2.0
        assert snap["requests_served"] == 2.0
        assert snap["cache_hits"] == 1.0
        assert snap["cache_hit_rate"] == 0.5
        assert snap["queries_issued"] == 1.0
        assert snap["latency_p99_s"] >= snap["latency_p95_s"] >= snap["latency_p50_s"]
