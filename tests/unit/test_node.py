"""Unit tests for ScoopNode: sampling, batching, routing rules, queries.

These run tiny fully-connected lossless networks so protocol behaviour is
deterministic and assertions can be exact.
"""


from repro.core.config import ScoopConfig, ValueDomain
from repro.core.messages import DataMessage, QueryMessage
from repro.core.storage_index import STORE_LOCAL, StorageIndex
from repro.sim.topology import perfect
from tests.conftest import build_scoop_network

DOMAIN = ValueDomain(0, 100)


def install_index(net, base, nodes, owner_by_value, sid=1):
    """Install a storage index directly on every node (bypass Trickle)."""
    index = StorageIndex.single_owner(sid, DOMAIN, owner_by_value)
    base.current_index = index
    base.index_history.append((net.sim.now, index))
    base._sid_counter = sid
    for node in nodes:
        node.current_index = index
    return index


def stabilised(config=None, n=6, topo=None):
    topo = topo or perfect(n)
    config = config or ScoopConfig(n_nodes=topo.n, domain=DOMAIN, beacon_interval=5.0)
    net, base, nodes = build_scoop_network(topo, config=config)
    net.boot_all(within=2.0)
    net.run(60.0)
    assert net.tree_converged()
    return net, base, nodes


class TestLocalStorageBeforeIndex:
    def test_stores_locally_without_index(self):
        net, base, nodes = stabilised()
        node = nodes[0]
        node.data_source = lambda n, t: 42
        node.sampling = True
        node._sample()
        assert len(node.flash) == 1
        assert node.flash.all_readings()[0].value == 42

    def test_tracker_records_unowned(self):
        net, base, nodes = stabilised()
        node = nodes[0]
        node.data_source = lambda n, t: 13
        node.sampling = True
        node._sample()
        assert net.tracker.readings[-1].intended_owner is None
        assert net.tracker.storage_success_rate() == 1.0


class TestRoutingRules:
    def test_rule2_owner_stores_immediately(self):
        net, base, nodes = stabilised()
        install_index(net, base, nodes, [1] * DOMAIN.size)
        node = nodes[0]  # node id 1 owns everything
        node.data_source = lambda n, t: 50
        node.sampling = True
        node._sample()
        assert len(node.flash) == 1

    def test_rule3_neighbor_shortcut(self):
        net, base, nodes = stabilised()
        install_index(net, base, nodes, [3] * DOMAIN.size)
        producer = nodes[0]  # node 1
        producer.route_data(DataMessage(readings=[(5, 0.0, 1)], owner=3, sid=1))
        net.run(net.sim.now + 2.0)
        owner = nodes[2]  # node id 3
        assert len(owner.flash) == 1

    def test_rule4_base_stores_fallback(self):
        net, base, nodes = stabilised()
        # Owner 99 does not exist; packets climb to the base and stay there.
        msg = DataMessage(readings=[(5, 0.0, 1)], owner=99, sid=1, force_base=True)
        nodes[0].route_data(msg)
        net.run(net.sim.now + 3.0)
        assert len(base.flash) == 1

    def test_rule1_newer_index_rewrites(self):
        net, base, nodes = stabilised()
        install_index(net, base, nodes, [2] * DOMAIN.size, sid=1)
        # Node 5 has a NEWER index mapping everything to node 5.
        newer = StorageIndex.single_owner(2, DOMAIN, [5] * DOMAIN.size)
        nodes[4].current_index = newer  # node id 5
        # Producer (node 1, old index) thinks owner is 2; ships via radio.
        nodes[0].route_data(DataMessage(readings=[(9, 0.0, 1)], owner=5, sid=0))
        net.run(net.sim.now + 3.0)
        # Whoever got it, the reading must be stored somewhere.
        stored = sum(len(m.flash) for m in [base] + nodes)
        assert stored >= 1

    def test_hop_budget_forces_base(self, small_config):
        net, base, nodes = stabilised(config=small_config)
        install_index(net, base, nodes, [4] * DOMAIN.size)
        msg = DataMessage(
            readings=[(5, 0.0, 1)],
            owner=99,  # unreachable owner
            sid=1,
            hops=small_config.max_data_hops,
        )
        nodes[0].route_data(msg)
        net.run(net.sim.now + 3.0)
        assert len(base.flash) == 1

    def test_orphan_stores_locally(self):
        config = ScoopConfig(n_nodes=3, domain=DOMAIN)
        topo = perfect(3)
        net, base, nodes = build_scoop_network(topo, config=config)
        node = nodes[0]
        node.booted = True  # booted but no tree yet
        node.current_index = StorageIndex.single_owner(1, DOMAIN, [99] * DOMAIN.size)
        node.route_data(DataMessage(readings=[(5, 0.0, 1)], owner=99, sid=1))
        assert len(node.flash) == 1


class TestBatching:
    def test_batch_fills_to_capacity(self, small_config):
        net, base, nodes = stabilised(config=small_config)
        install_index(net, base, nodes, [3] * DOMAIN.size)
        producer = nodes[0]
        for _ in range(small_config.batch_size - 1):
            producer._add_to_batch((5, net.sim.now, 1), 3)
            assert producer._batches[0].readings  # still buffered
        producer._add_to_batch((5, net.sim.now, 1), 3)
        assert not producer._batches[0].readings  # flushed at batch_size

    def test_owner_change_flushes(self, small_config):
        net, base, nodes = stabilised(config=small_config)
        install_index(net, base, nodes, [3] * DOMAIN.size)
        producer = nodes[0]
        producer._add_to_batch((5, net.sim.now, 1), 3)
        producer._add_to_batch((6, net.sim.now, 1), 4)  # different owner
        assert producer._batches[0].owner == 4
        assert len(producer._batches[0].readings) == 1

    def test_timeout_flushes(self, small_config):
        net, base, nodes = stabilised(config=small_config)
        install_index(net, base, nodes, [3] * DOMAIN.size)
        producer = nodes[0]
        producer._add_to_batch((5, net.sim.now, 1), 3)
        net.run(net.sim.now + small_config.batch_flush_timeout + 1.0)
        assert not producer._batches[0].readings
        net.run(net.sim.now + 2.0)
        assert len(nodes[2].flash) == 1  # arrived at owner 3

    def test_stop_sampling_flushes(self, small_config):
        net, base, nodes = stabilised(config=small_config)
        install_index(net, base, nodes, [3] * DOMAIN.size)
        producer = nodes[0]
        producer.data_source = lambda n, t: 5
        producer.sampling = True
        producer._add_to_batch((5, net.sim.now, 1), 3)
        producer.stop_sampling()
        assert not producer._batches[0].readings


class TestOwnerChoice:
    def test_store_local_sentinel_means_self(self):
        net, base, nodes = stabilised()
        index = StorageIndex.uniform(1, DOMAIN, STORE_LOCAL)
        nodes[0].current_index = index
        assert nodes[0]._choose_owner(50) == 1

    def test_prefers_self_in_owner_set(self):
        net, base, nodes = stabilised()
        index = StorageIndex(1, DOMAIN, [(1, 4)] * DOMAIN.size)
        nodes[0].current_index = index  # node id 1
        assert nodes[0]._choose_owner(10) == 1

    def test_prefers_reachable_owner(self):
        net, base, nodes = stabilised()
        index = StorageIndex(1, DOMAIN, [(4, 5)] * DOMAIN.size)
        nodes[1].current_index = index  # node id 2, hears everyone
        assert nodes[1]._choose_owner(10) in (4, 5)


class TestSummaries:
    def test_summary_carries_recent_statistics(self):
        net, base, nodes = stabilised()
        node = nodes[0]
        for i, v in enumerate((10, 20, 30)):
            node.recent.add(float(i), v)
        node.readings_since_summary = 3
        summary = node._build_summary()
        assert summary.min_value == 10
        assert summary.max_value == 30
        assert summary.sum_values == 60
        assert summary.readings_since_last == 3
        assert summary.histogram is not None

    def test_empty_summary_has_no_histogram(self):
        net, base, nodes = stabilised()
        summary = nodes[0]._build_summary()
        assert summary.histogram is None

    def test_summary_reaches_base(self):
        net, base, nodes = stabilised()
        node = nodes[0]
        node.recent.add(0.0, 55)
        node._send_summary()
        net.run(net.sim.now + 2.0)
        assert 1 in base.stats.records

    def test_summary_lists_neighbors_sorted(self):
        net, base, nodes = stabilised()
        node = nodes[0]
        node.recent.add(0.0, 5)
        summary = node._build_summary()
        qualities = [q for _n, q in summary.neighbors]
        assert qualities == sorted(qualities, reverse=True)
        assert len(summary.neighbors) <= node.config.summary_neighbors


class TestQueryHandling:
    def _query(self, bitmap, t_hi=1000.0, value_range=(0, 100), qid=901):
        return QueryMessage(
            query_id=qid,
            bitmap=frozenset(bitmap),
            time_range=(0.0, t_hi),
            value_range=value_range,
            issued_at=0.0,
        )

    def test_targeted_node_answers(self):
        net, base, nodes = stabilised()
        node = nodes[0]
        node.flash.store(
            __import__(
                "repro.sim.flash", fromlist=["StoredReading"]
            ).StoredReading(origin=1, value=50, timestamp=10.0)
        )
        query = self._query({1})
        base._open_queries[901] = __import__(
            "repro.core.query", fromlist=["QueryResult"]
        ).QueryResult(
            query=__import__("repro.core.query", fromlist=["Query"]).Query(
                time_range=(0.0, 1000.0), value_range=(0, 100), query_id=901
            ),
            nodes_targeted={1},
        )
        node._handle_query_frame_for_test = None
        from repro.sim.packets import Frame, FrameKind

        node.on_receive(
            Frame(src=0, dst=-1, kind=FrameKind.QUERY, payload=query, seqno=1)
        )
        net.run(net.sim.now + 8.0)
        result = base._open_queries.get(901) or base.query_log[-1]
        assert 1 in result.nodes_replied
        assert (50, 10.0, 1) in result.readings

    def test_untargeted_node_does_not_answer(self):
        net, base, nodes = stabilised()
        from repro.sim.packets import Frame, FrameKind

        query = self._query({3}, qid=902)
        spy = nodes[0]
        spy.on_receive(
            Frame(src=0, dst=-1, kind=FrameKind.QUERY, payload=query, seqno=1)
        )
        assert 902 in spy._queries_heard

    def test_duplicate_queries_suppressed(self):
        net, base, nodes = stabilised()
        from repro.sim.packets import Frame, FrameKind

        query = self._query({1}, qid=903)
        node = nodes[0]
        for seq in (1, 2):
            node.on_receive(
                Frame(src=0, dst=-1, kind=FrameKind.QUERY, payload=query, seqno=seq)
            )
        assert node._queries_heard[903] == 2  # counted, not re-answered
