"""Unit tests for Trickle dissemination, flash storage and energy/metrics."""

from dataclasses import dataclass

import pytest

from repro.sim.energy import (
    FLASH_WRITE_NJ_PER_BIT,
    RADIO_NJ_PER_BIT,
    EnergyMeter,
)
from repro.sim.flash import Flash, RecentReadings, StoredReading
from repro.sim.kernel import Simulator
from repro.sim.metrics import DeliveryTracker, MessageCensus
from repro.sim.packets import Frame, FrameKind
from repro.sim.trickle import Advertisement, ChunkDisseminator, Trickle


@dataclass(frozen=True)
class FakeChunk:
    sid: int
    index: int
    total: int

    def wire_bytes(self):
        return 10


class TestTrickleTimer:
    def test_transmits_when_unsuppressed(self):
        sim = Simulator(seed=1)
        sent = []
        trickle = Trickle(sim, lambda: sent.append(sim.now), imin=1.0, imax=4.0, k=1)
        trickle.start()
        sim.run(20.0)
        assert len(sent) >= 3

    def test_interval_doubles_to_imax(self):
        sim = Simulator(seed=2)
        trickle = Trickle(sim, lambda: None, imin=1.0, imax=8.0)
        trickle.start()
        sim.run(40.0)
        assert trickle.interval == 8.0

    def test_suppression_with_k(self):
        sim = Simulator(seed=3)
        sent = []
        trickle = Trickle(sim, lambda: sent.append(1), imin=1.0, imax=1.0, k=1)
        trickle.start()

        def chatter():
            trickle.heard_consistent()
            sim.schedule(0.2, chatter)

        sim.schedule(0.01, chatter)
        sim.run(20.0)
        assert trickle.suppressions > 0
        assert len(sent) < 5

    def test_inconsistent_resets_interval(self):
        sim = Simulator(seed=4)
        trickle = Trickle(sim, lambda: None, imin=1.0, imax=16.0)
        trickle.start()
        sim.run(40.0)
        assert trickle.interval == 16.0
        trickle.heard_inconsistent()
        assert trickle.interval == 1.0

    def test_stop_halts(self):
        sim = Simulator(seed=5)
        sent = []
        trickle = Trickle(sim, lambda: sent.append(1), imin=1.0, imax=1.0, k=9)
        trickle.start()
        sim.run(3.0)
        trickle.stop()
        count = len(sent)
        sim.run(10.0)
        assert len(sent) == count

    def test_invalid_intervals_rejected(self):
        with pytest.raises(ValueError):
            Trickle(Simulator(), lambda: None, imin=0.0, imax=1.0)
        with pytest.raises(ValueError):
            Trickle(Simulator(), lambda: None, imin=2.0, imax=1.0)


def make_disseminator(sim, outbox_advert, outbox_chunk, completed):
    return ChunkDisseminator(
        sim,
        send_advert=outbox_advert.append,
        send_chunk=outbox_chunk.append,
        on_complete=lambda sid, chunks: completed.append((sid, len(chunks))),
        imin=0.5,
        imax=4.0,
    )


class TestChunkDisseminator:
    def test_seed_installs_version(self):
        sim = Simulator(seed=6)
        d = make_disseminator(sim, [], [], [])
        chunks = [FakeChunk(1, i, 3) for i in range(3)]
        d.seed(1, chunks)
        assert d.sid == 1
        assert d.complete

    def test_seed_must_be_newer(self):
        sim = Simulator(seed=6)
        d = make_disseminator(sim, [], [], [])
        d.seed(2, [FakeChunk(2, 0, 1)])
        with pytest.raises(ValueError):
            d.seed(1, [FakeChunk(1, 0, 1)])

    def test_receiving_all_chunks_completes_once(self):
        sim = Simulator(seed=7)
        completed = []
        d = make_disseminator(sim, [], [], completed)
        for i in range(3):
            d.on_chunk(FakeChunk(5, i, 3))
        d.on_chunk(FakeChunk(5, 1, 3))  # duplicate
        assert completed == [(5, 3)]

    def test_newer_version_discards_partial_old(self):
        sim = Simulator(seed=8)
        completed = []
        d = make_disseminator(sim, [], [], completed)
        d.on_chunk(FakeChunk(1, 0, 2))
        d.on_chunk(FakeChunk(2, 0, 1))  # newer, single-chunk version
        assert completed == [(2, 1)]
        assert d.sid == 2

    def test_stale_chunk_ignored(self):
        sim = Simulator(seed=9)
        completed = []
        d = make_disseminator(sim, [], [], completed)
        d.on_chunk(FakeChunk(3, 0, 1))
        d.on_chunk(FakeChunk(1, 0, 1))  # old version
        assert d.sid == 3

    def test_peer_behind_triggers_chunk_send(self):
        sim = Simulator(seed=10)
        chunk_out = []
        d = make_disseminator(sim, [], chunk_out, [])
        d.seed(4, [FakeChunk(4, 0, 2), FakeChunk(4, 1, 2)])
        d.on_advert(Advertisement(sid=3, have=frozenset({0}), total=1))
        sim.run(2.0)
        assert len(chunk_out) >= 1

    def test_matching_advert_is_consistent(self):
        sim = Simulator(seed=11)
        d = make_disseminator(sim, [], [], [])
        d.seed(4, [FakeChunk(4, 0, 1)])
        before = d.trickle.interval
        d.on_advert(Advertisement(sid=4, have=frozenset({0}), total=1))
        assert d.trickle._counter >= 1  # counted as consistent


class TestRecentReadings:
    def test_ring_keeps_latest(self):
        ring = RecentReadings(capacity=3)
        for i in range(5):
            ring.add(float(i), i)
        assert sorted(ring.values()) == [2, 3, 4]
        assert len(ring) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RecentReadings(0)


class TestFlash:
    def test_store_and_scan(self):
        flash = Flash(capacity_readings=100)
        flash.store(StoredReading(origin=1, value=10, timestamp=1.0))
        flash.store(StoredReading(origin=2, value=20, timestamp=2.0))
        hits = flash.scan(value_range=(15, 25))
        assert [r.value for r in hits] == [20]

    def test_time_range_scan(self):
        flash = Flash()
        for t in range(10):
            flash.store(StoredReading(origin=1, value=t, timestamp=float(t)))
        hits = flash.scan(time_range=(3.0, 5.0))
        assert [r.value for r in hits] == [3, 4, 5]

    def test_predicate_scan(self):
        flash = Flash()
        flash.store(StoredReading(origin=1, value=5, timestamp=0.0))
        flash.store(StoredReading(origin=2, value=5, timestamp=0.0))
        hits = flash.scan(predicate=lambda r: r.origin == 2)
        assert len(hits) == 1

    def test_circular_overwrite(self):
        flash = Flash(capacity_readings=3)
        for i in range(5):
            flash.store(StoredReading(origin=1, value=i, timestamp=float(i)))
        assert len(flash) == 3
        assert flash.overwrites == 2
        values = {r.value for r in flash.all_readings()}
        assert values == {2, 3, 4}

    def test_energy_billing(self):
        meter = EnergyMeter()
        flash = Flash(meter=meter, node_id=3)
        flash.store(StoredReading(origin=3, value=1, timestamp=0.0))
        assert meter.node_energy(3).flash_write_nj == pytest.approx(
            12 * FLASH_WRITE_NJ_PER_BIT
        )


class TestEnergyMeter:
    def test_radio_dominates_flash(self):
        meter = EnergyMeter()
        meter.radio_tx(1, 96)
        meter.flash_write(1, 96)
        node = meter.node_energy(1)
        assert node.radio_tx_nj == pytest.approx(96 * RADIO_NJ_PER_BIT)
        assert node.radio_tx_nj > 20 * node.flash_write_nj

    def test_lifetime_ratio(self):
        meter = EnergyMeter()
        meter.radio_tx(1, 1000)
        meter.radio_tx(2, 3000)
        ref = meter.node_energy(2).total_j
        assert meter.lifetime_ratio(1, ref) == pytest.approx(3.0)

    def test_mean_excludes(self):
        meter = EnergyMeter()
        meter.radio_tx(0, 10_000)
        meter.radio_tx(1, 100)
        meter.radio_tx(2, 100)
        assert meter.mean_node_j(exclude=(0,)) == pytest.approx(
            meter.node_energy(1).total_j
        )


class TestMessageCensus:
    def _frame(self, kind=FrameKind.DATA):
        return Frame(src=1, dst=2, kind=kind, payload=None)

    def test_breakdown_categories(self):
        census = MessageCensus()
        census.record_transmit(1, self._frame(FrameKind.DATA))
        census.record_transmit(1, self._frame(FrameKind.SUMMARY))
        census.record_transmit(2, self._frame(FrameKind.QUERY))
        census.record_transmit(3, self._frame(FrameKind.REPLY))
        breakdown = census.breakdown()
        assert breakdown == {
            "data": 1,
            "summary": 1,
            "mapping": 0,
            "query/reply": 2,
        }

    def test_beacons_and_acks_excluded_from_cost(self):
        census = MessageCensus()
        census.record_transmit(1, self._frame(FrameKind.BEACON))
        census.record_transmit(1, self._frame(FrameKind.ACK))
        census.record_transmit(1, self._frame(FrameKind.DATA))
        assert census.total_sent() == 1

    def test_per_node_counters(self):
        census = MessageCensus()
        census.record_transmit(4, self._frame())
        census.record_delivery(4, 5, self._frame())
        assert census.node_sent(4) == 1
        assert census.node_received(5) == 1

    def test_skew(self):
        census = MessageCensus()
        for _ in range(9):
            census.record_transmit(0, self._frame())
        census.record_transmit(1, self._frame())
        assert census.skew() == pytest.approx(9 / 5)


class TestDeliveryTracker:
    def test_storage_success(self):
        tracker = DeliveryTracker()
        tracker.reading_produced(1, 10, 0.0, intended_owner=2)
        tracker.reading_produced(1, 11, 1.0, intended_owner=2)
        tracker.reading_stored(1, 10, 0.0, stored_at=2, time=0.5)
        assert tracker.storage_success_rate() == pytest.approx(0.5)

    def test_owner_hit_rate(self):
        tracker = DeliveryTracker()
        tracker.reading_produced(1, 10, 0.0, intended_owner=2)
        tracker.reading_stored(1, 10, 0.0, stored_at=0, time=0.5)  # root fallback
        tracker.reading_produced(1, 11, 1.0, intended_owner=2)
        tracker.reading_stored(1, 11, 1.0, stored_at=2, time=1.5)
        assert tracker.owner_hit_rate() == pytest.approx(0.5)

    def test_query_reply_rate(self):
        tracker = DeliveryTracker()
        tracker.query_issued(1, 0.0, nodes_targeted=4)
        tracker.query_reply(1, tuples_returned=3)
        tracker.query_reply(1, tuples_returned=0)
        assert tracker.query_reply_rate() == pytest.approx(0.5)

    def test_duplicate_store_ignored(self):
        tracker = DeliveryTracker()
        tracker.reading_produced(1, 10, 0.0, intended_owner=2)
        tracker.reading_stored(1, 10, 0.0, stored_at=2, time=0.5)
        tracker.reading_stored(1, 10, 0.0, stored_at=3, time=0.9)  # dup
        assert tracker.storage_success_rate() == 1.0
        assert tracker.readings[0].stored_at == 2
