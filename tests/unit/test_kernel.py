"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator, Timer


class TestScheduling:
    def test_clock_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run(10.0)
        assert fired == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in "abcde":
            sim.schedule(1.0, fired.append, tag)
        sim.run(2.0)
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run(10.0)
        assert seen == [5.0]
        assert sim.now == 10.0

    def test_run_does_not_execute_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "later")
        sim.run(4.0)
        assert fired == []
        sim.run(6.0)
        assert fired == ["later"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run(2.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run(5.0)
        with pytest.raises(SimulationError):
            sim.run(1.0)

    def test_events_scheduled_during_events(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, fired.append, "inner")

        sim.schedule(1.0, outer)
        sim.run(5.0)
        assert fired == ["outer", "inner"]

    def test_event_at_exact_run_boundary_executes(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(5.0)
        assert fired == ["edge"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run(5.0)
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        sim.run(5.0)
        handle.cancel()
        assert fired == ["x"]

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_events() == 1
        assert not keep.cancelled

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0


class TestDeterminism:
    def test_same_seed_same_random_stream(self):
        a, b = Simulator(seed=42), Simulator(seed=42)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a, b = Simulator(seed=1), Simulator(seed=2)
        assert a.rng.random() != b.rng.random()

    def test_run_until_idle_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=100)


class TestTimer:
    def test_one_shot_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), interval=2.0)
        timer.start()
        sim.run(10.0)
        assert fired == [2.0]

    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), interval=2.0, periodic=True)
        timer.start()
        sim.run(7.0)
        assert fired == [2.0, 4.0, 6.0]

    def test_stop_halts_timer(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), interval=1.0, periodic=True)
        timer.start()
        sim.run(2.5)
        timer.stop()
        sim.run(10.0)
        assert fired == [1.0, 2.0]

    def test_start_with_override_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), interval=5.0, periodic=True)
        timer.start(delay=1.0)
        sim.run(7.0)
        assert fired == [1.0, 6.0]

    def test_explicit_delay_fires_exactly_despite_jitter(self):
        # Regression: start(delay=...) used to apply the configured jitter
        # to an explicit first delay, so deliberately staggered startups
        # were silently randomized.
        sim = Simulator(seed=5)
        fired = []
        timer = Timer(
            sim, lambda: fired.append(sim.now), interval=10.0, periodic=True, jitter=0.2
        )
        timer.start(delay=3.0)
        sim.run(4.0)
        assert fired == [3.0]

    def test_interval_derived_first_delay_still_jittered(self):
        sim = Simulator(seed=5)
        firings = []
        for _ in range(8):
            fired = []
            timer = Timer(
                sim, lambda f=fired: f.append(sim.now), interval=10.0, jitter=0.2
            )
            timer.start()  # no explicit delay: jitter applies
            firings.append(fired)
        start = sim.now
        sim.run(start + 13.0)
        first = [f[0] - start for f in firings]
        assert all(8.0 <= t <= 12.0 for t in first)
        assert len(set(round(t, 9) for t in first)) > 1

    def test_jitter_bounds(self):
        sim = Simulator(seed=3)
        fired = []
        timer = Timer(
            sim, lambda: fired.append(sim.now), interval=10.0, periodic=True, jitter=0.2
        )
        timer.start()
        sim.run(100.0)
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        assert all(8.0 <= g <= 12.0 for g in gaps)
        assert len(set(round(g, 6) for g in gaps)) > 1  # actually jittered

    def test_periodic_requires_interval(self):
        with pytest.raises(SimulationError):
            Timer(Simulator(), lambda: None, periodic=True)

    def test_invalid_jitter_rejected(self):
        with pytest.raises(SimulationError):
            Timer(Simulator(), lambda: None, interval=1.0, jitter=1.5)

    def test_restart_resets_schedule(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), interval=5.0)
        timer.start()
        sim.run(3.0)
        timer.start()  # restart at t=3
        sim.run(20.0)
        assert fired == [8.0]
