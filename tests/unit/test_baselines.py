"""Unit tests for the LOCAL, BASE and HASH baselines."""


from repro.baselines.hash_static import (
    AnalyticalHashModel,
    build_hash_index,
    hash_owner,
)
from repro.baselines.local import LocalBasestation, LocalNode
from repro.baselines.send_base import SendToBaseBasestation, SendToBaseNode
from repro.core.config import ScoopConfig, ValueDomain
from repro.core.query import Query
from repro.sim.network import Network
from repro.sim.topology import line, perfect
from repro.workloads.queries import QueryPlanConfig
from repro.workloads.synthetic import UniqueWorkload

DOMAIN = ValueDomain(0, 100)


def build_policy_network(node_cls, base_cls, n=5, config=None, source=None):
    topo = perfect(n)
    config = config or ScoopConfig(n_nodes=n, domain=DOMAIN, beacon_interval=5.0)
    net = Network(topo, seed=1)
    base = base_cls(net.sim, net.radio, config, tracker=net.tracker)
    nodes = [
        node_cls(i, net.sim, net.radio, config, data_source=source, tracker=net.tracker)
        for i in config.sensor_ids
    ]
    net.add_mote(base)
    for node in nodes:
        net.add_mote(node)
    net.boot_all(within=2.0)
    net.run(40.0)
    return net, base, nodes


class TestLocal:
    def test_readings_stay_at_producer(self):
        net, base, nodes = build_policy_network(
            LocalNode, LocalBasestation, source=lambda n, t: 42
        )
        for node in nodes:
            node.start_sampling()
        net.run(net.sim.now + 30.0)
        for node in nodes:
            assert len(node.flash) >= 1
        assert len(base.flash) == 0

    def test_no_data_or_summary_messages(self):
        from repro.sim.packets import FrameKind

        net, base, nodes = build_policy_network(
            LocalNode, LocalBasestation, source=lambda n, t: 42
        )
        for node in nodes:
            node.start_sampling()
        net.run(net.sim.now + 60.0)
        by_kind = net.census.sent_by_kind()
        assert by_kind.get(FrameKind.DATA, 0) == 0
        assert by_kind.get(FrameKind.SUMMARY, 0) == 0
        assert by_kind.get(FrameKind.MAPPING, 0) == 0

    def test_plan_targets_everyone(self):
        net, base, nodes = build_policy_network(LocalNode, LocalBasestation)
        q = Query(time_range=(0.0, 10.0), value_range=(1, 5))
        assert base.plan_query(q) == {1, 2, 3, 4}

    def test_plan_floods_even_node_list_queries(self):
        net, base, nodes = build_policy_network(LocalNode, LocalBasestation)
        q = Query(time_range=(0.0, 10.0), node_list=frozenset({2}))
        assert base.plan_query(q) == {1, 2, 3, 4}

    def test_query_retrieves_local_data(self):
        net, base, nodes = build_policy_network(
            LocalNode, LocalBasestation, source=lambda n, t: n * 10
        )
        for node in nodes:
            node.start_sampling()
        net.run(net.sim.now + 30.0)
        result = base.issue_query(
            Query(time_range=(0.0, net.sim.now), value_range=(15, 25))
        )
        net.run(net.sim.now + base.config.query_reply_window + 2.0)
        values = {v for v, _t, _p in result.readings}
        assert values == {20}  # only node 2 produces 20


class TestSendToBase:
    def test_all_data_lands_at_base(self):
        net, base, nodes = build_policy_network(
            SendToBaseNode, SendToBaseBasestation, source=lambda n, t: n
        )
        for node in nodes:
            node.start_sampling()
        net.run(net.sim.now + 40.0)
        assert len(base.flash) >= len(nodes)
        for node in nodes:
            assert len(node.flash) == 0

    def test_queries_cost_nothing(self):
        from repro.sim.packets import FrameKind

        net, base, nodes = build_policy_network(
            SendToBaseNode, SendToBaseBasestation, source=lambda n, t: n
        )
        for node in nodes:
            node.start_sampling()
        net.run(net.sim.now + 30.0)
        before = net.census.sent_by_kind().get(FrameKind.QUERY, 0)
        result = base.issue_query(
            Query(time_range=(0.0, net.sim.now), value_range=(0, 100))
        )
        net.run(net.sim.now + 2.0)
        assert result.answered_locally
        assert net.census.sent_by_kind().get(FrameKind.QUERY, 0) == before

    def test_unbatched_one_message_per_reading(self):
        net, base, nodes = build_policy_network(
            SendToBaseNode, SendToBaseBasestation, source=lambda n, t: 7
        )
        node = nodes[0]
        node.sampling = True
        node.data_source = lambda n, t: 7
        node._sample()
        net.run(net.sim.now + 2.0)
        readings = base.flash.all_readings()
        assert len(readings) == 1


class TestHash:
    def test_hash_owner_deterministic_and_uniform(self):
        sensors = list(range(1, 63))
        owners = [hash_owner(v, sensors) for v in range(150)]
        assert owners == [hash_owner(v, sensors) for v in range(150)]
        # spread across many owners
        assert len(set(owners)) > 30

    def test_hash_index_covers_domain(self):
        config = ScoopConfig(n_nodes=10, domain=DOMAIN)
        index = build_hash_index(config)
        assert index.all_owners() <= set(range(1, 10))
        for v in DOMAIN:
            assert index.owner_of(v) in range(1, 10)

    def test_analytical_estimate_positive(self):
        config = ScoopConfig(n_nodes=5, domain=DOMAIN, duration=300.0)
        topo = line(5)
        model = AnalyticalHashModel(topo, config)
        workload = UniqueWorkload(DOMAIN, 5)
        estimate = model.estimate(
            workload, QueryPlanConfig(kind="value"), duration=300.0, seed=1
        )
        assert estimate.data > 0
        assert estimate.query_reply > 0
        assert estimate.total == estimate.data + estimate.query_reply

    def test_analytical_data_scales_with_duration(self):
        config = ScoopConfig(n_nodes=5, domain=DOMAIN)
        topo = line(5)
        model = AnalyticalHashModel(topo, config)
        workload = UniqueWorkload(DOMAIN, 5)
        plan = QueryPlanConfig(kind="value")
        short = model.estimate(workload, plan, duration=150.0, seed=1)
        long = model.estimate(workload, plan, duration=600.0, seed=1)
        assert long.data > 2.5 * short.data

    def test_breakdown_matches_categories(self):
        config = ScoopConfig(n_nodes=5, domain=DOMAIN)
        model = AnalyticalHashModel(line(5), config)
        estimate = model.estimate(
            UniqueWorkload(DOMAIN, 5), QueryPlanConfig(), duration=150.0
        )
        breakdown = estimate.breakdown()
        assert set(breakdown) == {"data", "summary", "mapping", "query/reply"}
        assert breakdown["summary"] == 0.0
