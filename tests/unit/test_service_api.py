"""The public service API: typed request/answer/error/stats dataclasses,
the exception ↔ wire-code mapping, shard-stat aggregation, and the
deprecated JSON-lines codec — including the golden-bytes test pinning it
to the PR-7 wire format.
"""

import json

import pytest

from repro.service.api import (
    MAX_WIRE_READINGS,
    PROTOCOL_VERSION,
    MalformedRequestError,
    ProtocolError,
    ProtocolVersionError,
    QueryAnswer,
    QueryRequest,
    ServiceError,
    ServiceFault,
    ServiceStats,
    ServiceUnavailableError,
    ShardRestartingError,
    ShedError,
    aggregate_shard_stats,
    decode_jsonl_request,
    decode_jsonl_response,
    encode_jsonl_answer,
    encode_jsonl_error,
    encode_jsonl_request,
    error_to_exception,
    exception_to_error,
)
from repro.service.gateway import ServiceTicket


class TestQueryRequest:
    def test_wire_round_trip(self):
        request = QueryRequest(tenant="t3", attr=2, lo=5, hi=90, seq=17)
        assert QueryRequest.from_wire(request.to_wire()) == request

    def test_open_bounds_survive(self):
        request = QueryRequest(lo=None, hi=None)
        again = QueryRequest.from_wire(request.to_wire())
        assert again.lo is None and again.hi is None

    def test_bad_payload_is_malformed(self):
        with pytest.raises(MalformedRequestError):
            QueryRequest.from_wire({"attr": "not-an-int"})

    def test_frozen(self):
        with pytest.raises(Exception):
            QueryRequest().tenant = "other"  # type: ignore[misc]


class TestQueryAnswer:
    def _ticket(self, n_readings=3) -> ServiceTicket:
        ticket = ServiceTicket(
            seq=4, tenant="t0", attr=1, lo=10, hi=40, arrival=100.0
        )
        ticket.status = "ok"
        ticket.readings = [(10 + i, 101.5, i) for i in range(n_readings)]
        ticket.latency_s = 1.23456789
        ticket.cache_hit = True
        ticket.staleness_s = 0.000000123
        ticket.epoch = 2
        return ticket

    def test_from_ticket_rounds_and_truncates(self):
        answer = QueryAnswer.from_ticket(self._ticket(60), shard="shard1")
        assert answer.latency_s == round(1.23456789, 6)
        assert answer.staleness_s == round(0.000000123, 6)
        assert answer.n_readings == 60
        assert len(answer.readings) == MAX_WIRE_READINGS
        assert answer.shard == "shard1"
        assert answer.ok

    def test_wire_round_trip(self):
        answer = QueryAnswer.from_ticket(self._ticket(), shard="shard0")
        assert QueryAnswer.from_wire(answer.to_wire()) == answer

    def test_jsonl_dict_excludes_shard(self):
        answer = QueryAnswer.from_ticket(self._ticket(), shard="shard7")
        assert "shard" not in answer.to_jsonl_dict()
        assert answer.to_wire()["shard"] == "shard7"

    def test_golden_bytes_jsonl_matches_pr7_ticket_wire_format(self):
        """The deprecated JSON-lines response must stay byte-identical
        to what the PR-7 gateway emitted: ``ServiceTicket.to_dict()``
        serialized with the stdlib defaults."""
        ticket = self._ticket()
        legacy = (json.dumps(ticket.to_dict()) + "\n").encode("utf-8")
        modern = encode_jsonl_answer(QueryAnswer.from_ticket(ticket))
        assert modern == legacy

    def test_golden_bytes_pinned_literal(self):
        """Belt and braces: the exact bytes, so a drift in *both*
        ServiceTicket.to_dict and the codec still fails."""
        ticket = ServiceTicket(
            seq=1, tenant="tenant0", attr=0, lo=10, hi=30, arrival=600.0
        )
        ticket.status = "ok"
        ticket.readings = [(12, 600.0, 3)]
        ticket.latency_s = 8.0
        ticket.epoch = 0
        assert encode_jsonl_answer(QueryAnswer.from_ticket(ticket)) == (
            b'{"status": "ok", "tenant": "tenant0", "seq": 1, "attr": 0, '
            b'"lo": 10, "hi": 30, "latency_s": 8.0, "cache_hit": false, '
            b'"staleness_s": 0.0, "epoch": 0, "n_readings": 1, '
            b'"readings": [[12, 600.0, 3]]}\n'
        )

    def test_bad_payload_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            QueryAnswer.from_wire({"tenant": "t"})


class TestFaultMapping:
    @pytest.mark.parametrize(
        "exc_type, code",
        [
            (ShedError, "shed"),
            (MalformedRequestError, "malformed"),
            (ProtocolVersionError, "version"),
            (ProtocolError, "protocol"),
            (ServiceUnavailableError, "unavailable"),
            (ShardRestartingError, "retry"),
        ],
    )
    def test_round_trip(self, exc_type, code):
        error = exception_to_error(exc_type("boom", seq=9))
        assert error.code == code and error.seq == 9
        back = error_to_exception(error)
        assert isinstance(back, exc_type)
        assert back.seq == 9 and "boom" in str(back)

    def test_unknown_code_degrades_to_base_fault(self):
        exc = error_to_exception(ServiceError(code="martian", message="m"))
        assert isinstance(exc, ServiceFault)
        assert exc.code == "martian"

    def test_service_error_wire_round_trip(self):
        error = ServiceError(code="shed", message="overloaded", seq=3)
        assert ServiceError.from_wire(error.to_wire()) == error


class TestServiceStats:
    def test_wire_round_trip(self):
        stats = ServiceStats(
            tenants={"tenant0": {"requests_served": 3.0}},
            shards={"shard0": {"tenants": 1.0}},
            protocol={"frames_in": 7.0},
        )
        assert ServiceStats.from_wire(stats.to_wire()) == stats


class TestAggregateShardStats:
    def test_counters_sum_and_rates_recompute(self):
        tenants = {
            "a": {
                "requests_offered": 10.0,
                "requests_served": 8.0,
                "requests_shed": 2.0,
                "cache_hits": 4.0,
                "backlog": 1.0,
                "queries_issued": 5.0,
                "latency_p95_s": 8.0,
            },
            "b": {
                "requests_offered": 30.0,
                "requests_served": 30.0,
                "requests_shed": 0.0,
                "cache_hits": 0.0,
                "backlog": 2.0,
                "queries_issued": 9.0,
                "latency_p95_s": 16.0,
            },
        }
        agg = aggregate_shard_stats(tenants, worker_pid=42)
        assert agg["tenants"] == 2.0
        assert agg["worker_pid"] == 42.0
        assert agg["requests_offered"] == 40.0
        assert agg["requests_shed"] == 2.0
        assert agg["shed_rate"] == pytest.approx(2.0 / 40.0)
        assert agg["cache_hit_rate"] == pytest.approx(4.0 / 38.0)
        assert agg["queue_depth"] == 3.0
        # Worst tenant's p95, not a mean of means.
        assert agg["latency_p95_s"] == 16.0

    def test_empty_shard(self):
        agg = aggregate_shard_stats({})
        assert agg["tenants"] == 0.0
        assert agg["shed_rate"] == 0.0
        assert agg["latency_p95_s"] == 0.0


class TestJsonlCodec:
    def test_request_round_trip(self):
        request = QueryRequest(tenant="t1", attr=1, lo=3, hi=9)
        op, decoded = decode_jsonl_request(encode_jsonl_request(request))
        assert op == "query"
        assert (decoded.tenant, decoded.attr, decoded.lo, decoded.hi) == (
            "t1",
            1,
            3,
            9,
        )

    def test_control_ops(self):
        assert decode_jsonl_request(b'{"op": "ping"}\n') == ("ping", None)
        assert decode_jsonl_request(b'{"op": "stats"}\n') == ("stats", None)

    def test_bad_json_is_malformed(self):
        with pytest.raises(MalformedRequestError):
            decode_jsonl_request(b"not json\n")
        with pytest.raises(MalformedRequestError):
            decode_jsonl_request(b"[1, 2]\n")
        with pytest.raises(MalformedRequestError, match="unknown op"):
            decode_jsonl_request(b'{"op": "fly"}\n')

    def test_error_line_shape(self):
        line = encode_jsonl_error("malformed request: nope")
        assert decode_jsonl_response(line) == {
            "status": "error",
            "error": "malformed request: nope",
        }

    def test_version_constant_is_one(self):
        # Bumping PROTOCOL_VERSION is an intentional compatibility event;
        # this pin makes it a conscious edit, not a drive-by.
        assert PROTOCOL_VERSION == 1
